"""DNSSEC: zone keys, RRset signing, DS digests, and chain validation.

The signature primitive is a documented simulation (see
:mod:`repro.dnssec.keys`); the chain logic — DS-in-parent, KSK/ZSK roles,
secure/insecure/bogus classification, AD-bit semantics — follows
RFC 4033-4035.
"""

from .keys import (
    DIGEST_TYPE_SHA256,
    SIMULATED_ALGORITHM,
    ZoneKey,
    ZoneKeySet,
    ds_digest,
    ds_matches_dnskey,
    verify_blob,
)
from .signing import (
    DEFAULT_VALIDITY,
    SignatureMemo,
    rrsig_is_timely,
    sign_rrset,
    signature_memo,
    signing_input,
)
from .validation import (
    ChainValidator,
    RecordSource,
    ValidationResult,
    ValidationState,
)

__all__ = [
    "DIGEST_TYPE_SHA256",
    "SIMULATED_ALGORITHM",
    "ZoneKey",
    "ZoneKeySet",
    "ds_digest",
    "ds_matches_dnskey",
    "verify_blob",
    "DEFAULT_VALIDITY",
    "SignatureMemo",
    "rrsig_is_timely",
    "sign_rrset",
    "signature_memo",
    "signing_input",
    "ChainValidator",
    "RecordSource",
    "ValidationResult",
    "ValidationState",
]
