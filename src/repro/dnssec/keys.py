"""DNSSEC key material and the simulated signature scheme.

Substitution note (see DESIGN.md): real DNSSEC uses asymmetric signatures
(RSA/ECDSA). Offline and stdlib-only, we use a deterministic keyed-MAC
scheme where the DNSKEY "public key" doubles as the MAC key:

* a zone key is a 32-byte seed; its DNSKEY public key is
  ``SHA-256("dnssec-public|" + seed)``;
* an RRSIG signature is ``HMAC-SHA256(public_key, canonical signing data)``.

Verification therefore needs only the DNSKEY record, exactly like real
DNSSEC, and every *structural* failure mode the paper measures — missing
DS, digest mismatch, expired or tampered RRSIG, wrong key tag — behaves
identically. (The scheme is obviously not forgery-resistant; the simulated
Internet contains no forgers.)
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

from ..dnscore.names import Name
from ..dnscore.rdata import DNSKEYRdata, DSRdata

# Private-use algorithm number (RFC 4034 reserves 253 for private algorithms).
SIMULATED_ALGORITHM = 253
DIGEST_TYPE_SHA256 = 2


class ZoneKey:
    """One zone key (KSK or ZSK)."""

    def __init__(self, seed: bytes, is_ksk: bool):
        if len(seed) < 16:
            raise ValueError("key seed too short")
        self.seed = bytes(seed)
        self.is_ksk = is_ksk
        self.public_key = hashlib.sha256(b"dnssec-public|" + self.seed).digest()
        flags = DNSKEYRdata.FLAG_ZONE | (DNSKEYRdata.FLAG_SEP if is_ksk else 0)
        self.dnskey = DNSKEYRdata(flags, 3, SIMULATED_ALGORITHM, self.public_key)
        self.key_tag = self.dnskey.key_tag()

    @classmethod
    def derive(cls, zone_name: Name, role: str, generation: int = 0) -> "ZoneKey":
        """Deterministic key for reproducible simulations."""
        material = hashlib.sha256(
            b"dnssec-seed|" + zone_name.to_text().lower().encode() + b"|" + role.encode()
            + b"|" + str(generation).encode()
        ).digest()
        return cls(material, is_ksk=(role == "ksk"))

    def sign_blob(self, data: bytes) -> bytes:
        return hmac.new(self.public_key, data, hashlib.sha256).digest()

    def ds_record(self, owner: Name) -> DSRdata:
        digest = ds_digest(owner, self.dnskey)
        return DSRdata(self.key_tag, SIMULATED_ALGORITHM, DIGEST_TYPE_SHA256, digest)

    def __repr__(self) -> str:
        kind = "KSK" if self.is_ksk else "ZSK"
        return f"ZoneKey({kind}, tag={self.key_tag})"


def ds_digest(owner: Name, dnskey: DNSKEYRdata) -> bytes:
    """RFC 4034 section 5.1.4: digest over owner name + DNSKEY rdata."""
    return hashlib.sha256(owner.to_wire().lower() + dnskey.wire_bytes()).digest()


def verify_blob(dnskey: DNSKEYRdata, data: bytes, signature: bytes) -> bool:
    """Verify a simulated signature using only the DNSKEY record."""
    if dnskey.algorithm != SIMULATED_ALGORITHM:
        return False
    expected = hmac.new(dnskey.public_key, data, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature)


def ds_matches_dnskey(owner: Name, ds: DSRdata, dnskey: DNSKEYRdata) -> bool:
    if ds.key_tag != dnskey.key_tag():
        return False
    if ds.algorithm != dnskey.algorithm:
        return False
    if ds.digest_type != DIGEST_TYPE_SHA256:
        return False
    return hmac.compare_digest(ds.digest, ds_digest(owner, dnskey))


class ZoneKeySet:
    """The KSK + ZSK pair a signed zone operates with."""

    def __init__(self, zone_name: Name, generation: int = 0):
        self.zone_name = zone_name
        self.ksk = ZoneKey.derive(zone_name, "ksk", generation)
        self.zsk = ZoneKey.derive(zone_name, "zsk", generation)

    def key_for_tag(self, key_tag: int) -> Optional[ZoneKey]:
        for key in (self.ksk, self.zsk):
            if key.key_tag == key_tag:
                return key
        return None
