"""DNSSEC chain validation (RFC 4035 section 5).

The validator walks from a trust anchor down the delegation chain to the
queried name, checking at each zone cut that

1. the parent publishes a DS RRset for the child (absence ⇒ *insecure*
   delegation — the dominant failure mode the paper finds for HTTPS RR,
   Table 9);
2. the DS digest matches a KSK in the child's DNSKEY RRset;
3. the child's DNSKEY RRset is signed by that KSK;
4. the final RRset is signed by a zone key of its zone.

Any cryptographic or timeliness failure yields *bogus*; a clean chain
yields *secure* and sets the AD bit in resolver responses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import DNSKEYRdata, DSRdata, RRSIGRdata
from ..dnscore.rrset import RRset
from .keys import ds_matches_dnskey, verify_blob
from .signing import rrsig_is_timely, signing_input


class ValidationState(enum.Enum):
    SECURE = "secure"
    INSECURE = "insecure"
    BOGUS = "bogus"
    INDETERMINATE = "indeterminate"


@dataclass
class ValidationResult:
    state: ValidationState
    reason: str = ""
    chain: List[str] = field(default_factory=list)

    @property
    def secure(self) -> bool:
        return self.state is ValidationState.SECURE


class RecordSource(Protocol):
    """What the validator needs from the DNS: authoritative RRsets with
    their signatures, and the zone-cut structure."""

    def fetch_with_sigs(
        self, name: Name, rdtype: int
    ) -> Tuple[Optional[RRset], List[RRSIGRdata]]:
        """Authoritative RRset for (name, type) plus covering RRSIGs."""
        ...

    def zone_apex_of(self, name: Name) -> Optional[Name]:
        """Apex of the zone authoritative for *name*."""
        ...

    def parent_zone_of(self, apex: Name) -> Optional[Name]:
        """Apex of the parent zone of the zone at *apex* (None at root)."""
        ...


def _verify_rrset_with_keys(
    rrset: RRset,
    rrsigs: List[RRSIGRdata],
    dnskeys: List[DNSKEYRdata],
    now: int,
    require_sep: bool = False,
) -> Tuple[bool, str]:
    """True when any provided RRSIG validates against any provided DNSKEY."""
    if not rrsigs:
        return False, "no covering RRSIG"
    reasons = []
    for rrsig in rrsigs:
        if rrsig.type_covered != rrset.rdtype:
            reasons.append("RRSIG covers wrong type")
            continue
        if not rrsig_is_timely(rrsig, now):
            reasons.append("RRSIG outside validity window")
            continue
        for dnskey in dnskeys:
            if dnskey.key_tag() != rrsig.key_tag:
                continue
            if require_sep and not dnskey.is_ksk():
                continue
            data = signing_input(rrset, rrsig)
            if verify_blob(dnskey, data, rrsig.signature):
                return True, "ok"
            reasons.append("signature mismatch")
    return False, "; ".join(reasons) if reasons else "no matching DNSKEY for RRSIG key tag"


class ChainValidator:
    """Validates names bottom-up against a trust anchor (the root by
    default)."""

    def __init__(self, source: RecordSource, trust_anchor: Name = None):
        self.source = source
        self.trust_anchor = trust_anchor if trust_anchor is not None else Name.root()
        # Zone-key validation is pure for a given hour, so memoize it —
        # resolvers validate the same root/TLD chain on every answer.
        self._zone_key_cache: dict = {}

    def _zone_chain(self, apex: Name) -> Optional[List[Name]]:
        """Apexes from the trust anchor down to *apex* inclusive."""
        chain = [apex]
        current = apex
        while current != self.trust_anchor:
            parent = self.source.parent_zone_of(current)
            if parent is None:
                return None
            chain.append(parent)
            current = parent
            if len(chain) > 64:
                return None
        chain.reverse()
        return chain

    def _validated_zone_keys(
        self, apex: Name, parent_apex: Optional[Name], now: int
    ) -> Tuple[Optional[List[DNSKEYRdata]], ValidationResult]:
        """Validate the DNSKEY RRset of the zone at *apex*.

        For non-anchor zones this requires a matching, validated DS in the
        parent. Returns (keys, result); keys is None unless secure.
        """
        cache_key = (apex, parent_apex, now // 3600)
        cached = self._zone_key_cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._validated_zone_keys_uncached(apex, parent_apex, now)
        self._zone_key_cache[cache_key] = result
        return result

    def _validated_zone_keys_uncached(
        self, apex: Name, parent_apex: Optional[Name], now: int
    ) -> Tuple[Optional[List[DNSKEYRdata]], ValidationResult]:
        dnskey_rrset, dnskey_sigs = self.source.fetch_with_sigs(apex, rdtypes.DNSKEY)
        if dnskey_rrset is None or not len(dnskey_rrset):
            return None, ValidationResult(
                ValidationState.INSECURE, f"zone {apex} publishes no DNSKEY"
            )
        dnskeys = [r for r in dnskey_rrset if isinstance(r, DNSKEYRdata)]

        if parent_apex is not None:
            ds_rrset, _ = self.source.fetch_with_sigs(apex, rdtypes.DS)
            if ds_rrset is None or not len(ds_rrset):
                return None, ValidationResult(
                    ValidationState.INSECURE,
                    f"no DS for {apex} in parent zone {parent_apex}",
                )
            matched = False
            for ds in ds_rrset:
                if not isinstance(ds, DSRdata):
                    continue
                for dnskey in dnskeys:
                    if dnskey.is_ksk() and ds_matches_dnskey(apex, ds, dnskey):
                        matched = True
                        break
                if matched:
                    break
            if not matched:
                return None, ValidationResult(
                    ValidationState.BOGUS, f"DS for {apex} matches no KSK"
                )

        ok, reason = _verify_rrset_with_keys(
            dnskey_rrset, dnskey_sigs, dnskeys, now, require_sep=True
        )
        if not ok:
            # Fall back to ZSK-signed DNSKEY sets (some signers do this).
            ok, reason = _verify_rrset_with_keys(dnskey_rrset, dnskey_sigs, dnskeys, now)
        if not ok:
            return None, ValidationResult(
                ValidationState.BOGUS, f"DNSKEY RRset of {apex} not validly signed: {reason}"
            )
        return dnskeys, ValidationResult(ValidationState.SECURE, "ok")

    def validate(self, name: Name, rdtype: int, now: int) -> ValidationResult:
        """Validate the RRset at (name, rdtype) through the full chain."""
        apex = self.source.zone_apex_of(name)
        if apex is None:
            return ValidationResult(ValidationState.INDETERMINATE, f"no zone for {name}")
        chain = self._zone_chain(apex)
        if chain is None:
            return ValidationResult(
                ValidationState.INDETERMINATE, f"{apex} does not chain to trust anchor"
            )
        visited = []
        keys_by_apex = {}
        for i, zone_apex in enumerate(chain):
            parent = chain[i - 1] if i > 0 else None
            keys, result = self._validated_zone_keys(zone_apex, parent, now)
            visited.append(zone_apex.to_text())
            if keys is None:
                result.chain = visited
                return result
            keys_by_apex[zone_apex] = keys

        rrset, rrsigs = self.source.fetch_with_sigs(name, rdtype)
        if rrset is None:
            return ValidationResult(
                ValidationState.INDETERMINATE, f"no RRset at {name}/{rdtypes.type_to_text(rdtype)}",
                visited,
            )
        ok, reason = _verify_rrset_with_keys(rrset, rrsigs, keys_by_apex[apex], now)
        if not ok:
            # A signed zone must sign all authoritative data; a missing or
            # broken RRSIG under a secure chain is bogus (RFC 4035 5.3).
            return ValidationResult(
                ValidationState.BOGUS, f"RRset not validly signed: {reason}", visited
            )
        return ValidationResult(ValidationState.SECURE, "ok", visited)
