"""RRset signing: building RRSIG records (RFC 4034 section 3).

Signature computation is memoised process-wide: the simulated world
re-signs byte-identical RRsets constantly — every ``_zone_cache``
eviction rebuilds and re-signs whole domain zones whose non-HTTPS
records did not change, and hourly ECH rescans do that up to 24 times
per day — so :func:`sign_rrset` consults a bounded LRU keyed by the
RFC 4034 signing input (whose digest covers the key tag, signer name,
and the inception/expiration window) plus the signing key's material.
A hit returns the exact bytes the signer would have produced (the
scheme is deterministic), so memoisation is purely a compute cache:
signatures are byte-identical with the memo on, off, hot, or cold.

Honest economics note: the simulated signature primitive is an
HMAC-SHA256 (see :mod:`repro.dnssec.keys`), so a memo hit — one SHA-256
over the signing input to form the key — costs nearly as much as the
"signature" it avoids; at this substitution level the memo is roughly
cost-neutral (the snapshot cache, not the memo, carries the measured
warm-up win — see ``bench_results/world_snapshot_walltime.txt``). The
layer models the architecture of a production signer, where the avoided
operation is an RSA/ECDSA signature that costs orders of magnitude more
than the lookup; swap the primitive and the memo's hit counters convert
directly into saved asymmetric operations.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..dnscore.names import Name
from ..dnscore.rdata import RRSIGRdata
from ..dnscore.rrset import RRset
from ..dnscore.wire import WireWriter
from .keys import ZoneKey

# Default validity window (seconds); matches common signer defaults.
DEFAULT_VALIDITY = 14 * 24 * 3600


class SignatureMemo:
    """Bounded LRU of computed signatures.

    Keyed by (SHA-256 of the signing input, key material): the signing
    input already canonically encodes the covered RRset, key tag, signer
    name, and validity window, and the key material disambiguates
    distinct keys that collide on the 16-bit key tag. Values are the
    immutable signature bytes, so sharing them across RRSIG records is
    safe (``corrupt_signature`` mutates a copy on the record, never the
    memoised bytes).

    Thread-safe: the pipeline's thread executor signs from many workers
    against this process-global memo.
    """

    def __init__(self, capacity: int = 200_000, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[bytes, bytes], bytes]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def sign(self, key: ZoneKey, data: bytes) -> bytes:
        """``key.sign_blob(data)`` through the memo."""
        if not self.enabled:
            return key.sign_blob(data)
        memo_key = (hashlib.sha256(data).digest(), key.public_key)
        with self._lock:
            signature = self._entries.get(memo_key)
            if signature is not None:
                self._entries.move_to_end(memo_key)
                self.hits += 1
                return signature
        signature = key.sign_blob(data)
        with self._lock:
            self.misses += 1
            self._entries[memo_key] = signature
            self._entries.move_to_end(memo_key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return signature


# Process-global memo shared by every zone/world in the process (worlds
# built from the same config sign identical inputs, so sharing maximises
# reuse across the pipeline's thread-mode workers).
_SIGNATURE_MEMO = SignatureMemo()


def signature_memo() -> SignatureMemo:
    """The process-global signature memo (stats, clear, enable/disable)."""
    return _SIGNATURE_MEMO


def signing_input(rrset: RRset, rrsig_template: RRSIGRdata) -> bytes:
    """RFC 4034 section 3.1.8.1: RRSIG rdata (minus signature) followed by
    the canonical form of the RRset."""
    writer = WireWriter(enable_compression=False)
    writer.write_u16(rrsig_template.type_covered)
    writer.write_u8(rrsig_template.algorithm)
    writer.write_u8(rrsig_template.labels)
    writer.write_u32(rrsig_template.original_ttl)
    writer.write_u32(rrsig_template.expiration)
    writer.write_u32(rrsig_template.inception)
    writer.write_u16(rrsig_template.key_tag)
    writer.write_bytes(rrsig_template.signer.to_wire().lower())
    owner_wire = rrset.name.to_wire().lower()
    for rdata in rrset.canonical_rdata_order():
        writer.write_bytes(owner_wire)
        writer.write_u16(rrset.rdtype)
        writer.write_u16(rrset.rdclass)
        writer.write_u32(rrsig_template.original_ttl)
        rdata_wire = rdata.wire_bytes()
        writer.write_u16(len(rdata_wire))
        writer.write_bytes(rdata_wire)
    return writer.getvalue()


def sign_rrset(
    rrset: RRset,
    signer: Name,
    key: ZoneKey,
    inception: int,
    expiration: Optional[int] = None,
    memo: Optional[SignatureMemo] = None,
) -> RRSIGRdata:
    """Produce the RRSIG covering *rrset*, signed by *key* of zone *signer*.

    Signature bytes come through *memo* (the process-global
    :func:`signature_memo` by default): re-signing an unchanged RRset
    with the same key and validity window is a dict hit instead of a
    fresh signature computation, with byte-identical output."""
    if expiration is None:
        expiration = inception + DEFAULT_VALIDITY
    template = RRSIGRdata(
        type_covered=rrset.rdtype,
        algorithm=key.dnskey.algorithm,
        labels=rrset.name.split_depth(),
        original_ttl=rrset.ttl,
        expiration=expiration,
        inception=inception,
        key_tag=key.key_tag,
        signer=signer,
        signature=b"",
    )
    if memo is None:
        memo = _SIGNATURE_MEMO
    template.signature = memo.sign(key, signing_input(rrset, template))
    template.invalidate_wire_cache()
    return template


def rrsig_is_timely(rrsig: RRSIGRdata, now: int) -> bool:
    """Serial-number-free timeliness check (we keep timestamps monotonic
    within the simulated period, so plain comparison is safe)."""
    return rrsig.inception <= now <= rrsig.expiration
