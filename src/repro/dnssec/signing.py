"""RRset signing: building RRSIG records (RFC 4034 section 3)."""

from __future__ import annotations

from typing import Optional

from ..dnscore.names import Name
from ..dnscore.rdata import RRSIGRdata
from ..dnscore.rrset import RRset
from ..dnscore.wire import WireWriter
from .keys import ZoneKey

# Default validity window (seconds); matches common signer defaults.
DEFAULT_VALIDITY = 14 * 24 * 3600


def signing_input(rrset: RRset, rrsig_template: RRSIGRdata) -> bytes:
    """RFC 4034 section 3.1.8.1: RRSIG rdata (minus signature) followed by
    the canonical form of the RRset."""
    writer = WireWriter(enable_compression=False)
    writer.write_u16(rrsig_template.type_covered)
    writer.write_u8(rrsig_template.algorithm)
    writer.write_u8(rrsig_template.labels)
    writer.write_u32(rrsig_template.original_ttl)
    writer.write_u32(rrsig_template.expiration)
    writer.write_u32(rrsig_template.inception)
    writer.write_u16(rrsig_template.key_tag)
    writer.write_bytes(rrsig_template.signer.to_wire().lower())
    owner_wire = rrset.name.to_wire().lower()
    for rdata in rrset.canonical_rdata_order():
        writer.write_bytes(owner_wire)
        writer.write_u16(rrset.rdtype)
        writer.write_u16(rrset.rdclass)
        writer.write_u32(rrsig_template.original_ttl)
        rdata_wire = rdata.wire_bytes()
        writer.write_u16(len(rdata_wire))
        writer.write_bytes(rdata_wire)
    return writer.getvalue()


def sign_rrset(
    rrset: RRset,
    signer: Name,
    key: ZoneKey,
    inception: int,
    expiration: Optional[int] = None,
) -> RRSIGRdata:
    """Produce the RRSIG covering *rrset*, signed by *key* of zone *signer*."""
    if expiration is None:
        expiration = inception + DEFAULT_VALIDITY
    template = RRSIGRdata(
        type_covered=rrset.rdtype,
        algorithm=key.dnskey.algorithm,
        labels=rrset.name.split_depth(),
        original_ttl=rrset.ttl,
        expiration=expiration,
        inception=inception,
        key_tag=key.key_tag,
        signer=signer,
        signature=b"",
    )
    signature = key.sign_blob(signing_input(rrset, template))
    template.signature = signature
    template.invalidate_wire_cache()
    return template


def rrsig_is_timely(rrsig: RRSIGRdata, now: int) -> bool:
    """Serial-number-free timeliness check (we keep timestamps monotonic
    within the simulated period, so plain comparison is safe)."""
    return rrsig.inception <= now <= rrsig.expiration
