"""HTTPS-record zone linter.

The paper's discussion (§7) argues HTTPS-record management needs the
ACME/Certbot treatment: the misconfigurations it measures in the wild —
IP hints out of sync with A/AAAA records, stale or malformed ECH
configs, self-referential AliasMode, signed zones with no DS uploaded —
are all mechanically detectable. This linter detects every failure mode
the paper observes, against a zone plus optional live context (the
serving addresses and the current ECH key manager).

Findings are reported through the shared
:mod:`repro.devtools.codelint.findings` core (one ``Finding`` dataclass,
one ``Severity`` enum, common text/JSON renderers) so zone lint and code
lint speak the same language; on the CLI this is
``repro-scan lint-zone``.
"""

from __future__ import annotations

from typing import List, Optional

from ..devtools.codelint.findings import Finding, Severity
from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import HTTPSRdata
from ..ech.config import try_parse_config_list
from ..ech.keys import ECHKeyManager
from ..zones.zone import Zone

__all__ = ["Finding", "Severity", "lint_zone"]


def _https_rrsets(zone: Zone):
    for rrset in zone.rrsets():
        if rrset.rdtype == rdtypes.HTTPS:
            yield rrset


def lint_zone(
    zone: Zone,
    ech_manager: Optional[ECHKeyManager] = None,
    current_hour: int = 0,
) -> List[Finding]:
    """All §4-style misconfigurations present in *zone*.

    With *ech_manager*, ech params are additionally checked against the
    currently-accepted key generations (the §4.4.2 staleness hazard).
    """
    findings: List[Finding] = []
    for rrset in _https_rrsets(zone):
        owner = rrset.name.to_text()
        a_rrset = zone.get_rrset(rrset.name, rdtypes.A)
        aaaa_rrset = zone.get_rrset(rrset.name, rdtypes.AAAA)
        a_addrs = {rd.address for rd in a_rrset} if a_rrset else set()
        aaaa_addrs = {rd.address for rd in aaaa_rrset} if aaaa_rrset else set()

        priorities = [rd.priority for rd in rrset if isinstance(rd, HTTPSRdata)]
        if 0 in priorities and len(priorities) > 1:
            findings.append(Finding(
                "alias-mixed-with-service", Severity.ERROR, owner,
                "AliasMode and ServiceMode records coexist at one owner",
            ))

        for rdata in rrset:
            if not isinstance(rdata, HTTPSRdata):
                continue
            findings.extend(_lint_record(zone, owner, rdata, a_addrs, aaaa_addrs,
                                         ech_manager, current_hour))
    return findings


def _lint_record(
    zone: Zone,
    owner: str,
    rdata: HTTPSRdata,
    a_addrs: set,
    aaaa_addrs: set,
    ech_manager: Optional[ECHKeyManager],
    current_hour: int,
) -> List[Finding]:
    findings: List[Finding] = []
    target_text = rdata.target.to_text()

    # -- AliasMode sanity (§4.3.3 / Appendix E.1) -------------------------
    if rdata.is_alias_mode:
        if rdata.target == Name.root():
            findings.append(Finding(
                "alias-self-target", Severity.ERROR, owner,
                'AliasMode with TargetName "." does not provide a true alias',
            ))
        elif rdata.target.is_subdomain_of(zone.apex) and zone.get_rrset(
            rdata.target, rdtypes.A
        ) is None and zone.get_rrset(rdata.target, rdtypes.HTTPS) is None:
            findings.append(Finding(
                "alias-dangling-target", Severity.WARNING, owner,
                f"alias target {target_text} has no A/HTTPS records in this zone",
            ))
        return findings

    # -- nonstandard TargetName values ---------------------------------------
    plain = target_text.replace("\\.", ".").rstrip(".")
    if plain.replace(".", "").isdigit():
        findings.append(Finding(
            "target-is-ip-literal", Severity.ERROR, owner,
            f"TargetName {target_text!r} is an IP-address literal",
        ))
    if plain.startswith("https://"):
        findings.append(Finding(
            "target-is-url", Severity.ERROR, owner,
            f"TargetName {target_text!r} is a URL, not a host name",
        ))

    params = rdata.params
    if len(params) == 0:
        findings.append(Finding(
            "service-mode-empty", Severity.WARNING, owner,
            "ServiceMode record carries no SvcParams (provides no information)",
        ))

    # -- IP-hint consistency (§4.3.5) ---------------------------------------------
    if params.ipv4hint and a_addrs and set(params.ipv4hint) != a_addrs:
        findings.append(Finding(
            "ipv4hint-mismatch", Severity.ERROR, owner,
            f"ipv4hint {sorted(params.ipv4hint)} != A records {sorted(a_addrs)}"
            " (clients may connect to a dead address)",
        ))
    if params.ipv6hint and aaaa_addrs and set(params.ipv6hint) != aaaa_addrs:
        findings.append(Finding(
            "ipv6hint-mismatch", Severity.ERROR, owner,
            f"ipv6hint {sorted(params.ipv6hint)} != AAAA records {sorted(aaaa_addrs)}"
            " (clients may connect to a dead address)",
        ))

    # -- ECH checks (§4.4) ---------------------------------------------------------
    if params.ech is not None:
        config_list = try_parse_config_list(params.ech)
        if config_list is None:
            findings.append(Finding(
                "ech-malformed", Severity.ERROR, owner,
                "ech value does not parse as an ECHConfigList "
                "(hard failure in Chromium browsers)",
            ))
        elif ech_manager is not None:
            accepted = {
                keypair.public_key for keypair in ech_manager.active_keypairs(current_hour)
            }
            if not any(config.public_key in accepted for config in config_list):
                findings.append(Finding(
                    "ech-stale-key", Severity.ERROR, owner,
                    "published ECH key is no longer accepted by the server "
                    "(connections depend entirely on the retry mechanism)",
                ))

    # -- DNSSEC (§4.5) -----------------------------------------------------------------
    if zone.signed and not zone.get_rrsigs(Name.from_text(owner), rdtypes.HTTPS):
        findings.append(Finding(
            "https-unsigned-in-signed-zone", Severity.WARNING, owner,
            "zone is signed but the HTTPS RRset has no RRSIG",
        ))
    return findings
