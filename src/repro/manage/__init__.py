"""HTTPS-record management automation (the paper's §7 proposal)."""

from .linter import Finding, Severity, lint_zone
from .autopilot import AutoPilot, FixAction

__all__ = ["Finding", "Severity", "lint_zone", "AutoPilot", "FixAction"]
