"""HTTPS-record autopilot: detect-and-repair, Certbot style.

Where the linter reports, the autopilot fixes: it re-synchronizes IP
hints with the zone's address records and re-publishes the current ECH
config from the key manager — the two renewals the paper identifies as
the recurring operational burden (hint drift from address changes,
§4.3.5; ECH key rotation every 1–2 hours, §4.4.2). Run it on a schedule
shorter than the record TTL and the inconsistency windows the paper
measures disappear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import HTTPSRdata
from ..dnscore.rrset import RRset
from ..ech.keys import ECHKeyManager
from ..svcb.params import Ech, Ipv4Hint, Ipv6Hint, SvcParam, SvcParams, KEY_ECH, KEY_IPV4HINT, KEY_IPV6HINT
from ..zones.zone import Zone
from .linter import Finding, Severity, lint_zone


@dataclass
class FixAction:
    code: str
    owner: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code} {self.owner}: {self.detail}"


def _rebuild_params(old: SvcParams, replacements: dict) -> SvcParams:
    """New SvcParams with the given keys replaced (None deletes)."""
    params: List[SvcParam] = []
    for param in old:
        if param.key in replacements:
            continue
        params.append(param)
    for key, value in replacements.items():
        if value is not None:
            params.append(value)
    return SvcParams(params)


class AutoPilot:
    """Keeps one zone's HTTPS records consistent."""

    def __init__(self, zone: Zone, ech_manager: Optional[ECHKeyManager] = None):
        self.zone = zone
        self.ech_manager = ech_manager
        self.log: List[FixAction] = []

    # -- one maintenance pass ------------------------------------------------

    def run(self, current_hour: int = 0, resign_at: Optional[int] = None) -> List[FixAction]:
        """Fix every fixable finding; returns the actions taken.

        *resign_at*: when the zone is signed, re-sign with this inception
        time after changing records (required — stale RRSIGs are a §4.5
        failure of their own).
        """
        actions: List[FixAction] = []
        for rrset in [r for r in self.zone.rrsets() if r.rdtype == rdtypes.HTTPS]:
            new_rdatas = []
            changed = False
            for rdata in rrset:
                if not isinstance(rdata, HTTPSRdata) or rdata.is_alias_mode:
                    new_rdatas.append(rdata)
                    continue
                fixed, record_actions = self._fix_record(rrset.name, rdata, current_hour)
                new_rdatas.append(fixed)
                if record_actions:
                    changed = True
                    actions.extend(record_actions)
            if changed:
                replacement = RRset(rrset.name, rdtypes.HTTPS, rrset.ttl, new_rdatas)
                self.zone.remove_rrset(rrset.name, rdtypes.HTTPS)
                self.zone.add_rrset(replacement)
        if actions and self.zone.signed:
            self.zone.sign(resign_at if resign_at is not None else 0)
            actions.append(FixAction("zone-resigned", self.zone.apex.to_text(),
                                     "RRSIGs regenerated after record changes"))
        self.log.extend(actions)
        return actions

    def _fix_record(self, owner: Name, rdata: HTTPSRdata, current_hour: int):
        actions: List[FixAction] = []
        replacements: dict = {}
        owner_text = owner.to_text()

        # Hint resync (§4.3.5): hints must mirror the address records.
        a_rrset = self.zone.get_rrset(owner, rdtypes.A)
        if rdata.params.ipv4hint and a_rrset is not None:
            a_addrs = sorted(rd.address for rd in a_rrset)
            if sorted(rdata.params.ipv4hint) != a_addrs:
                replacements[KEY_IPV4HINT] = Ipv4Hint(a_addrs)
                actions.append(FixAction("resync-ipv4hint", owner_text,
                                         f"ipv4hint set to {a_addrs}"))
        aaaa_rrset = self.zone.get_rrset(owner, rdtypes.AAAA)
        if rdata.params.ipv6hint and aaaa_rrset is not None:
            aaaa_addrs = sorted(rd.address for rd in aaaa_rrset)
            if sorted(rdata.params.ipv6hint) != aaaa_addrs:
                replacements[KEY_IPV6HINT] = Ipv6Hint(aaaa_addrs)
                actions.append(FixAction("resync-ipv6hint", owner_text,
                                         f"ipv6hint set to {aaaa_addrs}"))

        # ECH renewal (§4.4.2): republish the currently-accepted config.
        if rdata.params.ech is not None and self.ech_manager is not None:
            from ..ech.config import try_parse_config_list

            current_wire = self.ech_manager.published_wire(current_hour)
            parsed = try_parse_config_list(rdata.params.ech)
            accepted = {
                keypair.public_key
                for keypair in self.ech_manager.active_keypairs(current_hour)
            }
            stale = parsed is None or not any(
                config.public_key in accepted for config in parsed
            )
            if stale:
                replacements[KEY_ECH] = Ech(current_wire)
                actions.append(FixAction("renew-ech", owner_text,
                                         "republished the current ECHConfigList"))

        if not replacements:
            return rdata, []
        fixed = HTTPSRdata(
            rdata.priority, rdata.target, _rebuild_params(rdata.params, replacements)
        )
        return fixed, actions

    # -- reporting --------------------------------------------------------------

    def remaining_findings(self, current_hour: int = 0) -> List[Finding]:
        """What the linter still flags after a run (unfixable-by-policy
        items like alias-self targets need a human)."""
        return [
            finding
            for finding in lint_zone(self.zone, self.ech_manager, current_hour)
            if finding.severity is not Severity.INFO
        ]
