"""A tree of zones forming a DNS namespace.

Implements the :class:`repro.dnssec.validation.RecordSource` protocol so a
:class:`~repro.dnssec.validation.ChainValidator` can walk the delegation
chain, and provides the DS-upload step that so many domains in the paper
skip (§4.5.1: third-party DNS operator, registrar never gets the DS).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import RRSIGRdata
from ..dnscore.rrset import RRset
from ..dnssec.signing import sign_rrset
from .zone import Zone, ZoneError


class ZoneTree:
    """All zones of a namespace, keyed by apex, longest-suffix matched."""

    def __init__(self):
        self._zones: Dict[Name, Zone] = {}

    def add_zone(self, zone: Zone) -> None:
        if zone.apex in self._zones:
            raise ZoneError(f"zone {zone.apex} already present")
        self._zones[zone.apex] = zone

    def get_zone(self, apex: Name) -> Optional[Zone]:
        return self._zones.get(apex)

    def zones(self) -> List[Zone]:
        return list(self._zones.values())

    def __len__(self) -> int:
        return len(self._zones)

    def zone_for(self, name: Name) -> Optional[Zone]:
        """The most specific zone whose apex is a suffix of *name*,
        honouring delegation cuts (a delegated child with its own zone in
        the tree wins; a delegated child *without* a zone means lame)."""
        best: Optional[Zone] = None
        for apex, zone in self._zones.items():
            if name.is_subdomain_of(apex):
                if best is None or len(apex) > len(best.apex):
                    best = zone
        return best

    # -- DS upload (the step many domains forget) ---------------------------

    def upload_ds(self, child_apex: Name, now: int) -> None:
        """Publish the child's DS RRset in the parent zone and (re)sign it.

        In the real ecosystem this is the registrar interaction that fails
        when the DNS operator and registrar differ (paper §4.5.1 / Table 9).
        """
        child = self._zones.get(child_apex)
        if child is None or child.keyset is None:
            raise ZoneError(f"child zone {child_apex} missing or unsigned")
        parent = self.parent_zone_of_apex(child_apex)
        if parent is None:
            raise ZoneError(f"no parent zone for {child_apex}")
        ds_rrset = RRset(child_apex, rdtypes.DS, parent.default_ttl, child.ds_rdatas())
        parent._records[(child_apex, rdtypes.DS)] = ds_rrset
        if parent.signed and parent.keyset is not None:
            rrsig = sign_rrset(ds_rrset, parent.apex, parent.keyset.zsk, now)
            parent._rrsigs[(child_apex, rdtypes.DS)] = [rrsig]

    def parent_zone_of_apex(self, apex: Name) -> Optional[Zone]:
        name = apex
        while name != Name.root():
            name = name.parent()
            zone = self._zones.get(name)
            if zone is not None:
                return zone
            if name == Name.root():
                break
        return self._zones.get(Name.root()) if apex != Name.root() else None

    # -- RecordSource protocol -------------------------------------------------

    def fetch_with_sigs(
        self, name: Name, rdtype: int
    ) -> Tuple[Optional[RRset], List[RRSIGRdata]]:
        # DS RRsets live in the parent zone of the owner name.
        if rdtype == rdtypes.DS:
            parent = self.parent_zone_of_apex(name)
            if parent is None:
                return None, []
            return parent.get_rrset(name, rdtype), parent.get_rrsigs(name, rdtype)
        zone = self.zone_for(name)
        if zone is None:
            return None, []
        return zone.get_rrset(name, rdtype), zone.get_rrsigs(name, rdtype)

    def zone_apex_of(self, name: Name) -> Optional[Name]:
        zone = self.zone_for(name)
        return zone.apex if zone is not None else None

    def parent_zone_of(self, apex: Name) -> Optional[Name]:
        if apex == Name.root():
            return None
        parent = self.parent_zone_of_apex(apex)
        return parent.apex if parent is not None else None
