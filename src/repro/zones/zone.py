"""Authoritative zone container.

A :class:`Zone` owns the RRsets at and below its apex, up to (and
including the NS/glue of) any child delegations. It enforces the apex
rules the paper leans on — CNAME at the apex is rejected unless the zone
is explicitly flagged as misconfigured (footnote 3 of the paper) — and
integrates with :mod:`repro.dnssec` for signing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import NSRdata, Rdata, RRSIGRdata, SOARdata
from ..dnscore.rrset import RRset
from ..dnssec.keys import ZoneKeySet
from ..dnssec.signing import SignatureMemo, sign_rrset

DEFAULT_TTL = 300


class ZoneError(ValueError):
    """Invalid zone content."""


class Zone:
    """A single DNS zone."""

    def __init__(
        self,
        apex: Name,
        allow_apex_cname: bool = False,
        default_ttl: int = DEFAULT_TTL,
    ):
        if not isinstance(apex, Name):
            apex = Name.from_text(str(apex))
        self.apex = apex
        self.allow_apex_cname = allow_apex_cname
        self.default_ttl = default_ttl
        self._records: Dict[Tuple[Name, int], RRset] = {}
        self._rrsigs: Dict[Tuple[Name, int], List[RRSIGRdata]] = {}
        # Child apexes delegated out of this zone (NS RRsets live in
        # self._records keyed by the child name).
        self._delegations: set = set()
        self.keyset: Optional[ZoneKeySet] = None
        self.signed = False

    # -- content management --------------------------------------------------

    def _check_name(self, name: Name) -> None:
        if not name.is_subdomain_of(self.apex):
            raise ZoneError(f"{name} is not within zone {self.apex}")

    def add_rrset(self, rrset: RRset) -> None:
        self._check_name(rrset.name)
        if rrset.rdtype == rdtypes.CNAME:
            if rrset.name == self.apex and not self.allow_apex_cname:
                raise ZoneError(
                    f"CNAME at zone apex {self.apex} is not allowed (RFC 1912)"
                )
            conflicting = [
                rdtype
                for (name, rdtype) in self._records
                if name == rrset.name and rdtype != rdtypes.CNAME
            ]
            if conflicting and not (rrset.name == self.apex and self.allow_apex_cname):
                raise ZoneError(f"CNAME at {rrset.name} conflicts with other records")
        elif (rrset.name, rdtypes.CNAME) in self._records and not (
            rrset.name == self.apex and self.allow_apex_cname
        ):
            raise ZoneError(f"{rrset.name} already has a CNAME")
        key = (rrset.name, rrset.rdtype)
        existing = self._records.get(key)
        if existing is None:
            self._records[key] = rrset.copy()
        else:
            for rdata in rrset:
                existing.add(rdata)

    def add_record(self, name, rdtype_text: str, rdata_text: str, ttl: Optional[int] = None) -> None:
        """Zone-file-style convenience: ``add_record("a.com", "HTTPS", "1 . alpn=h2")``."""
        rrset = RRset.from_text(
            name if isinstance(name, str) else name.to_text(),
            ttl if ttl is not None else self.default_ttl,
            rdtype_text,
            rdata_text,
        )
        self.add_rrset(rrset)

    def delegate(self, child_apex: Name, nameservers: Iterable[Name], ttl: Optional[int] = None) -> None:
        """Create a delegation (NS RRset) for *child_apex*."""
        self._check_name(child_apex)
        if child_apex == self.apex:
            raise ZoneError("cannot delegate the apex to itself")
        rrset = RRset(
            child_apex,
            rdtypes.NS,
            ttl if ttl is not None else self.default_ttl,
            [NSRdata(ns) for ns in nameservers],
        )
        self._records[(child_apex, rdtypes.NS)] = rrset
        self._delegations.add(child_apex)

    def remove_rrset(self, name: Name, rdtype: int) -> None:
        self._records.pop((name, rdtype), None)
        self._rrsigs.pop((name, rdtype), None)

    # -- lookup -----------------------------------------------------------------

    def get_rrset(self, name: Name, rdtype: int) -> Optional[RRset]:
        return self._records.get((name, rdtype))

    def get_rrsigs(self, name: Name, rdtype: int) -> List[RRSIGRdata]:
        return list(self._rrsigs.get((name, rdtype), ()))

    def has_name(self, name: Name) -> bool:
        if any(key[0] == name for key in self._records):
            return True
        # Empty non-terminals: a.b.example exists if anything below it does.
        return any(key[0].is_subdomain_of(name) for key in self._records)

    def names(self) -> List[Name]:
        return sorted({key[0] for key in self._records}, key=lambda n: n.to_text())

    def rrsets(self) -> List[RRset]:
        return list(self._records.values())

    def is_delegation(self, name: Name) -> Optional[Name]:
        """If *name* sits at/below a delegation cut, return the child apex."""
        for child in self._delegations:
            if name.is_subdomain_of(child):
                return child
        return None

    @property
    def soa(self) -> Optional[RRset]:
        return self._records.get((self.apex, rdtypes.SOA))

    def ensure_soa(self, primary_ns: Optional[Name] = None, serial: int = 1) -> None:
        if self.soa is not None:
            return
        mname = primary_ns or self.apex.prepend("ns1")
        rname = self.apex.prepend("hostmaster")
        rrset = RRset(
            self.apex,
            rdtypes.SOA,
            self.default_ttl,
            [SOARdata(mname, rname, serial)],
        )
        self._records[(self.apex, rdtypes.SOA)] = rrset

    # -- signing ------------------------------------------------------------------

    def sign(
        self,
        now: int,
        keyset: Optional[ZoneKeySet] = None,
        expiration: Optional[int] = None,
        memo: Optional[SignatureMemo] = None,
    ) -> None:
        """Sign every authoritative RRset. DNSKEY is published at the apex
        and signed with the KSK; everything else with the ZSK.

        Signatures route through the process-global signature memo (or
        *memo*), so re-signing a rebuilt-but-unchanged zone — the common
        case when the world's per-day zone cache evicts — recomputes
        nothing and yields byte-identical RRSIGs."""
        self.keyset = keyset or ZoneKeySet(self.apex)
        dnskey_rrset = RRset(
            self.apex,
            rdtypes.DNSKEY,
            self.default_ttl,
            [self.keyset.ksk.dnskey, self.keyset.zsk.dnskey],
        )
        self._records[(self.apex, rdtypes.DNSKEY)] = dnskey_rrset
        self._rrsigs.clear()
        for (name, rdtype), rrset in list(self._records.items()):
            if name in self._delegations and rdtype == rdtypes.NS:
                continue  # delegation NS sets are not signed by the parent
            key = self.keyset.ksk if rdtype == rdtypes.DNSKEY else self.keyset.zsk
            rrsig = sign_rrset(rrset, self.apex, key, now, expiration, memo=memo)
            self._rrsigs.setdefault((name, rdtype), []).append(rrsig)
        self.signed = True

    def corrupt_signature(self, name: Name, rdtype: int) -> None:
        """Flip a bit in a signature — used to model bogus chains."""
        sigs = self._rrsigs.get((name, rdtype))
        if not sigs:
            raise ZoneError(f"no RRSIG at {name}/{rdtype} to corrupt")
        sig = sigs[0]
        sig.signature = bytes([sig.signature[0] ^ 0x01]) + sig.signature[1:]
        sig.invalidate_wire_cache()

    def ds_rdatas(self) -> List:
        """DS records the parent should publish for this zone (KSK only)."""
        if self.keyset is None:
            raise ZoneError(f"zone {self.apex} is not signed")
        return [self.keyset.ksk.ds_record(self.apex)]

    def __repr__(self) -> str:
        return f"Zone({self.apex.to_text()}, {len(self._records)} rrsets, signed={self.signed})"
