"""Authoritative zone container.

A :class:`Zone` owns the RRsets at and below its apex, up to (and
including the NS/glue of) any child delegations. It enforces the apex
rules the paper leans on — CNAME at the apex is rejected unless the zone
is explicitly flagged as misconfigured (footnote 3 of the paper) — and
integrates with :mod:`repro.dnssec` for signing.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import NSRdata, Rdata, RRSIGRdata, SOARdata
from ..dnscore.rrset import RRset
from ..dnssec.keys import ZoneKeySet
from ..dnssec.signing import SignatureMemo, sign_rrset

DEFAULT_TTL = 300


class ZoneError(ValueError):
    """Invalid zone content."""


class Zone:
    """A single DNS zone."""

    # Process-wide instance counter (itertools.count is atomic under the
    # GIL, so thread-pooled worlds can build zones concurrently).
    _uid_counter = itertools.count()

    def __init__(
        self,
        apex: Name,
        allow_apex_cname: bool = False,
        default_ttl: int = DEFAULT_TTL,
    ):
        if not isinstance(apex, Name):
            apex = Name.from_text(str(apex))
        self.apex = apex
        self.allow_apex_cname = allow_apex_cname
        self.default_ttl = default_ttl
        # (uid, version) is the zone-identity half of the rendered-answer
        # cache key: uid is unique per live instance (never reused within
        # a process — see __setstate__), and version is a monotonic
        # content stamp bumped by every mutator, so a cache can never
        # serve a reply assembled from an older body of this zone or
        # from a different zone that replaced it at the same apex.
        self.uid = next(Zone._uid_counter)
        self.version = 0
        self._records: Dict[Tuple[Name, int], RRset] = {}
        self._rrsigs: Dict[Tuple[Name, int], List[RRSIGRdata]] = {}
        # Child apexes delegated out of this zone (NS RRsets live in
        # self._records keyed by the child name).
        self._delegations: set = set()
        self.keyset: Optional[ZoneKeySet] = None
        self.signed = False

    def cache_stamp(self):
        """Freshness half of the rendered-answer cache key. For a plain
        zone the monotonic ``version`` suffices: content only changes
        through mutators, and every mutator bumps it."""
        return self.version

    def answer_guard(self, name: Name, rdtype: int):
        """Extra per-answer freshness token stored with a cached answer
        (None = valid while (uid, cache_stamp) match). Zones that
        synthesize answers from live world state at query time override
        this together with ``validate_guard`` (see ``DynamicTldZone``)."""
        return None

    def validate_guard(self, guard, name: Name, rdtype: int) -> bool:
        return True

    def __getstate__(self):
        return self.__dict__.copy()

    def __setstate__(self, state):
        self.__dict__.update(state)
        # A pickled uid is only unique within the process that assigned
        # it. A snapshot-loaded zone coexisting with freshly-built zones
        # must not alias one of their uids, so unpickling always draws a
        # new one (answer-cache entries are never pickled, so no live
        # key references the discarded uid).
        self.uid = next(Zone._uid_counter)

    # -- content management --------------------------------------------------

    def _check_name(self, name: Name) -> None:
        if not name.is_subdomain_of(self.apex):
            raise ZoneError(f"{name} is not within zone {self.apex}")

    def add_rrset(self, rrset: RRset) -> None:
        self._check_name(rrset.name)
        if rrset.rdtype == rdtypes.CNAME:
            if rrset.name == self.apex and not self.allow_apex_cname:
                raise ZoneError(
                    f"CNAME at zone apex {self.apex} is not allowed (RFC 1912)"
                )
            conflicting = [
                rdtype
                for (name, rdtype) in self._records
                if name == rrset.name and rdtype != rdtypes.CNAME
            ]
            if conflicting and not (rrset.name == self.apex and self.allow_apex_cname):
                raise ZoneError(f"CNAME at {rrset.name} conflicts with other records")
        elif (rrset.name, rdtypes.CNAME) in self._records and not (
            rrset.name == self.apex and self.allow_apex_cname
        ):
            raise ZoneError(f"{rrset.name} already has a CNAME")
        key = (rrset.name, rrset.rdtype)
        existing = self._records.get(key)
        if existing is None:
            self._records[key] = rrset.copy()
        else:
            for rdata in rrset:
                existing.add(rdata)
        self.version += 1

    def add_record(self, name, rdtype_text: str, rdata_text: str, ttl: Optional[int] = None) -> None:
        """Zone-file-style convenience: ``add_record("a.com", "HTTPS", "1 . alpn=h2")``."""
        rrset = RRset.from_text(
            name if isinstance(name, str) else name.to_text(),
            ttl if ttl is not None else self.default_ttl,
            rdtype_text,
            rdata_text,
        )
        self.add_rrset(rrset)

    def delegate(self, child_apex: Name, nameservers: Iterable[Name], ttl: Optional[int] = None) -> None:
        """Create a delegation (NS RRset) for *child_apex*."""
        self._check_name(child_apex)
        if child_apex == self.apex:
            raise ZoneError("cannot delegate the apex to itself")
        rrset = RRset(
            child_apex,
            rdtypes.NS,
            ttl if ttl is not None else self.default_ttl,
            [NSRdata(ns) for ns in nameservers],
        )
        self._records[(child_apex, rdtypes.NS)] = rrset
        self._delegations.add(child_apex)
        self.version += 1

    def remove_rrset(self, name: Name, rdtype: int) -> None:
        self._records.pop((name, rdtype), None)
        self._rrsigs.pop((name, rdtype), None)
        self.version += 1

    # -- lookup -----------------------------------------------------------------

    def get_rrset(self, name: Name, rdtype: int) -> Optional[RRset]:
        return self._records.get((name, rdtype))

    def get_rrsigs(self, name: Name, rdtype: int) -> List[RRSIGRdata]:
        return list(self._rrsigs.get((name, rdtype), ()))

    def has_name(self, name: Name) -> bool:
        if any(key[0] == name for key in self._records):
            return True
        # Empty non-terminals: a.b.example exists if anything below it does.
        return any(key[0].is_subdomain_of(name) for key in self._records)

    def names(self) -> List[Name]:
        return sorted({key[0] for key in self._records}, key=lambda n: n.to_text())

    def rrsets(self) -> List[RRset]:
        return list(self._records.values())

    def is_delegation(self, name: Name) -> Optional[Name]:
        """If *name* sits at/below a delegation cut, return the child apex."""
        for child in self._delegations:
            if name.is_subdomain_of(child):
                return child
        return None

    @property
    def soa(self) -> Optional[RRset]:
        return self._records.get((self.apex, rdtypes.SOA))

    @property
    def soa_serial(self) -> Optional[int]:
        """Current SOA serial — the freshness stamp SOA-bearing cached
        answers are validated against (see ``roll_soa_serial``)."""
        soa = self._records.get((self.apex, rdtypes.SOA))
        return soa[0].serial if soa is not None else None

    def ensure_soa(self, primary_ns: Optional[Name] = None, serial: int = 1) -> None:
        if self.soa is not None:
            return
        mname = primary_ns or self.apex.prepend("ns1")
        rname = self.apex.prepend("hostmaster")
        rrset = RRset(
            self.apex,
            rdtypes.SOA,
            self.default_ttl,
            [SOARdata(mname, rname, serial)],
        )
        self._records[(self.apex, rdtypes.SOA)] = rrset
        self.version += 1

    def roll_soa_serial(self, serial: int) -> None:
        """Replace the SOA RRset with one carrying *serial*.

        A fresh RRset (not an in-place rdata edit) so responses already
        referencing the old SOA keep the serial they were answered with —
        exactly the aliasing a from-scratch rebuild would produce. Used
        by the world's zone-body reuse path to advance an otherwise
        unchanged zone to a new day.

        Deliberately does NOT bump ``version``: every non-SOA answer this
        zone can give is unchanged by the roll, so rendered-answer cache
        entries keyed on (uid, version) stay valid across days — that
        cross-day survival is the fast path's main win. The answers the
        roll DOES change (anything carrying the SOA: NXDOMAIN, NODATA,
        apex SOA queries) are guarded individually: the cache stamps
        SOA-bearing entries with the serial they were rendered under and
        re-validates it on every hit (see ``AuthoritativeServer``).
        Signed zones re-sign after the roll, and ``sign`` bumps
        ``version``, so their entries all turn over anyway.
        """
        soa = self.soa
        if soa is None:
            raise ZoneError(f"zone {self.apex} has no SOA to roll")
        old = soa[0]
        rrset = RRset(
            self.apex,
            rdtypes.SOA,
            soa.ttl,
            [
                SOARdata(
                    old.mname, old.rname, serial,
                    refresh=old.refresh, retry=old.retry,
                    expire=old.expire, minimum=old.minimum,
                )
            ],
        )
        self._records[(self.apex, rdtypes.SOA)] = rrset
        self._rrsigs.pop((self.apex, rdtypes.SOA), None)

    # -- signing ------------------------------------------------------------------

    def sign(
        self,
        now: int,
        keyset: Optional[ZoneKeySet] = None,
        expiration: Optional[int] = None,
        memo: Optional[SignatureMemo] = None,
    ) -> None:
        """Sign every authoritative RRset. DNSKEY is published at the apex
        and signed with the KSK; everything else with the ZSK.

        Signatures route through the process-global signature memo (or
        *memo*), so re-signing a rebuilt-but-unchanged zone — the common
        case when the world's per-day zone cache evicts — recomputes
        nothing and yields byte-identical RRSIGs."""
        self.keyset = keyset or ZoneKeySet(self.apex)
        dnskey_rrset = RRset(
            self.apex,
            rdtypes.DNSKEY,
            self.default_ttl,
            [self.keyset.ksk.dnskey, self.keyset.zsk.dnskey],
        )
        self._records[(self.apex, rdtypes.DNSKEY)] = dnskey_rrset
        self._rrsigs.clear()
        for (name, rdtype), rrset in list(self._records.items()):
            if name in self._delegations and rdtype == rdtypes.NS:
                continue  # delegation NS sets are not signed by the parent
            key = self.keyset.ksk if rdtype == rdtypes.DNSKEY else self.keyset.zsk
            rrsig = sign_rrset(rrset, self.apex, key, now, expiration, memo=memo)
            self._rrsigs.setdefault((name, rdtype), []).append(rrsig)
        self.signed = True
        self.version += 1

    def corrupt_signature(self, name: Name, rdtype: int) -> None:
        """Flip a bit in a signature — used to model bogus chains."""
        sigs = self._rrsigs.get((name, rdtype))
        if not sigs:
            raise ZoneError(f"no RRSIG at {name}/{rdtype} to corrupt")
        sig = sigs[0]
        sig.signature = bytes([sig.signature[0] ^ 0x01]) + sig.signature[1:]
        sig.invalidate_wire_cache()
        self.version += 1

    def ds_rdatas(self) -> List:
        """DS records the parent should publish for this zone (KSK only)."""
        if self.keyset is None:
            raise ZoneError(f"zone {self.apex} is not signed")
        return [self.keyset.ksk.ds_record(self.apex)]

    def __repr__(self) -> str:
        return f"Zone({self.apex.to_text()}, {len(self._records)} rrsets, signed={self.signed})"
