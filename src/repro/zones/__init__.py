"""Zone containers, the namespace tree, and zone-file I/O."""

from .zone import DEFAULT_TTL, Zone, ZoneError
from .tree import ZoneTree
from .zonefile import ZoneFileError, parse_zone_file, serialize_zone

__all__ = [
    "DEFAULT_TTL",
    "Zone",
    "ZoneError",
    "ZoneTree",
    "ZoneFileError",
    "parse_zone_file",
    "serialize_zone",
]
