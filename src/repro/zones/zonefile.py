"""BIND-style zone file parsing and serialization.

Supports the subset of RFC 1035 master-file syntax the study's testbed
uses: ``$ORIGIN`` / ``$TTL`` directives, relative owner names, ``@`` for
the origin, blank-owner continuation (repeat the previous owner),
parenthesized multi-line records (SOA), ``;`` comments, and optional
class fields. Record data is parsed by the rdata classes, so HTTPS/SVCB
presentation syntax (including quoted SvcParam values) round-trips.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import rdata_from_text
from ..dnscore.rrset import RRset
from .zone import DEFAULT_TTL, Zone, ZoneError


class ZoneFileError(ValueError):
    """Malformed zone file."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment, honouring double quotes."""
    out = []
    in_quotes = False
    for ch in line:
        if ch == '"':
            in_quotes = not in_quotes
        if ch == ";" and not in_quotes:
            break
        out.append(ch)
    return "".join(out)


def _logical_lines(text: str) -> Iterable[Tuple[int, str]]:
    """Yield (line_number, logical line), joining parenthesized spans."""
    buffer: List[str] = []
    start_line = 0
    depth = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line.strip() and depth == 0:
            continue
        if depth == 0:
            start_line = number
        depth += line.count("(") - line.count(")")
        if depth < 0:
            raise ZoneFileError("unbalanced ')'", number)
        buffer.append(line)
        if depth == 0:
            yield start_line, " ".join(buffer).replace("(", " ").replace(")", " ")
            buffer = []
    if depth != 0:
        raise ZoneFileError("unbalanced '(' at end of file", start_line)


def _is_ttl(token: str) -> bool:
    return token.isdigit() or (
        len(token) > 1 and token[:-1].isdigit() and token[-1].upper() in "SMHDW"
    )


_TTL_UNITS = {"S": 1, "M": 60, "H": 3600, "D": 86400, "W": 604800}


def parse_ttl(token: str) -> int:
    if token.isdigit():
        return int(token)
    unit = token[-1].upper()
    if unit in _TTL_UNITS and token[:-1].isdigit():
        return int(token[:-1]) * _TTL_UNITS[unit]
    raise ZoneFileError(f"bad TTL {token!r}")


def _resolve_owner(token: str, origin: Optional[Name], line_number: int) -> Name:
    if token == "@":
        if origin is None:
            raise ZoneFileError("'@' used before $ORIGIN", line_number)
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    if origin is None:
        raise ZoneFileError(f"relative name {token!r} before $ORIGIN", line_number)
    relative = Name.from_text(token + ".")
    return Name(relative.labels[:-1] + origin.labels)


def parse_zone_file(
    text: str,
    origin: Optional[str] = None,
    default_ttl: int = DEFAULT_TTL,
    allow_apex_cname: bool = False,
) -> Zone:
    """Parse master-file *text* into a :class:`Zone`.

    *origin* seeds ``$ORIGIN`` (required unless the file sets it). The
    zone apex is the origin in effect at the first record.
    """
    current_origin = Name.from_text(origin) if origin else None
    current_ttl = default_ttl
    previous_owner: Optional[Name] = None
    records: List[Tuple[Name, int, int, str, int]] = []

    for line_number, line in _logical_lines(text):
        tokens = line.split()
        if not tokens:
            continue
        directive = tokens[0].upper()
        if directive == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError("$ORIGIN needs exactly one argument", line_number)
            current_origin = Name.from_text(tokens[1])
            continue
        if directive == "$TTL":
            if len(tokens) != 2:
                raise ZoneFileError("$TTL needs exactly one argument", line_number)
            current_ttl = parse_ttl(tokens[1])
            continue
        if directive.startswith("$"):
            raise ZoneFileError(f"unsupported directive {tokens[0]}", line_number)

        # Owner column: present unless the raw line started with whitespace.
        if line[0].isspace():
            owner = previous_owner
            if owner is None:
                raise ZoneFileError("continuation line before any owner", line_number)
            fields = tokens
        else:
            owner = _resolve_owner(tokens[0], current_origin, line_number)
            fields = tokens[1:]
        previous_owner = owner

        # [TTL] [class] type rdata — TTL and class may appear in either order.
        ttl = current_ttl
        while fields:
            if _is_ttl(fields[0]):
                ttl = parse_ttl(fields[0])
                fields = fields[1:]
            elif fields[0].upper() in ("IN", "CH", "HS"):
                fields = fields[1:]
            else:
                break
        if not fields:
            raise ZoneFileError("missing record type", line_number)
        try:
            rdtype = rdtypes.text_to_type(fields[0])
        except ValueError as exc:
            raise ZoneFileError(str(exc), line_number) from exc
        rdata_text = " ".join(fields[1:])
        records.append((owner, ttl, rdtype, rdata_text, line_number))

    if not records:
        raise ZoneFileError("zone file contains no records")
    if current_origin is None:
        current_origin = records[0][0]

    zone = Zone(current_origin, allow_apex_cname=allow_apex_cname, default_ttl=default_ttl)
    for owner, ttl, rdtype, rdata_text, line_number in records:
        try:
            rdata = rdata_from_text(rdtype, rdata_text)
        except Exception as exc:
            raise ZoneFileError(f"bad rdata: {exc}", line_number) from exc
        try:
            zone.add_rrset(RRset(owner, rdtype, ttl, [rdata]))
        except ZoneError as exc:
            raise ZoneFileError(str(exc), line_number) from exc
    return zone


def serialize_zone(zone: Zone, relativize: bool = True) -> str:
    """Render *zone* back to master-file text (stable ordering: SOA first,
    then owner-name order)."""
    origin = zone.apex
    lines = [f"$ORIGIN {origin.to_text()}", f"$TTL {zone.default_ttl}"]

    def owner_text(name: Name) -> str:
        if not relativize:
            return name.to_text()
        if name == origin:
            return "@"
        if name.is_subdomain_of(origin):
            depth = len(origin.labels)
            return Name(name.labels[: len(name.labels) - depth] + (b"",)).to_text(
                omit_final_dot=True
            )
        return name.to_text()

    rrsets = sorted(
        zone.rrsets(),
        key=lambda rrset: (
            rrset.rdtype != rdtypes.SOA,  # SOA first
            rrset.name.to_text(),
            rrset.rdtype,
        ),
    )
    for rrset in rrsets:
        for rdata in rrset:
            lines.append(
                f"{owner_text(rrset.name)} {rrset.ttl} IN "
                f"{rdtypes.type_to_text(rrset.rdtype)} {rdata.to_text()}"
            )
    return "\n".join(lines) + "\n"
