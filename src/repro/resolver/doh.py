"""DNS over HTTPS (RFC 8484).

Firefox only performs HTTPS-RR lookups over DoH (paper §5.1, footnote
13), so the testbed routes its queries through this layer: queries are
encoded to DNS wire format, carried in an HTTP GET (base64url ``?dns=``)
or POST (``application/dns-message`` body) exchange, and decoded again —
exercising the full wire codec on every lookup.

Like :class:`~repro.resolver.stub.StubResolver`, the server side is a
thin frontend over the shared resumable resolution core: each decoded
question drives one :class:`~repro.resolver.recursive.Resolution` state
machine via ``resolver.resolve``, so DoH and plain-stub lookups answer
identically (and a batch scheduler could drive the same machines).
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from ..dnscore.wire import WireError
from .recursive import RecursiveResolver

CONTENT_TYPE = "application/dns-message"


@dataclass
class DohResponse:
    """A minimal HTTP response envelope."""

    status: int
    content_type: str
    body: bytes


class DohServer:
    """The resolver side of RFC 8484 (e.g. dns.google/dns-query)."""

    def __init__(self, resolver: RecursiveResolver, path: str = "/dns-query"):
        self.resolver = resolver
        self.path = path
        self.request_count = 0

    # -- HTTP handlers ------------------------------------------------------

    def handle_get(self, path: str) -> DohResponse:
        """``GET /dns-query?dns=<base64url(wire query)>``."""
        self.request_count += 1
        prefix = self.path + "?dns="
        if not path.startswith(prefix):
            return DohResponse(400, "text/plain", b"missing dns parameter")
        encoded = path[len(prefix):]
        padding = "=" * (-len(encoded) % 4)
        try:
            wire = base64.urlsafe_b64decode(encoded + padding)
        except Exception:
            return DohResponse(400, "text/plain", b"bad base64url")
        return self._answer(wire)

    def handle_post(self, path: str, content_type: str, body: bytes) -> DohResponse:
        self.request_count += 1
        if path != self.path:
            return DohResponse(404, "text/plain", b"not found")
        if content_type != CONTENT_TYPE:
            return DohResponse(415, "text/plain", b"unsupported media type")
        return self._answer(body)

    def _answer(self, wire: bytes) -> DohResponse:
        try:
            query = Message.from_wire(wire)
        except (WireError, ValueError):
            return DohResponse(400, "text/plain", b"malformed DNS message")
        if not query.questions:
            return DohResponse(400, "text/plain", b"empty question section")
        question = query.questions[0]
        response = self.resolver.resolve(question.name, question.rdtype)
        response.msg_id = query.msg_id
        return DohResponse(200, CONTENT_TYPE, response.to_wire())


class DohClient:
    """The stub side: encodes queries for a :class:`DohServer`.

    In the simulation the 'TLS connection' to the DoH server is direct
    object access; the *messages* still cross the full wire codec both
    ways, which is the property the tests care about.
    """

    def __init__(self, server: DohServer, url: str = "https://dns.google/dns-query",
                 method: str = "GET"):
        if method not in ("GET", "POST"):
            raise ValueError("method must be GET or POST")
        self.server = server
        self.url = url
        self.method = method
        self._msg_id = 0

    def query(self, name, rdtype: int, want_dnssec: bool = True) -> Message:
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        self._msg_id = (self._msg_id + 1) & 0xFFFF
        query = Message.make_query(name, rdtype, self._msg_id, want_dnssec=want_dnssec)
        wire = query.to_wire()
        if self.method == "GET":
            encoded = base64.urlsafe_b64encode(wire).decode().rstrip("=")
            http = self.server.handle_get(f"{self.server.path}?dns={encoded}")
        else:
            http = self.server.handle_post(self.server.path, CONTENT_TYPE, wire)
        if http.status != 200:
            failure = Message(self._msg_id)
            failure.is_response = True
            failure.rcode = rdtypes.SERVFAIL
            return failure
        return Message.from_wire(http.body)
