"""Simulated wall clock shared by resolvers, caches, and signers."""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, now: float = 0.0):
        self._now = float(now)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds

    def set(self, now: float) -> None:
        if now < self._now:
            raise ValueError("time cannot go backwards")
        self._now = float(now)

    def rewind(self, now: float) -> None:
        """Reset the clock to an earlier instant.

        Only for world reuse (:meth:`~repro.simnet.world.World.reset`):
        every consumer's time-derived cache must be flushed alongside, or
        entries stamped in the "future" would satisfy lookups after the
        rewind. Normal simulation time is monotonic via :meth:`set`."""
        self._now = float(now)

    def __repr__(self) -> str:
        return f"SimClock({self._now})"
