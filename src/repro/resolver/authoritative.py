"""Authoritative DNS server.

Serves one or more zones from a :class:`~repro.zones.tree.ZoneTree`:
answers, referrals, CNAME processing, NXDOMAIN/NODATA, and RRSIG
inclusion for signed zones.

Two behaviour knobs model real-provider quirks the paper measures:

* ``unsupported_rdtypes`` — some DNS providers return an empty NOERROR
  for HTTPS queries even when the zone owner configured the record
  (§4.2.3, mixed-provider intermittency);
* ``drop_rrsigs`` — providers that serve records but no signatures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from ..dnscore.rrset import RRset
from ..zones.tree import ZoneTree
from ..zones.zone import Zone


class AuthoritativeServer:
    """A name server instance at one (or more) IP addresses."""

    def __init__(
        self,
        name: str,
        tree: Optional[ZoneTree] = None,
        unsupported_rdtypes: Iterable[int] = (),
        drop_rrsigs: bool = False,
    ):
        self.name = name
        self.tree = tree if tree is not None else ZoneTree()
        self.unsupported_rdtypes: Set[int] = set(unsupported_rdtypes)
        self.drop_rrsigs = drop_rrsigs
        self.query_log: List[tuple] = []
        self.log_queries = False

    def add_zone(self, zone: Zone) -> None:
        self.tree.add_zone(zone)

    # -- query handling -----------------------------------------------------

    def handle_query(self, query: Message) -> Message:
        response = query.make_response()
        if not query.questions:
            response.rcode = rdtypes.FORMERR
            return response
        question = query.questions[0]
        if self.log_queries:
            self.query_log.append((question.name.to_text(), question.rdtype))
        zone = self.tree.zone_for(question.name)
        if zone is None:
            response.rcode = rdtypes.REFUSED
            return response
        response.authoritative = True

        # Provider-level lack of support for a record type: empty NOERROR.
        if question.rdtype in self.unsupported_rdtypes:
            self._attach_soa(response, zone)
            return response

        # Delegation below a zone cut → referral.
        child = zone.is_delegation(question.name)
        if child is not None and not (
            question.name == child and question.rdtype == rdtypes.DS
        ):
            ns_rrset = zone.get_rrset(child, rdtypes.NS)
            response.authoritative = False
            if ns_rrset is not None:
                response.authority.append(ns_rrset)
                self._attach_glue(response, zone, ns_rrset)
            return response

        self._answer_from_zone(
            response, zone, question.name, question.rdtype, want_dnssec=query.dnssec_ok
        )
        return response

    def _answer_from_zone(
        self, response: Message, zone: Zone, name: Name, rdtype: int, want_dnssec: bool = False
    ) -> None:
        # CNAME processing first (RFC 1034 section 4.3.2 step 3a).
        cname_rrset = zone.get_rrset(name, rdtypes.CNAME)
        if cname_rrset is not None and rdtype not in (rdtypes.CNAME,):
            response.answers.append(cname_rrset)
            if want_dnssec:
                self._attach_sigs(response, zone, name, rdtypes.CNAME)
            target = cname_rrset[0].target
            if target.is_subdomain_of(zone.apex):
                self._answer_from_zone(response, zone, target, rdtype, want_dnssec)
            return

        rrset = zone.get_rrset(name, rdtype)
        if rrset is not None:
            response.answers.append(rrset)
            if want_dnssec:
                self._attach_sigs(response, zone, name, rdtype)
            return

        if zone.has_name(name):
            # NODATA: name exists but not this type.
            self._attach_soa(response, zone)
        else:
            response.rcode = rdtypes.NXDOMAIN
            self._attach_soa(response, zone)

    def _attach_sigs(self, response: Message, zone: Zone, name: Name, rdtype: int) -> None:
        if self.drop_rrsigs:
            return
        rrsigs = zone.get_rrsigs(name, rdtype)
        if rrsigs:
            sig_rrset = RRset(name, rdtypes.RRSIG, zone.default_ttl, rrsigs)
            response.answers.append(sig_rrset)

    def _attach_soa(self, response: Message, zone: Zone) -> None:
        soa = zone.soa
        if soa is not None and not any(
            rr.rdtype == rdtypes.SOA and rr.name == zone.apex for rr in response.authority
        ):
            response.authority.append(soa)

    def _attach_glue(self, response: Message, zone: Zone, ns_rrset: RRset) -> None:
        for ns_rdata in ns_rrset:
            ns_name = ns_rdata.target
            if not ns_name.is_subdomain_of(zone.apex):
                continue
            for glue_type in (rdtypes.A, rdtypes.AAAA):
                glue = zone.get_rrset(ns_name, glue_type)
                if glue is not None:
                    response.additional.append(glue)

    def __repr__(self) -> str:
        return f"AuthoritativeServer({self.name}, zones={len(self.tree)})"
