"""Authoritative DNS server.

Serves one or more zones from a :class:`~repro.zones.tree.ZoneTree`:
answers, referrals, CNAME processing, NXDOMAIN/NODATA, and RRSIG
inclusion for signed zones.

Two behaviour knobs model real-provider quirks the paper measures:

* ``unsupported_rdtypes`` — some DNS providers return an empty NOERROR
  for HTTPS queries even when the zone owner configured the record
  (§4.2.3, mixed-provider intermittency);
* ``drop_rrsigs`` — providers that serve records but no signatures.

**Answer fast path (tier 1 of 3).** A world-shared :class:`AnswerCache`
memoises the assembled response sections per (zone identity, server
quirks, qname, qtype, DO bit): a repeated question is a dict hit
instead of a tree-walk + RRset/RRSIG assembly pass. The cache sits
*behind* query logging and the network fault hook, so ``query_log`` and
``dns_query_count`` are identical with the cache on or off, and faulted
deliveries never touch it. Both provider quirks join the key, so two
servers with different quirks can share one cache (mixed-provider
domains serve the *same* :class:`~repro.zones.zone.Zone` object from
both of their providers).

**Staleness is keyed out, not flushed out.** Zone identity in the key is
``(zone.uid, zone.cache_stamp())``: ``uid`` is unique per live zone
instance (a rebuilt zone can never alias its predecessor's entries) and
``cache_stamp()`` is the zone's own freshness stamp (the monotonic
mutation ``version``). Two per-entry guards cover what the key cannot:
SOA-bearing entries (NXDOMAIN/NODATA/apex-SOA) pin the serial they were
rendered under — the zone-body reuse path rolls serials *without*
bumping ``version`` — and entries from zones that synthesize answers
out of live world state (:class:`~repro.simnet.world.DynamicTldZone`)
carry a :meth:`~repro.zones.zone.Zone.answer_guard` token revalidated
on the first hit of each new day. Entries therefore survive day and
ECH-generation changes — the cross-day hits are most of the win — and
:class:`~repro.simnet.world.World` only calls
:meth:`AnswerCache.invalidate` on the events neither keys nor guards
can see: fault install/clear (fault hooks change answers behind the
zones' backs) and ``World.reset()``. codelint's ``INV01`` rule enforces
that every ``_zone_cache`` flush either invalidates alongside or
carries an explicit justified suppression.

Tier 3 rides on the tier-1 entry: in ``wire_mode`` the entry carries the
encoded response bytes plus the decoded client-side message for one
header signature (flags/rcode/EDNS), so a repeated wire-mode answer
skips the entire encode **and** decode pass — see
:meth:`AnswerCache.wire_roundtrip` and :mod:`repro.resolver.network`.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Iterable, List, Optional, Set, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from ..dnscore.rdata import SOARdata
from ..dnscore.rrset import RRset
from ..zones.tree import ZoneTree
from ..zones.zone import Zone

# Entries survive day and ECH-generation changes (staleness is handled
# by the key, not by flushing), so the LRU bound is what keeps a long
# longitudinal run from accumulating every question it ever answered.
ANSWER_CACHE_CAPACITY = 200_000


class CachedAnswer:
    """One rendered answer: the response sections :meth:`AuthoritativeServer.
    handle_query` computed for a (zone, question, quirks) key, plus the
    tier-3 wire/decode template once the response has been encoded."""

    __slots__ = (
        "rcode", "authoritative", "answers", "authority", "additional",
        "soa_serial", "guard", "wire", "decoded",
    )

    def __init__(self, response: Message):
        self.rcode = response.rcode
        self.authoritative = response.authoritative
        self.answers = tuple(response.answers)
        self.authority = tuple(response.authority)
        self.additional = tuple(response.additional)
        # SOA serial the answer was rendered under, if it carries the
        # SOA (set by handle_query); None for SOA-free answers, which
        # stay valid across serial rolls.
        self.soa_serial: Optional[int] = None
        # Zone-specific freshness token (Zone.answer_guard) revalidated
        # per hit; None for answers valid while (uid, stamp) match.
        self.guard = None
        # (header signature, encoded bytes) and the decoded client-side
        # Message for that signature — filled by wire_roundtrip.
        self.wire: Optional[Tuple[tuple, bytes]] = None
        self.decoded: Optional[Message] = None


class AnswerCache:
    """World-shared rendered-answer + wire-byte cache (tiers 1 and 3).

    Starts ``enabled=False``: a cache that is not explicitly switched on
    by the campaign driver (``run_scheduled``'s ``answer_cache`` knob)
    changes nothing. ``invalidate()`` drops the rendered entries —
    called by the world on fault install/clear, the one event the
    (uid, stamp, serial) keys cannot see coming.
    """

    def __init__(self, capacity: int = ANSWER_CACHE_CAPACITY):
        self.capacity = capacity
        self.enabled = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.wire_hits = 0
        self.query_hits = 0
        self.serial_refreshes = 0
        self._entries: "OrderedDict[tuple, CachedAnswer]" = OrderedDict()
        # Decoded query templates (client→server leg). A query parse is a
        # pure function of its bytes — no zone or clock dependence — so
        # these never invalidate, only evict.
        self._queries: "OrderedDict[tuple, Message]" = OrderedDict()

    # -- lifecycle ---------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self.enabled:
            return
        self.enabled = enabled
        # Toggling either way starts from a clean slate: a disabled run
        # must do zero cache work, and a re-enabled run must not serve
        # entries from before the gap.
        self._entries.clear()
        self._queries.clear()

    def invalidate(self) -> None:
        """Drop every rendered entry (answers changed behind the keys)."""
        self._entries.clear()

    def reset(self) -> None:
        """Back to the just-built state: disabled, empty, counters zeroed."""
        self.enabled = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.wire_hits = 0
        self.query_hits = 0
        self.serial_refreshes = 0
        self._entries.clear()
        self._queries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- tier 1: rendered answers ------------------------------------------

    def lookup(self, key: tuple, zone: Optional[Zone] = None) -> Optional[CachedAnswer]:
        """Return the live entry for *key*, or None (counted as a miss).

        An entry that carries the SOA pins the serial it was rendered
        under; when *zone* is given, such an entry only hits while the
        zone's serial still matches (``roll_soa_serial`` advances serials
        without bumping the version that keys the cache). On an unsigned
        zone a serial mismatch is repaired in place rather than missed:
        the fresh synthesis would differ from the entry in exactly the
        SOA it attaches, so :meth:`_refresh_serial` swaps in the zone's
        current SOA and patches the wire template's 4 serial bytes."""
        entry = self._entries.get(key)
        if entry is not None:
            guard = entry.guard
            # key[3]/key[4] are the question name/rdtype (see
            # AuthoritativeServer.handle_query's key layout).
            if guard is None or zone is None or zone.validate_guard(
                guard, key[3], key[4]
            ):
                serial = entry.soa_serial
                if serial is None or zone is None or serial == zone.soa_serial:
                    self.hits += 1
                    return entry
                # Signed zones re-sign after a roll (version bump → new
                # key), so a refresh would have to reconcile RRSIGs too;
                # restricting it to unsigned zones keeps the patch exact.
                if not zone.signed and self._refresh_serial(entry, zone):
                    self.hits += 1
                    return entry
        self.misses += 1
        return None

    def _refresh_serial(self, entry: CachedAnswer, zone: Zone) -> bool:
        """Advance a SOA-bearing entry to *zone*'s current serial.

        ``roll_soa_serial`` replaces only the SOA RRset of an otherwise
        unchanged unsigned zone, so the answer this entry would be
        re-synthesized into differs in exactly one RRset: swap the
        zone's current SOA into the cached sections (the same object a
        fresh ``_attach_soa`` would append) and splice the new serial
        into the encoded template — its only encoding is the 4-byte u32
        in the SOA rdata, located by searching for the old serial's
        bytes. If that byte pattern is not unique in the message the
        templates are dropped instead, and the next wire round trip
        re-encodes from the refreshed sections."""
        new_soa = zone.soa
        new_serial = zone.soa_serial
        if new_soa is None or new_serial is None:
            return False
        old_serial = entry.soa_serial
        replaced = False
        for section_name in ("authority", "answers"):
            section = getattr(entry, section_name)
            for i, rrset in enumerate(section):
                if rrset.rdtype == rdtypes.SOA and rrset.name == zone.apex:
                    setattr(
                        entry, section_name,
                        section[:i] + (new_soa,) + section[i + 1:],
                    )
                    replaced = True
                    break
            if replaced:
                break
        if not replaced:
            return False
        entry.soa_serial = new_serial
        cached = entry.wire
        if cached is not None:
            wire = cached[1]
            needle = struct.pack("!I", old_serial)
            idx = wire.find(needle)
            if idx < 0 or wire.find(needle, idx + 1) != -1:
                entry.wire = None
                entry.decoded = None
            else:
                patched_wire = (
                    wire[:idx] + struct.pack("!I", new_serial) + wire[idx + 4:]
                )
                decoded = self._patch_decoded(entry.decoded, zone.apex, new_serial)
                if decoded is None:
                    entry.wire = None
                    entry.decoded = None
                else:
                    entry.wire = (cached[0], patched_wire)
                    entry.decoded = decoded
        self.serial_refreshes += 1
        return True

    @staticmethod
    def _patch_decoded(decoded: Optional[Message], apex: Name, new_serial: int) -> Optional[Message]:
        """Clone the decoded client-side template with its SOA serial
        replaced. A clone (not an in-place edit) because the old template
        has been handed to clients as a live response; a fresh RRset (not
        an rdata edit) because resolvers may have cached the old one."""
        if decoded is None:
            return None
        for section_name in ("authority", "answers"):
            section = getattr(decoded, section_name)
            for i, rrset in enumerate(section):
                if rrset.rdtype == rdtypes.SOA and rrset.name == apex:
                    old = rrset[0]
                    patched = RRset(
                        rrset.name,
                        rrset.rdtype,
                        rrset.ttl,
                        [
                            SOARdata(
                                old.mname, old.rname, new_serial,
                                refresh=old.refresh, retry=old.retry,
                                expire=old.expire, minimum=old.minimum,
                            )
                        ],
                    )
                    clone = Message(decoded.msg_id)
                    clone.flags = decoded.flags
                    clone.rcode = decoded.rcode
                    clone.opcode = decoded.opcode
                    clone.use_edns = decoded.use_edns
                    clone.edns_payload_size = decoded.edns_payload_size
                    clone.dnssec_ok = decoded.dnssec_ok
                    clone.questions = list(decoded.questions)
                    clone.answers = list(decoded.answers)
                    clone.authority = list(decoded.authority)
                    clone.additional = list(decoded.additional)
                    getattr(clone, section_name)[i] = patched
                    return clone
        return None

    def store(self, key: tuple, response: Message, zone: Optional[Zone] = None) -> CachedAnswer:
        entry = CachedAnswer(response)
        if zone is not None:
            for rrset in entry.authority:
                if rrset.rdtype == rdtypes.SOA:
                    entry.soa_serial = zone.soa_serial
                    break
            else:
                for rrset in entry.answers:
                    if rrset.rdtype == rdtypes.SOA:
                        entry.soa_serial = zone.soa_serial
                        break
            entry.guard = zone.answer_guard(key[3], key[4])
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    # -- tier 3: wire bytes ------------------------------------------------

    def wire_roundtrip(self, response: Message, entry: CachedAnswer) -> Message:
        """The wire-mode server→client round trip for a cached answer.

        The entry's encoded bytes and decoded client-side message are
        valid for any response whose header matches the stored signature
        (flags including RD, rcode, opcode, EDNS negotiation, DO) — a
        repeated answer skips the entire encode/decode pass and returns
        the shared decoded template. Sharing is safe because the
        resolver treats upstream responses as immutable (it copies the
        sections it keeps; ``Message.msg_id`` on responses is never
        validated); anything that broke that contract would diverge from
        the cache-off run and fail the equivalence suites.
        """
        signature = (
            response.flags,
            response.rcode,
            response.opcode,
            response.use_edns,
            response.edns_payload_size,
            response.dnssec_ok,
        )
        cached = entry.wire
        if cached is not None and cached[0] == signature:
            self.wire_hits += 1
            return entry.decoded
        wire = response.to_wire()
        decoded = Message.from_wire(wire)
        entry.wire = (signature, wire)
        entry.decoded = decoded
        return decoded

    def query_roundtrip(self, query: Message) -> Message:
        """The wire-mode client→server leg: ``Message.from_wire(query.
        to_wire())`` memoised on the question + header fields.

        A parsed query is a pure function of its bytes, so the template
        never goes stale; each hit returns a per-call clone carrying the
        live transaction's ``msg_id`` (responses copy their id from the
        query, so the id must be exact even though nothing validates it
        on the way back)."""
        if not query.questions:
            return Message.from_wire(query.to_wire())
        question = query.questions[0]
        key = (
            question.name,
            question.rdtype,
            query.flags,
            query.use_edns,
            query.edns_payload_size,
            query.dnssec_ok,
        )
        template = self._queries.get(key)
        if template is None:
            decoded = Message.from_wire(query.to_wire())
            self._queries[key] = decoded
            while len(self._queries) > self.capacity:
                self._queries.popitem(last=False)
            return decoded
        self.query_hits += 1
        clone = Message(query.msg_id)
        clone.flags = template.flags
        clone.rcode = template.rcode
        clone.opcode = template.opcode
        clone.use_edns = template.use_edns
        clone.edns_payload_size = template.edns_payload_size
        clone.dnssec_ok = template.dnssec_ok
        clone.questions = list(template.questions)
        return clone


class AuthoritativeServer:
    """A name server instance at one (or more) IP addresses."""

    def __init__(
        self,
        name: str,
        tree: Optional[ZoneTree] = None,
        unsupported_rdtypes: Iterable[int] = (),
        drop_rrsigs: bool = False,
        answer_cache: Optional[AnswerCache] = None,
    ):
        self.name = name
        self.tree = tree if tree is not None else ZoneTree()
        self.unsupported_rdtypes = set(unsupported_rdtypes)
        self.drop_rrsigs = drop_rrsigs
        self.answer_cache = answer_cache
        self.query_log: List[tuple] = []
        self.log_queries = False

    # Both quirks are folded into one precomputed hashable key so the
    # per-query cache key build never re-freezes the rdtype set. The
    # property setters keep it in sync with the world-build idiom of
    # assigning quirks after construction.

    @property
    def unsupported_rdtypes(self) -> Set[int]:
        return self._unsupported_rdtypes

    @unsupported_rdtypes.setter
    def unsupported_rdtypes(self, value: Iterable[int]) -> None:
        self._unsupported_rdtypes = set(value)
        self._refresh_quirk_key()

    @property
    def drop_rrsigs(self) -> bool:
        return self._drop_rrsigs

    @drop_rrsigs.setter
    def drop_rrsigs(self, value: bool) -> None:
        self._drop_rrsigs = bool(value)
        self._refresh_quirk_key()

    def _refresh_quirk_key(self) -> None:
        self._quirk_key = (
            frozenset(getattr(self, "_unsupported_rdtypes", ())),
            getattr(self, "_drop_rrsigs", False),
        )

    def add_zone(self, zone: Zone) -> None:
        self.tree.add_zone(zone)

    # -- query handling -----------------------------------------------------

    def handle_query(self, query: Message) -> Message:
        if not query.questions:
            response = query.make_response()
            response.rcode = rdtypes.FORMERR
            return response
        question = query.questions[0]
        if self.log_queries:
            self.query_log.append((question.name.to_text(), question.rdtype))
        zone = self.tree.zone_for(question.name)
        if zone is None:
            response = query.make_response()
            response.rcode = rdtypes.REFUSED
            return response
        cache = self.answer_cache
        if cache is None or not cache.enabled:
            return self._synthesize(query, zone, question)
        # Zone identity is (uid, stamp): unique instance + its freshness
        # stamp, so entries survive day/generation changes and can never
        # alias a rebuilt zone. The quirk key joins because mixed-provider
        # domains serve the same Zone object from servers with
        # *different* quirk sets.
        key = (
            zone.uid,
            zone.cache_stamp(),
            self._quirk_key,
            question.name,
            question.rdtype,
            query.dnssec_ok,
        )
        entry = cache.lookup(key, zone)
        if entry is None:
            response = self._synthesize(query, zone, question)
            entry = cache.store(key, response, zone)
        else:
            response = query.make_response()
            response.rcode = entry.rcode
            response.authoritative = entry.authoritative
            response.answers.extend(entry.answers)
            response.authority.extend(entry.authority)
            response.additional.extend(entry.additional)
        response.answer_entry = entry  # tier-3 handle for Network
        return response

    def _synthesize(self, query: Message, zone: Zone, question) -> Message:
        """The uncached answer-assembly path (the original handle_query
        body past zone lookup): referral, quirk, and in-zone answers."""
        response = query.make_response()
        response.authoritative = True

        # Provider-level lack of support for a record type: empty NOERROR.
        if question.rdtype in self.unsupported_rdtypes:
            self._attach_soa(response, zone)
            return response

        # Delegation below a zone cut → referral.
        child = zone.is_delegation(question.name)
        if child is not None and not (
            question.name == child and question.rdtype == rdtypes.DS
        ):
            ns_rrset = zone.get_rrset(child, rdtypes.NS)
            response.authoritative = False
            if ns_rrset is not None:
                response.authority.append(ns_rrset)
                self._attach_glue(response, zone, ns_rrset)
            return response

        self._answer_from_zone(
            response, zone, question.name, question.rdtype, want_dnssec=query.dnssec_ok
        )
        return response

    def _answer_from_zone(
        self, response: Message, zone: Zone, name: Name, rdtype: int, want_dnssec: bool = False
    ) -> None:
        # CNAME processing first (RFC 1034 section 4.3.2 step 3a).
        cname_rrset = zone.get_rrset(name, rdtypes.CNAME)
        if cname_rrset is not None and rdtype not in (rdtypes.CNAME,):
            response.answers.append(cname_rrset)
            if want_dnssec:
                self._attach_sigs(response, zone, name, rdtypes.CNAME)
            target = cname_rrset[0].target
            if target.is_subdomain_of(zone.apex):
                self._answer_from_zone(response, zone, target, rdtype, want_dnssec)
            return

        rrset = zone.get_rrset(name, rdtype)
        if rrset is not None:
            response.answers.append(rrset)
            if want_dnssec:
                self._attach_sigs(response, zone, name, rdtype)
            return

        if zone.has_name(name):
            # NODATA: name exists but not this type.
            self._attach_soa(response, zone)
        else:
            response.rcode = rdtypes.NXDOMAIN
            self._attach_soa(response, zone)

    def _attach_sigs(self, response: Message, zone: Zone, name: Name, rdtype: int) -> None:
        if self.drop_rrsigs:
            return
        rrsigs = zone.get_rrsigs(name, rdtype)
        if rrsigs:
            sig_rrset = RRset(name, rdtypes.RRSIG, zone.default_ttl, rrsigs)
            response.answers.append(sig_rrset)

    def _attach_soa(self, response: Message, zone: Zone) -> None:
        soa = zone.soa
        if soa is not None and not any(
            rr.rdtype == rdtypes.SOA and rr.name == zone.apex for rr in response.authority
        ):
            response.authority.append(soa)

    def _attach_glue(self, response: Message, zone: Zone, ns_rrset: RRset) -> None:
        for ns_rdata in ns_rrset:
            ns_name = ns_rdata.target
            if not ns_name.is_subdomain_of(zone.apex):
                continue
            for glue_type in (rdtypes.A, rdtypes.AAAA):
                glue = zone.get_rrset(ns_name, glue_type)
                if glue is not None:
                    response.additional.append(glue)

    def __repr__(self) -> str:
        return f"AuthoritativeServer({self.name}, zones={len(self.tree)})"
