"""Stub resolver and public-resolver personas.

The scanner (like the paper's) talks to two public resolvers — Google
(8.8.8.8) as primary, Cloudflare (1.1.1.1) as backup — through a stub
that fails over when the primary SERVFAILs or is unreachable.
"""

from __future__ import annotations

from typing import List, Optional

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from .recursive import RecursiveResolver


class ResolverFrontend:
    """Adapts a RecursiveResolver to the network's DnsHandler protocol so
    clients can literally send queries to its anycast address."""

    def __init__(self, resolver: RecursiveResolver):
        self.resolver = resolver

    def handle_query(self, query: Message) -> Message:
        if not query.questions:
            response = query.make_response()
            response.rcode = rdtypes.FORMERR
            return response
        question = query.questions[0]
        response = self.resolver.resolve(question.name, question.rdtype)
        response.msg_id = query.msg_id
        return response

GOOGLE_RESOLVER_IP = "8.8.8.8"
CLOUDFLARE_RESOLVER_IP = "1.1.1.1"


class StubResolver:
    """Client-side stub with a primary/backup resolver list."""

    def __init__(self, resolvers: List[RecursiveResolver]):
        if not resolvers:
            raise ValueError("need at least one upstream resolver")
        self.resolvers = list(resolvers)

    def query(self, name, rdtype: int) -> Message:
        """Query the primary; fail over to backups on SERVFAIL."""
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        last: Optional[Message] = None
        for resolver in self.resolvers:
            response = resolver.resolve(name, rdtype)
            if response.rcode != rdtypes.SERVFAIL:
                return response
            last = response
        assert last is not None
        return last

    def query_https(self, name) -> Message:
        return self.query(name, rdtypes.HTTPS)

    def query_a(self, name) -> Message:
        return self.query(name, rdtypes.A)
