"""Stub resolver and public-resolver personas.

The scanner (like the paper's) talks to two public resolvers — Google
(8.8.8.8) as primary, Cloudflare (1.1.1.1) as backup — through a stub
that fails over when the primary SERVFAILs or is unreachable.

Both entry points are thin frontends over the same resumable resolution
core: :meth:`StubResolver.query` drives one state machine per question
through :meth:`~repro.resolver.recursive.RecursiveResolver.resolve`,
while :meth:`StubResolver.query_batch` hands a whole question list to a
:class:`~repro.resolver.batch.BatchResolver` so resolutions interleave
and identical in-flight upstream queries coalesce — with identical
answers either way.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from .batch import BatchResolver
from .recursive import RecursiveResolver


class ResolverFrontend:
    """Adapts a RecursiveResolver to the network's DnsHandler protocol so
    clients can literally send queries to its anycast address."""

    def __init__(self, resolver: RecursiveResolver):
        self.resolver = resolver

    def handle_query(self, query: Message) -> Message:
        if not query.questions:
            response = query.make_response()
            response.rcode = rdtypes.FORMERR
            return response
        question = query.questions[0]
        response = self.resolver.resolve(question.name, question.rdtype)
        response.msg_id = query.msg_id
        return response

GOOGLE_RESOLVER_IP = "8.8.8.8"
CLOUDFLARE_RESOLVER_IP = "1.1.1.1"


class StubResolver:
    """Client-side stub with a primary/backup resolver list."""

    def __init__(self, resolvers: List[RecursiveResolver], batch_window: Optional[int] = None):
        if not resolvers:
            raise ValueError("need at least one upstream resolver")
        self.resolvers = list(resolvers)
        self.batch_window = batch_window
        # Created on first batched query; stays None on the serial path
        # so run statistics can tell whether batching was ever used.
        self.batch: Optional[BatchResolver] = None

    def query(self, name, rdtype: int) -> Message:
        """Query the primary; fail over to backups on SERVFAIL."""
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        last: Optional[Message] = None
        for resolver in self.resolvers:
            response = resolver.resolve(name, rdtype)
            if response.rcode != rdtypes.SERVFAIL:
                return response
            last = response
        assert last is not None
        return last

    def query_batch(self, questions: Sequence[Tuple[object, int]]) -> List[Message]:
        """Batched counterpart of :meth:`query`: resolve every (name,
        rdtype) as one interleaved batch against the primary, then fail
        the SERVFAIL subset over to each backup in turn. Responses come
        back in question order, value-equal to serial ``query`` calls."""
        if self.batch is None:
            if self.batch_window is None:
                self.batch = BatchResolver(self.resolvers[0].network)
            else:
                self.batch = BatchResolver(
                    self.resolvers[0].network, window=self.batch_window
                )
        pairs = [
            (name if isinstance(name, Name) else Name.from_text(str(name)), rdtype)
            for name, rdtype in questions
        ]
        responses = self.batch.resolve_many(self.resolvers[0], pairs)
        pending = [i for i, r in enumerate(responses) if r.rcode == rdtypes.SERVFAIL]
        for resolver in self.resolvers[1:]:
            if not pending:
                break
            retries = self.batch.resolve_many(resolver, [pairs[i] for i in pending])
            still: List[int] = []
            for index, retry in zip(pending, retries):
                # Like serial query(): keep the first non-SERVFAIL answer,
                # or the last resolver's SERVFAIL once everyone failed.
                responses[index] = retry
                if retry.rcode == rdtypes.SERVFAIL:
                    still.append(index)
            pending = still
        return responses

    def query_https(self, name) -> Message:
        return self.query(name, rdtypes.HTTPS)

    def query_a(self, name) -> Message:
        return self.query(name, rdtypes.A)
