"""Resolution substrate: network fabric, authoritative and recursive
servers, stub resolver, simulated clock.

Architecture — state machine / scheduler split
----------------------------------------------

Recursive resolution is factored into two layers:

* :mod:`~repro.resolver.recursive` holds the *state machine*: generator
  methods that perform iterative resolution (referrals, CNAME chasing,
  caching, validation) and ``yield`` an
  :class:`~repro.resolver.recursive.UpstreamQuery` whenever they need
  the network, packaged per lookup as a resumable
  :class:`~repro.resolver.recursive.Resolution`.
* drivers decide *when* each step runs:
  :meth:`RecursiveResolver.resolve` executes one machine synchronously
  (the serial path used by ``StubResolver``/``DohServer`` frontends),
  while :class:`~repro.resolver.batch.BatchResolver` interleaves a whole
  batch of machines with a bounded in-flight window, coalescing
  identical concurrent upstream queries and sharing their cache fills.

Both drivers are value-equivalent — same answers, rcodes, AD bits, and
post-run cache contents — because every step is deterministic under a
frozen clock; the scheduler only reorders the steps.
"""

from .authoritative import AuthoritativeServer
from .batch import BatchResolver
from .clock import SimClock
from .doh import DohClient, DohResponse, DohServer
from .network import (
    DNS_PORT,
    HostUnreachable,
    Network,
    NetworkError,
    PortClosed,
    QueryTimeout,
)
from .recursive import RecursiveResolver, Resolution, ResolutionError, UpstreamQuery
from .stub import CLOUDFLARE_RESOLVER_IP, GOOGLE_RESOLVER_IP, StubResolver

__all__ = [
    "AuthoritativeServer",
    "BatchResolver",
    "SimClock",
    "DohClient",
    "DohResponse",
    "DohServer",
    "DNS_PORT",
    "HostUnreachable",
    "Network",
    "NetworkError",
    "PortClosed",
    "QueryTimeout",
    "RecursiveResolver",
    "Resolution",
    "ResolutionError",
    "UpstreamQuery",
    "CLOUDFLARE_RESOLVER_IP",
    "GOOGLE_RESOLVER_IP",
    "StubResolver",
]
