"""Resolution substrate: network fabric, authoritative and recursive
servers, stub resolver, simulated clock."""

from .authoritative import AuthoritativeServer
from .clock import SimClock
from .doh import DohClient, DohResponse, DohServer
from .network import (
    HostUnreachable,
    Network,
    NetworkError,
    PortClosed,
)
from .recursive import RecursiveResolver, ResolutionError
from .stub import CLOUDFLARE_RESOLVER_IP, GOOGLE_RESOLVER_IP, StubResolver

__all__ = [
    "AuthoritativeServer",
    "SimClock",
    "DohClient",
    "DohResponse",
    "DohServer",
    "HostUnreachable",
    "Network",
    "NetworkError",
    "PortClosed",
    "RecursiveResolver",
    "ResolutionError",
    "CLOUDFLARE_RESOLVER_IP",
    "GOOGLE_RESOLVER_IP",
    "StubResolver",
]
