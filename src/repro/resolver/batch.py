"""Batched resolution scheduler: many resolutions, one interleaved pass.

:class:`~repro.resolver.recursive.RecursiveResolver` exposes resolution
as a resumable state machine (:class:`~repro.resolver.recursive.Resolution`):
each step yields the next :class:`~repro.resolver.recursive.UpstreamQuery`
instead of issuing it synchronously. :class:`BatchResolver` drives many
such machines — each sending over its own resolver's
:class:`~repro.resolver.network.Network`, like the serial path — the
way production recursive resolvers overlap work:

* a bounded in-flight **window** with a cold-chain throttle — a job
  whose referral chain starts at the root hints (nothing cached yet)
  pauses admission until its chain fills the delegation cache, so later
  jobs start from cached delegations exactly like the serial path;
* **in-flight query coalescing** — identical concurrent upstream
  queries, keyed by (resolver, server ip, qname, qtype, attempt), are
  sent once per scheduler round and the response is shared by every
  machine waiting on that key, with the cache filled once;
* **in-flight job attachment** — a job whose (resolver, qname, qtype)
  is already being resolved attaches to the running machine instead of
  starting its own, and is answered from that machine's response;
* **job memoisation** — a duplicate job arriving after an identical job
  completed inside the same batch is answered from the finished
  response, exactly like the serial path's repeat ``resolve`` answering
  from the resolver cache.

Equivalence guarantee: against a deterministic network with a frozen
clock (the simulation's regime inside one scan batch), every job's
rcode, answers, and AD bit — and the resolver's post-batch cache
contents — are value-equal to resolving the same jobs serially in
order. The scheduler changes *when* steps run and how many duplicate
upstream queries hit the wire, never what anything resolves to.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dnscore.message import Message
from ..dnscore.names import Name
from ..gcutils import pause_gc as _pause_gc
from ..gcutils import resume_gc as _resume_gc
from .network import Network, NetworkError
from .recursive import RecursiveResolver, Resolution

# In-flight resolutions per batch. Wide enough to overlap and coalesce
# real work; the warmup round keeps the cold-start referral cost flat.
DEFAULT_WINDOW = 24


class _Job:
    __slots__ = ("index", "resolution", "request", "memo_key", "send")

    def __init__(self, index: int, resolution: Resolution, request, memo_key):
        self.index = index
        self.resolution = resolution
        self.request = request
        self.memo_key = memo_key
        # Upstream queries travel each resolver's own network (exactly
        # like the serial path), so mixed-fabric resolver lists route
        # and count correctly.
        self.send = resolution.resolver.network.send_dns_query


class BatchResolver:
    """Drives a batch of resolutions as one interleaved pass.

    Each job's upstream queries travel its own resolver's network, just
    like the serial path (*network* names the scheduler's home fabric —
    the common case where every resolver shares it). Counters are
    cumulative over the scheduler's lifetime so a campaign can report
    coalescing savings across every batch it ran.
    """

    def __init__(
        self,
        network: Network,
        window: int = DEFAULT_WINDOW,
        coalesce: bool = True,
        pause_gc: bool = True,
    ):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.network = network
        self.window = window
        self.coalesce = coalesce
        # In-flight machines (generator frames, pending responses) live
        # across scheduler rounds; a cyclic-GC pass landing mid-batch
        # promotes them all to the long-lived generations, which then
        # drags repeated full-heap collections over the (immortal)
        # simulated world. Batches are short and bounded, so pause the
        # collector for the duration of each run() — the standard remedy
        # for allocation-heavy batch phases.
        self.pause_gc = pause_gc
        self.batches_run = 0
        self.jobs_run = 0
        self.upstream_queries = 0
        self.coalesced_queries = 0
        self.attached_jobs = 0
        self.memo_hits = 0

    # -- public API --------------------------------------------------------

    def resolve_many(
        self, resolver: RecursiveResolver, questions: Sequence[Tuple[Name, int]]
    ) -> List[Message]:
        """Resolve every (qname, rdtype) on *resolver* as one batch."""
        return self.run([(resolver, qname, rdtype) for qname, rdtype in questions])

    def run(
        self, jobs: Sequence[Tuple[RecursiveResolver, Name, int]]
    ) -> List[Message]:
        """Resolve every (resolver, qname, rdtype) job; responses come
        back in job order."""
        if not self.pause_gc:
            return self._run(jobs)
        _pause_gc()
        try:
            return self._run(jobs)
        finally:
            _resume_gc()

    def _run(
        self, jobs: Sequence[Tuple[RecursiveResolver, Name, int]]
    ) -> List[Message]:
        self.batches_run += 1
        self.jobs_run += len(jobs)
        results: List[Optional[Message]] = [None] * len(jobs)
        memo: Dict[Tuple[int, Name, int], Message] = {}
        followers: Dict[Tuple[int, Name, int], List[Tuple[int, RecursiveResolver]]] = {}
        inflight: Dict[Tuple[int, Name, int], _Job] = {}
        active: List[_Job] = []
        window, coalesce = self.window, self.coalesce
        upstream = coalesced = attached = memo_hits = 0
        feed, total = 0, len(jobs)
        while active or feed < total:
            # Refill the in-flight window (lazy starts: later jobs see
            # earlier jobs' cache fills, like the serial path).
            while feed < total and len(active) < window:
                index = feed
                feed += 1
                resolver, qname, rdtype = jobs[index]
                memo_key = (id(resolver), qname, rdtype)
                done = memo.get(memo_key)
                if done is not None:
                    memo_hits += 1
                    results[index] = self._replay(resolver, done)
                    continue
                if memo_key in inflight:
                    # Same question already being resolved: attach to the
                    # running machine instead of starting a duplicate.
                    attached += 1
                    followers.setdefault(memo_key, []).append((index, resolver))
                    continue
                resolution = resolver.resolution(qname, rdtype)
                request = resolution.start()
                if request is None:  # answered from the resolver cache
                    results[index] = memo[memo_key] = resolution.response
                    continue
                job = _Job(index, resolution, request, memo_key)
                inflight[memo_key] = job
                active.append(job)
                if request.ip in resolver.root_hint_ips:
                    # Cold referral chain (nothing cached for this name):
                    # stop admitting jobs this round so the chain fills
                    # the delegation cache before the rest start — the
                    # serial path's warm-cache behaviour.
                    break
            if not active:
                continue
            if len(active) == 1:
                # Lone in-flight machine: no coalescing possible, skip
                # the round bookkeeping.
                job = active[0]
                request = job.request
                upstream += 1
                try:
                    reply, error = job.send(request.ip, request.query, request.attempt), None
                except NetworkError as exc:
                    reply, error = None, exc
                request = job.resolution.step(reply, error)
                if request is None:
                    self._finish(job, results, memo, inflight, followers)
                    active = []
                else:
                    job.request = request
                continue
            # One scheduler round: issue each distinct pending upstream
            # query once, then resume every machine with the shared
            # outcome (a single cache fill serves all of them).
            replies: Dict[tuple, Tuple[Optional[Message], Optional[Exception]]] = {}
            keys: List[tuple] = []
            for job in active:
                request = job.request
                if coalesce:
                    question = request.query.questions[0]
                    # The delivery attempt joins the key so a retry after
                    # a timeout is a fresh network event (never answered
                    # from the round that just timed out), keeping loss
                    # outcomes — pure functions of (query, attempt) —
                    # identical to the serial path's.
                    key = (
                        id(job.resolution.resolver),
                        request.ip,
                        question.name,
                        question.rdtype,
                        request.attempt,
                    )
                else:
                    key = job.index
                keys.append(key)
                if key in replies:
                    coalesced += 1
                    continue
                upstream += 1
                try:
                    replies[key] = (job.send(request.ip, request.query, request.attempt), None)
                except NetworkError as exc:
                    replies[key] = (None, exc)
            still: List[_Job] = []
            for job, key in zip(active, keys):
                reply, error = replies[key]
                request = job.resolution.step(reply, error)
                if request is None:
                    self._finish(job, results, memo, inflight, followers)
                else:
                    job.request = request
                    still.append(job)
            active = still
        self.upstream_queries += upstream
        self.coalesced_queries += coalesced
        self.attached_jobs += attached
        self.memo_hits += memo_hits
        return results

    def _finish(self, job: _Job, results, memo, inflight, followers) -> None:
        """Record a completed machine's response and answer any attached
        duplicate jobs from it."""
        response = job.resolution.response
        results[job.index] = memo[job.memo_key] = response
        del inflight[job.memo_key]
        waiting = followers.pop(job.memo_key, None)
        if waiting:
            for follower_index, follower_resolver in waiting:
                results[follower_index] = self._replay(follower_resolver, response)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _replay(resolver: RecursiveResolver, done: Message) -> Message:
        """A fresh response for a duplicate job. Serially, the repeat
        ``resolve`` answers from the resolver cache with identical
        rcode/answers/AD (only the message id differs); rebuild exactly
        that from the finished response."""
        response = Message(resolver._next_id())
        response.is_response = True
        response.recursion_desired = True
        response.recursion_available = True
        response.questions = list(done.questions)
        response.rcode = done.rcode
        response.answers = list(done.answers)
        response.authenticated_data = done.authenticated_data
        return response
