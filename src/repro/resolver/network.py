"""The simulated network fabric.

Routes DNS queries to authoritative servers by IP and TCP/TLS connections
to web servers by (IP, port). ``wire_mode`` forces every DNS message
through the full RFC 1035 wire codec, which is what the fidelity tests
use; the fast path hands the message object across directly (both paths
exercise identical server logic).

Reachability is modelled per-IP (and optionally per-port), which the
connectivity experiment of §4.3.5 uses to create domains whose IP hints
and A records differ in reachability, and which the chaos scenario
engine (:mod:`repro.simnet.faults`) uses for scheduled outages of a
single service (e.g. port 53 down, port 443 up).

The fabric also exposes a single injection point, :attr:`Network.dns_fault_hook`:
a callable consulted on every routed DNS query that may pass the query
through (``None``), synthesize a response (lame delegation), or raise a
transport error (packet loss / timeout). The hook sees the delivery
``attempt`` number so drop decisions can be pure functions of
(seed, query, attempt) — the property that keeps serial and batched
drivers value-equivalent.

**Wire-byte fast path (tier 3).** In ``wire_mode``, when the world's
:class:`~repro.resolver.authoritative.AnswerCache` is enabled, the
server→client leg reuses what the tier-1 cache entry has already been
through the codec once: the entry pins the encoded bytes and the decoded
client-side message for one header signature, so a repeated answer skips
the entire ``to_wire``/``from_wire`` pair (the resolver treats upstream
responses as immutable, which is what makes the shared decoded template
safe). The fast path is strictly behind ``dns_query_count`` accounting
and the fault hook, so counters and faulted deliveries are identical
with the cache on or off; the client→server leg always round-trips the
query for codec fidelity.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Set, Tuple

from ..dnscore.message import Message

DNS_PORT = 53


class DnsHandler(Protocol):
    def handle_query(self, query: Message) -> Message: ...


class TcpHandler(Protocol):
    def handle_connection(self, client_hello: object) -> object: ...


class NetworkError(Exception):
    """Transport-level failure (unreachable host, refused port)."""


class HostUnreachable(NetworkError):
    pass


class PortClosed(NetworkError):
    pass


class QueryTimeout(NetworkError):
    """A DNS query was sent but no reply arrived in time (dropped
    request or dropped response — the client cannot distinguish)."""


# Signature: hook(ip, query, attempt) -> None | Message | NetworkError.
# None passes the query through to the registered server; a Message is
# returned to the client as the (spoofed/synthesized) reply; a
# NetworkError instance is raised as the delivery outcome.
FaultHook = Callable[[str, Message, int], Optional[object]]


class Network:
    """Registry + router for the simulated Internet."""

    def __init__(self, wire_mode: bool = False):
        self.wire_mode = wire_mode
        self._dns_servers: Dict[str, DnsHandler] = {}
        self._tcp_servers: Dict[Tuple[str, int], TcpHandler] = {}
        self._unreachable_ips: Set[str] = set()
        self._unreachable_ports: Set[Tuple[str, int]] = set()
        self.dns_fault_hook: Optional[FaultHook] = None
        # Shared with the world's AuthoritativeServers; installed by
        # World._build. None for standalone Network instances in tests.
        self.answer_cache = None
        self.dns_query_count = 0
        self.tcp_connect_count = 0

    # -- registration ------------------------------------------------------

    def register_dns(self, ip: str, server: DnsHandler) -> None:
        self._dns_servers[ip] = server

    def register_tcp(self, ip: str, port: int, server: TcpHandler) -> None:
        self._tcp_servers[(ip, port)] = server

    def unregister_tcp(self, ip: str, port: int) -> None:
        self._tcp_servers.pop((ip, port), None)

    def set_unreachable(
        self, ip: str, unreachable: bool = True, *, port: Optional[int] = None
    ) -> None:
        """Mark ``ip`` (or just ``(ip, port)`` when ``port`` is given)
        unreachable. Per-IP and per-port outages are independent sets:
        clearing one never clears the other."""
        if port is None:
            if unreachable:
                self._unreachable_ips.add(ip)
            else:
                self._unreachable_ips.discard(ip)
        else:
            if unreachable:
                self._unreachable_ports.add((ip, port))
            else:
                self._unreachable_ports.discard((ip, port))

    def is_reachable(self, ip: str, port: Optional[int] = None) -> bool:
        if ip in self._unreachable_ips:
            return False
        if port is not None and (ip, port) in self._unreachable_ports:
            return False
        return True

    def dns_server_at(self, ip: str) -> Optional[DnsHandler]:
        return self._dns_servers.get(ip)

    # -- transport ------------------------------------------------------------

    def send_dns_query(self, ip: str, query: Message, attempt: int = 0) -> Message:
        if not self.is_reachable(ip, DNS_PORT):
            raise HostUnreachable(f"no route to {ip}")
        server = self._dns_servers.get(ip)
        if server is None:
            raise HostUnreachable(f"no DNS server listening at {ip}")
        self.dns_query_count += 1
        if self.dns_fault_hook is not None:
            outcome = self.dns_fault_hook(ip, query, attempt)
            if outcome is not None:
                if isinstance(outcome, Message):
                    return outcome
                raise outcome
        if self.wire_mode:
            cache = self.answer_cache
            if cache is not None and cache.enabled:
                query = cache.query_roundtrip(query)
                response = server.handle_query(query)
                entry = getattr(response, "answer_entry", None)
                if entry is not None:
                    return cache.wire_roundtrip(response, entry)
                return Message.from_wire(response.to_wire())
            query = Message.from_wire(query.to_wire())
            response = server.handle_query(query)
            return Message.from_wire(response.to_wire())
        return server.handle_query(query)

    def connect_tcp(self, ip: str, port: int) -> TcpHandler:
        if not self.is_reachable(ip, port):
            raise HostUnreachable(f"no route to {ip}")
        server = self._tcp_servers.get((ip, port))
        if server is None:
            raise PortClosed(f"connection refused at {ip}:{port}")
        self.tcp_connect_count += 1
        return server
