"""The simulated network fabric.

Routes DNS queries to authoritative servers by IP and TCP/TLS connections
to web servers by (IP, port). ``wire_mode`` forces every DNS message
through the full RFC 1035 wire codec, which is what the fidelity tests
use; the fast path hands the message object across directly (both paths
exercise identical server logic).

Reachability is modelled per-IP (and optionally per-port), which the
connectivity experiment of §4.3.5 uses to create domains whose IP hints
and A records differ in reachability.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Set, Tuple

from ..dnscore.message import Message


class DnsHandler(Protocol):
    def handle_query(self, query: Message) -> Message: ...


class TcpHandler(Protocol):
    def handle_connection(self, client_hello: object) -> object: ...


class NetworkError(Exception):
    """Transport-level failure (unreachable host, refused port)."""


class HostUnreachable(NetworkError):
    pass


class PortClosed(NetworkError):
    pass


class Network:
    """Registry + router for the simulated Internet."""

    def __init__(self, wire_mode: bool = False):
        self.wire_mode = wire_mode
        self._dns_servers: Dict[str, DnsHandler] = {}
        self._tcp_servers: Dict[Tuple[str, int], TcpHandler] = {}
        self._unreachable_ips: Set[str] = set()
        self.dns_query_count = 0
        self.tcp_connect_count = 0

    # -- registration ------------------------------------------------------

    def register_dns(self, ip: str, server: DnsHandler) -> None:
        self._dns_servers[ip] = server

    def register_tcp(self, ip: str, port: int, server: TcpHandler) -> None:
        self._tcp_servers[(ip, port)] = server

    def unregister_tcp(self, ip: str, port: int) -> None:
        self._tcp_servers.pop((ip, port), None)

    def set_unreachable(self, ip: str, unreachable: bool = True) -> None:
        if unreachable:
            self._unreachable_ips.add(ip)
        else:
            self._unreachable_ips.discard(ip)

    def is_reachable(self, ip: str) -> bool:
        return ip not in self._unreachable_ips

    def dns_server_at(self, ip: str) -> Optional[DnsHandler]:
        return self._dns_servers.get(ip)

    # -- transport ------------------------------------------------------------

    def send_dns_query(self, ip: str, query: Message) -> Message:
        if ip in self._unreachable_ips:
            raise HostUnreachable(f"no route to {ip}")
        server = self._dns_servers.get(ip)
        if server is None:
            raise HostUnreachable(f"no DNS server listening at {ip}")
        self.dns_query_count += 1
        if self.wire_mode:
            query = Message.from_wire(query.to_wire())
            response = server.handle_query(query)
            return Message.from_wire(response.to_wire())
        return server.handle_query(query)

    def connect_tcp(self, ip: str, port: int) -> TcpHandler:
        if ip in self._unreachable_ips:
            raise HostUnreachable(f"no route to {ip}")
        server = self._tcp_servers.get((ip, port))
        if server is None:
            raise PortClosed(f"connection refused at {ip}:{port}")
        self.tcp_connect_count += 1
        return server
