"""Recursive (caching, validating) DNS resolver.

Performs genuine iterative resolution: starts at the root hints, follows
referrals (using glue, or resolving out-of-bailiwick NS names), chases
CNAME chains across zones, caches positive and delegation answers by TTL
against a :class:`~repro.resolver.clock.SimClock`, and — when a
:class:`~repro.dnssec.validation.ChainValidator` is attached — validates
answers and sets the AD bit (bogus data yields SERVFAIL, like real
validating resolvers).

Name-server selection is deterministic per (resolver, qname, day), which
reproduces the paper's observation (§4.2.3) that public resolvers' server
selection makes HTTPS records intermittent for domains whose providers
disagree about HTTPS RR support.

Resolution is structured as a *resumable state machine*: the iterative
logic lives in generator methods that ``yield`` an :class:`UpstreamQuery`
whenever they need the network and are resumed with the response (or an
exception). :meth:`RecursiveResolver.resolve` drives one machine to
completion synchronously; :class:`~repro.resolver.batch.BatchResolver`
interleaves many machines, coalescing identical in-flight upstream
queries. Both drivers produce value-identical answers, rcodes, AD bits,
and cache fills — the scheduler only changes *when* each step runs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message, Question
from ..dnscore.names import Name
from ..dnscore.rrset import RRset
from ..dnssec.validation import ChainValidator, ValidationState
from .clock import SimClock
from .network import HostUnreachable, Network, NetworkError, QueryTimeout

_MAX_CNAME_CHAIN = 8
_MAX_REFERRALS = 16
_MAX_NS_RESOLUTION_DEPTH = 4

# Bounded client-side retries on timeout, with deterministic exponential
# backoff. The backoff is *recorded* (``backoff_seconds``) rather than
# slept or applied to the shared SimClock: advancing simulated time per
# retry would make cache expiries depend on the driver's scheduling
# order and break the serial==batched equivalence guarantee.
_MAX_RETRIES = 2
_RETRY_BACKOFF_BASE = 0.5

# Negative/SERVFAIL cache TTL (default; per-resolver override via
# ``negative_ttl`` / :attr:`~repro.simnet.config.SimConfig.negative_ttl`).
_NEGATIVE_TTL = 60


class ResolutionError(Exception):
    """The resolver could not produce an answer (maps to SERVFAIL)."""


class _CacheEntry:
    __slots__ = ("expiry", "rcode", "answers", "ad")

    def __init__(self, expiry: float, rcode: int, answers: List[RRset], ad: bool):
        self.expiry = expiry
        self.rcode = rcode
        self.answers = answers
        self.ad = ad


class UpstreamQuery:
    """One upstream query a resolution state machine wants issued.

    Yielded by the step generators; the driver (serial ``resolve`` or a
    batch scheduler) sends ``query`` to ``ip`` and resumes the machine
    with the response, or throws a :class:`NetworkError`
    (:class:`HostUnreachable`, :class:`QueryTimeout`) into it.

    ``attempt`` is the delivery attempt (0 for the first send, then
    1, 2, ... across retries); it is part of the batch driver's
    coalescing key so a retry is a genuinely fresh network event, and
    the network fault hook sees it so drop decisions are pure functions
    of (query, attempt).
    """

    __slots__ = ("ip", "query", "attempt")

    def __init__(self, ip: str, query: Message, attempt: int = 0):
        self.ip = ip
        self.query = query
        self.attempt = attempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        question = self.query.questions[0]
        return f"UpstreamQuery({self.ip}, {question.name.to_text()}/{question.rdtype})"


class Resolution:
    """A resumable single-name resolution (one state-machine instance).

    Protocol: :meth:`start` advances to the first pending
    :class:`UpstreamQuery` (or completes immediately on a cache hit);
    each :meth:`step` delivers the previous query's outcome and returns
    the next pending query, or ``None`` once :attr:`response` is set.
    """

    __slots__ = ("resolver", "qname", "rdtype", "response", "_gen")

    def __init__(self, resolver: "RecursiveResolver", qname: Name, rdtype: int):
        self.resolver = resolver
        self.qname = qname
        self.rdtype = rdtype
        self.response: Optional[Message] = None
        self._gen: Iterator = resolver._resolve_steps(qname, rdtype)

    @property
    def done(self) -> bool:
        return self.response is not None

    def start(self) -> Optional[UpstreamQuery]:
        try:
            return next(self._gen)
        except StopIteration as stop:
            self.response = stop.value
            return None

    def step(
        self, response: Optional[Message] = None, error: Optional[Exception] = None
    ) -> Optional[UpstreamQuery]:
        try:
            if error is not None:
                return self._gen.throw(error)
            return self._gen.send(response)
        except StopIteration as stop:
            self.response = stop.value
            return None


class RecursiveResolver:
    """One caching recursive resolver instance (e.g. 8.8.8.8)."""

    def __init__(
        self,
        name: str,
        network: Network,
        root_hint_ips: List[str],
        clock: Optional[SimClock] = None,
        validator: Optional[ChainValidator] = None,
        cache_enabled: bool = True,
        negative_ttl: int = _NEGATIVE_TTL,
        max_retries: int = _MAX_RETRIES,
    ):
        self.name = name
        self.network = network
        self.root_hint_ips = list(root_hint_ips)
        self.clock = clock if clock is not None else SimClock()
        self.validator = validator
        self.cache_enabled = cache_enabled
        self.negative_ttl = negative_ttl
        self.max_retries = max_retries
        self._cache: Dict[Tuple[Name, int], _CacheEntry] = {}
        self._delegation_cache: Dict[Name, Tuple[float, List[str]]] = {}
        self._msg_id = 0
        # Fault-path counters (rolled into RunStats; excluded from
        # dataset equality like the query counters).
        self.timeouts = 0
        self.retries = 0
        self.unreachables = 0
        self.backoff_seconds = 0.0

    # -- public API ------------------------------------------------------------

    def resolve(self, name, rdtype: int) -> Message:
        """Resolve (name, rdtype) and return a response message as a stub
        client would see it (RA set, AD reflecting validation).

        Drives one :class:`Resolution` machine synchronously — the
        serial counterpart of the batch scheduler."""
        resolution = self.resolution(name, rdtype)
        request = resolution.start()
        send = self.network.send_dns_query
        while request is not None:
            try:
                reply = send(request.ip, request.query, request.attempt)
            except NetworkError as exc:
                request = resolution.step(error=exc)
            else:
                request = resolution.step(reply)
        return resolution.response

    def resolution(self, name, rdtype: int) -> Resolution:
        """A resumable state machine for resolving (name, rdtype)."""
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        return Resolution(self, name, rdtype)

    def flush_cache(self) -> None:
        self._cache.clear()
        self._delegation_cache.clear()

    def reset(self) -> None:
        """Forget everything accumulated since construction (caches and
        the message-id counter) so a reused resolver behaves bit-for-bit
        like a freshly built one. Used by world reuse
        (:meth:`~repro.simnet.world.World.reset`), where the clock also
        rewinds — cached entries would otherwise carry future expiries."""
        self.flush_cache()
        self._msg_id = 0
        self.timeouts = 0
        self.retries = 0
        self.unreachables = 0
        self.backoff_seconds = 0.0

    # -- internals -----------------------------------------------------------------

    def _next_id(self) -> int:
        self._msg_id = (self._msg_id + 1) & 0xFFFF
        return self._msg_id

    def _now(self) -> float:
        return self.clock.now

    def _resolve_steps(self, name: Name, rdtype: int):
        """Top of the state machine: build the client-facing response."""
        response = Message(self._next_id())
        response.is_response = True
        response.recursion_desired = True
        response.recursion_available = True
        response.questions.append(Question(name, rdtype))
        try:
            rcode, answers, ad = yield from self._resolve_with_cname_steps(name, rdtype)
        except ResolutionError:
            response.rcode = rdtypes.SERVFAIL
            return response
        response.rcode = rcode
        response.answers = answers
        response.authenticated_data = ad
        return response

    def _resolve_with_cname_steps(self, name: Name, rdtype: int):
        """Resolve, chasing CNAMEs; returns (rcode, answer rrsets, ad)."""
        answers: List[RRset] = []
        all_secure = True
        current = name
        for _ in range(_MAX_CNAME_CHAIN):
            rcode, rrsets, ad = yield from self._resolve_one_steps(current, rdtype)
            answers.extend(rrsets)
            all_secure = all_secure and ad
            target_rrset = next(
                (rr for rr in rrsets if rr.rdtype == rdtype and rr.name == current), None
            )
            cname_rrset = next(
                (rr for rr in rrsets if rr.rdtype == rdtypes.CNAME and rr.name == current),
                None,
            )
            if target_rrset is not None or cname_rrset is None:
                return rcode, answers, all_secure and bool(answers)
            current = cname_rrset[0].target
        raise ResolutionError("CNAME chain too long")

    def _resolve_one_steps(self, name: Name, rdtype: int):
        """Resolve one (name, type) without following cross-zone CNAMEs
        beyond what the authoritative answer already contains."""
        cached = self._cache_get(name, rdtype)
        if cached is not None:
            return cached.rcode, list(cached.answers), cached.ad

        response = yield from self._iterate_steps(name, rdtype)
        ad = False
        if response.rcode == rdtypes.NOERROR and response.answers:
            ad = self._validate_answers(name, rdtype, response)
            if ad is None:  # bogus
                self._cache_put(name, rdtype, rdtypes.SERVFAIL, [], False, self.negative_ttl)
                raise ResolutionError("DNSSEC validation failed (bogus)")
        visible = [rr for rr in response.answers]
        if visible:
            ttl = min(rr.ttl for rr in visible)
        else:
            # Negative caching (RFC 2308): TTL from the SOA in authority,
            # capped by its MINIMUM field.
            ttl = self.negative_ttl
            for rrset in response.authority:
                if rrset.rdtype == rdtypes.SOA and len(rrset):
                    ttl = min(rrset.ttl, rrset[0].minimum)
                    break
        self._cache_put(name, rdtype, response.rcode, visible, bool(ad), ttl)
        return response.rcode, visible, bool(ad)

    def _validate_answers(self, name: Name, rdtype: int, response: Message) -> Optional[bool]:
        """True=secure, False=insecure, None=bogus."""
        if self.validator is None:
            return False
        secure = True
        for rrset in response.answers:
            if rrset.rdtype == rdtypes.RRSIG:
                continue
            result = self.validator.validate(rrset.name, rrset.rdtype, int(self._now()))
            if result.state is ValidationState.BOGUS:
                return None
            if result.state is not ValidationState.SECURE:
                secure = False
        return secure

    # -- cache ---------------------------------------------------------------------

    def _cache_get(self, name: Name, rdtype: int) -> Optional[_CacheEntry]:
        if not self.cache_enabled:
            return None
        entry = self._cache.get((name, rdtype))
        if entry is None or entry.expiry <= self._now():
            self._cache.pop((name, rdtype), None)
            return None
        return entry

    def _cache_put(
        self, name: Name, rdtype: int, rcode: int, answers: List[RRset], ad: bool, ttl: float
    ) -> None:
        if not self.cache_enabled:
            return
        self._cache[(name, rdtype)] = _CacheEntry(self._now() + ttl, rcode, answers, ad)

    # -- iteration --------------------------------------------------------------------

    def _select_server(self, candidates: List[str], qname: Name) -> List[str]:
        """Order candidate server IPs; deterministic per (resolver, name,
        day) so re-queries within a day are stable but selection can move
        across days (mixed-provider intermittency, §4.2.3)."""
        if len(candidates) <= 1:
            return list(candidates)
        day = int(self._now() // 86400)
        digest = hashlib.sha256(
            f"{self.name}|{qname.to_text().lower()}|{day}".encode()
        ).digest()
        start = digest[0] % len(candidates)
        return candidates[start:] + candidates[:start]

    def _iterate_steps(self, name: Name, rdtype: int, depth: int = 0):
        if depth > _MAX_NS_RESOLUTION_DEPTH:
            raise ResolutionError("NS resolution recursion too deep")
        servers = self._closest_cached_delegation(name)
        # Resolvers speak EDNS with DO set: they need RRSIGs to validate
        # (and the paper's scanner collects them from the response).
        query = Message.make_query(name, rdtype, self._next_id(), want_dnssec=True)
        last_error: Optional[Exception] = None
        for _ in range(_MAX_REFERRALS):
            tried_any = False
            for ip in self._select_server(servers, name):
                response, error = yield from self._query_server_steps(ip, query)
                if response is None:
                    last_error = error
                    continue
                tried_any = True
                if response.rcode == rdtypes.REFUSED:
                    last_error = ResolutionError(f"refused by {ip}")
                    continue
                if response.authoritative or response.answers or response.rcode == rdtypes.NXDOMAIN:
                    return response
                referral = yield from self._extract_referral_steps(response, name, depth)
                if referral:
                    servers = referral
                    break
                # Lame/empty response from this server; try the next one.
                last_error = ResolutionError(f"lame response from {ip}")
            else:
                if not tried_any:
                    raise ResolutionError(f"all servers unreachable: {last_error}")
                raise ResolutionError(f"no usable response: {last_error}")
        raise ResolutionError("too many referrals")

    def _query_server_steps(self, ip: str, query: Message):
        """Deliver ``query`` to one server with bounded timeout retries.

        Returns ``(response, None)`` on success or ``(None, error)``
        after the transport gave up: immediately on
        :class:`HostUnreachable` (retrying a dead host is pointless —
        the caller moves to the next server), after ``max_retries``
        extra attempts on :class:`QueryTimeout`. Backoff between
        attempts is deterministic (``base * 2**attempt``) and only
        *accounted*, never slept — see module note on clock purity."""
        error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            try:
                response = yield UpstreamQuery(ip, query, attempt)
            except QueryTimeout as exc:
                self.timeouts += 1
                error = exc
                if attempt < self.max_retries:
                    self.retries += 1
                    self.backoff_seconds += _RETRY_BACKOFF_BASE * (2 ** attempt)
                continue
            except HostUnreachable as exc:
                self.unreachables += 1
                return None, exc
            return response, None
        return None, error

    def _closest_cached_delegation(self, name: Name) -> List[str]:
        if not self.cache_enabled:
            return list(self.root_hint_ips)
        probe = name
        while True:
            cached = self._delegation_cache.get(probe)
            if cached is not None and cached[0] > self._now():
                return list(cached[1])
            if probe == Name.root():
                return list(self.root_hint_ips)
            probe = probe.parent()

    def _extract_referral_steps(self, response: Message, qname: Name, depth: int):
        ns_rrset = next((rr for rr in response.authority if rr.rdtype == rdtypes.NS), None)
        if ns_rrset is None:
            return []
        glue: Dict[Name, List[str]] = {}
        for rrset in response.additional:
            # Both address families count as glue; an IPv6-only name
            # server is otherwise treated as glueless and re-resolved.
            if rrset.rdtype in (rdtypes.A, rdtypes.AAAA):
                glue.setdefault(rrset.name, []).extend(rd.address for rd in rrset)
        ips: List[str] = []
        for ns_rdata in ns_rrset:
            ns_name = ns_rdata.target
            if ns_name in glue:
                ips.extend(glue[ns_name])
            else:
                chased = yield from self._resolve_ns_address_steps(ns_name, depth)
                ips.extend(chased)
        if ips and self.cache_enabled:
            ttl = ns_rrset.ttl
            self._delegation_cache[ns_rrset.name] = (self._now() + ttl, ips)
        return ips

    def _resolve_ns_address_steps(self, ns_name: Name, depth: int):
        """Resolve a glueless NS name to addresses (bounded recursion)."""
        cached = self._cache_get(ns_name, rdtypes.A)
        if cached is not None:
            return [rd.address for rr in cached.answers if rr.rdtype == rdtypes.A for rd in rr]
        try:
            response = yield from self._iterate_steps(ns_name, rdtypes.A, depth + 1)
        except ResolutionError:
            return []
        ips = [
            rd.address
            for rr in response.answers
            if rr.rdtype == rdtypes.A
            for rd in rr
        ]
        if ips:
            ttl = min(rr.ttl for rr in response.answers if rr.rdtype == rdtypes.A)
            self._cache_put(ns_name, rdtypes.A, rdtypes.NOERROR, list(response.answers), False, ttl)
        return ips
