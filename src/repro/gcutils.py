"""Refcounted pausing of the cyclic garbage collector.

The simulation allocates large, effectively immortal object graphs (a
:class:`~repro.simnet.world.World` is hundreds of thousands of small
objects that live until process exit). CPython's generational collector
promotes them and then keeps re-walking the full heap whenever
allocation churn trips the generation-2 threshold, which dominates both
batch-resolution inner loops and world construction / snapshot loading.
Pausing collection around those phases removes the full-heap passes;
reference counting still reclaims everything acyclic immediately.

``gc.disable()``/``gc.enable()`` is process-global and pause windows may
overlap across threads (the pipeline's thread executor), so the pause is
refcounted: collection resumes only when the *outermost* pause window
exits, and only if it was enabled when the first window opened.
"""

from __future__ import annotations

import contextlib
import gc
import threading

_LOCK = threading.Lock()
_DEPTH = 0
_WAS_ENABLED = False


def pause_gc() -> None:
    """Open a pause window (disables cyclic collection at depth 0)."""
    global _DEPTH, _WAS_ENABLED
    with _LOCK:
        if _DEPTH == 0:
            _WAS_ENABLED = gc.isenabled()
            if _WAS_ENABLED:
                gc.disable()
        _DEPTH += 1


def resume_gc() -> None:
    """Close a pause window (re-enables collection at depth 0 if it was
    enabled when the outermost window opened)."""
    global _DEPTH
    with _LOCK:
        _DEPTH -= 1
        if _DEPTH == 0 and _WAS_ENABLED:
            gc.enable()


@contextlib.contextmanager
def paused_gc():
    """Context manager form: ``with paused_gc(): build_the_world()``."""
    pause_gc()
    try:
        yield
    finally:
        resume_gc()
