"""Simulated WHOIS registry.

Maps IP address blocks to registered organisations, mirroring what the
paper recovered via ``ipwhois`` (§4.2.2). Includes the messy parts the
paper had to handle manually:

* **BYOIP** — a customer announcing its own block from a cloud provider;
  lookups then return the original owner, not the operator;
* cloud-hosted name servers whose WHOIS points at the cloud provider even
  though the domain owner operates the server (the manual-review table
  handles these).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simnet.providers import PROVIDERS


@dataclass(frozen=True)
class WhoisRecord:
    """One WHOIS answer."""

    ip: str
    org: str
    network_name: str
    country: str = "US"

    def __str__(self) -> str:
        return f"{self.ip}: {self.org} ({self.network_name})"


class WhoisRegistry:
    """Prefix → organisation database with longest-prefix matching."""

    def __init__(self):
        self._entries: List[Tuple[ipaddress.IPv4Network, str, str]] = []
        self._byoip: Dict[str, str] = {}

    def add_block(self, cidr: str, org: str, network_name: str = "") -> None:
        network = ipaddress.ip_network(cidr, strict=False)
        self._entries.append((network, org, network_name or org.upper().replace(" ", "-")))
        self._entries.sort(key=lambda entry: entry[0].prefixlen, reverse=True)

    def add_byoip(self, cidr: str, original_owner: str) -> None:
        """Register a customer block that keeps its original WHOIS owner."""
        self._byoip[cidr] = original_owner
        self.add_block(cidr, original_owner, "BYOIP-CUSTOMER")

    def lookup(self, ip: str) -> Optional[WhoisRecord]:
        try:
            address = ipaddress.ip_address(ip)
        except ValueError:
            return None
        if isinstance(address, ipaddress.IPv6Address):
            # The simulation keeps v6 attribution coarse: Cloudflare block
            # or unknown.
            if ip.lower().startswith("2606:4700"):
                return WhoisRecord(ip, "Cloudflare, Inc.", "CLOUDFLARENET-V6")
            return WhoisRecord(ip, "Unknown v6 allocation", "UNKNOWN-V6")
        for network, org, network_name in self._entries:
            if address in network:
                return WhoisRecord(ip, org, network_name)
        return WhoisRecord(ip, "Unallocated", "IANA-RESERVED")


class WhoisClient:
    """Rate-limit-aware lookup client with a local cache (the scanner does
    daily WHOIS lookups for every name-server IP)."""

    def __init__(self, registry: WhoisRegistry):
        self.registry = registry
        self._cache: Dict[str, Optional[WhoisRecord]] = {}
        self.lookup_count = 0

    def lookup(self, ip: str) -> Optional[WhoisRecord]:
        if ip in self._cache:
            return self._cache[ip]
        self.lookup_count += 1
        record = self.registry.lookup(ip)
        self._cache[ip] = record
        return record


# Orgs the manual review maps to "domain owner operates their own NS on
# cloud infrastructure" (paper: e.g. AWS-hosted self-managed servers).
CLOUD_HOSTING_ORGS = ("Amazon.com, Inc.",)


def build_default_registry() -> WhoisRegistry:
    """The registry covering every provider block in the simulation."""
    registry = WhoisRegistry()
    for provider in PROVIDERS.values():
        if provider.ip_prefix:
            registry.add_block(provider.ip_prefix + ".0/24", provider.org)
    # Anycast service blocks.
    registry.add_block("104.16.0.0/14", "Cloudflare, Inc.", "CLOUDFLARENET")
    registry.add_block("162.159.0.0/16", "Cloudflare China Network (CAPG)", "CLOUDFLARE-CN")
    registry.add_block("203.0.0.0/8", "Assorted origin hosting", "ORIGIN-POOL")
    registry.add_block("198.41.0.0/24", "Root server operators", "ROOT-OPS")
    registry.add_block("192.5.6.0/24", "TLD registry operators", "GTLD-OPS")
    return registry
