"""WHOIS database simulation (IP → registered organisation)."""

from .registry import WhoisClient, WhoisRecord, WhoisRegistry, build_default_registry

__all__ = ["WhoisClient", "WhoisRecord", "WhoisRegistry", "build_default_registry"]
