"""CSV/JSON export of analysis results for external plotting.

The paper's artifact repository ships its figure data as CSV; this
module produces equivalent files from a campaign dataset.
"""

from __future__ import annotations

import csv
import datetime
import io
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple


def series_to_csv(
    points: Sequence[Tuple[datetime.date, float]],
    value_name: str = "value",
) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["date", value_name])
    for day, value in points:
        writer.writerow([day.isoformat(), f"{value:.6f}"])
    return out.getvalue()


def multi_series_to_csv(
    columns: Dict[str, Sequence[Tuple[datetime.date, float]]],
) -> str:
    """Join several (date, value) series on date into one wide CSV."""
    dates = sorted({day for points in columns.values() for day, _v in points})
    by_column = {
        name: {day: value for day, value in points} for name, points in columns.items()
    }
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["date"] + list(columns))
    for day in dates:
        row = [day.isoformat()]
        for name in columns:
            value = by_column[name].get(day)
            row.append("" if value is None else f"{value:.6f}")
        writer.writerow(row)
    return out.getvalue()


def table_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(list(row))
    return out.getvalue()


def _json_default(value):
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not JSON-serializable: {type(value)}")


def to_json(payload: object, indent: int = 2) -> str:
    return json.dumps(payload, default=_json_default, indent=indent, sort_keys=True)


def export_figure_data(dataset, directory: str) -> List[str]:
    """Write every figure's underlying series as CSV under *directory*;
    returns the written paths."""
    from ..analysis import adoption, dnssec_analysis, ech_analysis, hints

    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def write(name: str, content: str) -> None:
        path = os.path.join(directory, name)
        with open(path, "w") as handle:
            handle.write(content)
        written.append(path)

    dynamic = adoption.dynamic_adoption(dataset)
    overlapping = adoption.overlapping_adoption(dataset)
    write(
        "fig2_adoption.csv",
        multi_series_to_csv(
            {
                "dynamic_apex_pct": dynamic["apex"].points,
                "dynamic_www_pct": dynamic["www"].points,
                "overlapping_apex_pct": overlapping["apex"].points,
                "overlapping_www_pct": overlapping["www"].points,
            }
        ),
    )
    hint_points = hints.fig11_hint_series(dataset)
    write(
        "fig11_hints.csv",
        multi_series_to_csv(
            {
                "ipv4_usage_pct": [(p.date, p.ipv4_usage_pct) for p in hint_points],
                "ipv6_usage_pct": [(p.date, p.ipv6_usage_pct) for p in hint_points],
                "ipv4_match_pct": [(p.date, p.ipv4_match_pct) for p in hint_points],
                "ipv6_match_pct": [(p.date, p.ipv6_match_pct) for p in hint_points],
            }
        ),
    )
    write("fig13_ech_share.csv", series_to_csv(ech_analysis.fig13_ech_share(dataset), "ech_pct"))
    signed = dnssec_analysis.fig5_signed_series(dataset)
    write(
        "fig5_signed.csv",
        multi_series_to_csv(
            {
                "signed_pct": [(p.date, p.signed_pct) for p in signed],
                "validated_pct": [(p.date, p.validated_pct) for p in signed],
            }
        ),
    )
    rotation = ech_analysis.fig4_rotation(dataset)
    write(
        "fig4_rotation.json",
        to_json(
            {
                "distinct_configs": rotation.distinct_configs,
                "public_names": list(rotation.public_names),
                "sightings_histogram": rotation.sightings_histogram,
                "overall_mean_hours": rotation.overall_mean_hours,
            }
        ),
    )
    return written
