"""ASCII table / series rendering for benchmark output.

Every benchmark prints a paper-vs-measured comparison through these
helpers so EXPERIMENTS.md and the bench logs stay consistent.
"""

from __future__ import annotations

import datetime
from typing import Iterable, List, Optional, Sequence, Tuple


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    divider = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [title, divider, line(headers), divider]
    out.extend(line(row) for row in rows)
    out.append(divider)
    if note:
        out.append(f"  {note}")
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_series(
    title: str,
    points: Sequence[Tuple[datetime.date, float]],
    width: int = 60,
    unit: str = "%",
) -> str:
    """A compact horizontal-bar sparkline of a time series."""
    if not points:
        return f"{title}\n  (no data)"
    values = [v for _d, v in points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    out = [f"{title}  [min {low:.2f}{unit}, max {high:.2f}{unit}]"]
    for day, value in points:
        bar = "#" * max(1, int((value - low) / span * width))
        out.append(f"  {day}  {value:7.2f}{unit}  {bar}")
    return "\n".join(out)


def render_comparison(
    title: str,
    entries: Sequence[Tuple[str, object, object]],
) -> str:
    """Rows of (metric, paper value, measured value)."""
    return render_table(
        title,
        ["metric", "paper", "measured"],
        [(name, paper, measured) for name, paper, measured in entries],
    )


def render_histogram(
    title: str,
    buckets: Sequence[Tuple[str, int]],
    width: int = 50,
) -> str:
    if not buckets:
        return f"{title}\n  (empty)"
    peak = max(count for _label, count in buckets) or 1
    out = [title]
    for label, count in buckets:
        bar = "#" * max(0, int(count / peak * width))
        out.append(f"  {label:>12}  {count:6d}  {bar}")
    return "\n".join(out)
