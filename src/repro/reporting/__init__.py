"""Rendering helpers for benchmark and experiment output."""

from .tables import render_comparison, render_histogram, render_series, render_table

__all__ = ["render_comparison", "render_histogram", "render_series", "render_table"]
