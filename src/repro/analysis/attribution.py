"""Injected-cause attribution: join a chaos scenario's fault ledger
against the anomalies a dataset actually records.

A scenario run (:class:`~repro.simnet.faults.FaultSchedule` on a
:class:`~repro.study.StudySpec`) injects faults whose observable
footprints are exactly the paper's misbehaviour findings — intermittent
HTTPS publication (§4.2.3), hint/connectivity mismatches (§4.3.5),
DNSSEC validation failures (Table 9), and stale ECH configs behind the
Table 7 failover rows. This module extracts those **anomalies** from a
dataset, then attributes each one to the injected fault(s) whose kind,
window, and target scope can explain it; whatever no fault claims is
**organic** — the world misbehaving on its own, as the fault-free study
already measures.

The join is pure dataset + config arithmetic (domain profiles are
re-derived from :func:`~repro.simnet.cohorts.make_profile`, never a
live :class:`~repro.simnet.world.World`), so attribution runs on a
cached or released dataset long after the collecting process is gone.
"""

from __future__ import annotations

import dataclasses
import datetime
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..ech.keys import ECHKeyManager
from ..scanner.dataset import Dataset
from ..simnet import timeline
from ..simnet.cohorts import DomainProfile, make_profile
from ..simnet.config import SimConfig
from ..simnet.faults import (
    KIND_DNSSEC_EXPIRED_RRSIG,
    KIND_DNSSEC_MISSING_DS,
    KIND_ECH_KEY_DESYNC,
    KIND_LAME_DELEGATION,
    KIND_PACKET_LOSS,
    KIND_SERVER_OUTAGE,
    KIND_STALE_HTTPS_HINT,
    KIND_TIMEOUT,
    FaultSchedule,
    FaultSpec,
    spec_affects,
)
from ..simnet.world import ECH_PUBLIC_NAME

# Anomaly kinds (what the dataset shows, not what was injected).
ANOMALY_ABSENCE = "absence"  # HTTPS record unobserved after a sighting
ANOMALY_HINT_MISMATCH = "hint_mismatch"  # published hints != A records
ANOMALY_UNREACHABLE = "unreachable"  # TLS probe failed (§4.3.5)
ANOMALY_DNSSEC = "dnssec"  # signed zone not validating SECURE
ANOMALY_ECH_STALE = "ech_stale"  # published ECH config not current

# Which observable anomaly kinds each injected fault kind can cause.
# The attribution join only lets a fault claim anomalies it could have
# produced; an outage never soaks up, say, a DNSSEC validation failure.
_CAUSES: Dict[str, Tuple[str, ...]] = {
    KIND_SERVER_OUTAGE: (ANOMALY_ABSENCE, ANOMALY_UNREACHABLE),
    KIND_LAME_DELEGATION: (ANOMALY_ABSENCE,),
    KIND_PACKET_LOSS: (ANOMALY_ABSENCE,),
    KIND_TIMEOUT: (ANOMALY_ABSENCE,),
    # A validating resolver answers SERVFAIL for a bogus chain, so the
    # domain also vanishes from the daily scan.
    KIND_DNSSEC_EXPIRED_RRSIG: (ANOMALY_DNSSEC, ANOMALY_ABSENCE),
    KIND_DNSSEC_MISSING_DS: (ANOMALY_DNSSEC,),
    KIND_ECH_KEY_DESYNC: (ANOMALY_ECH_STALE,),
    KIND_STALE_HTTPS_HINT: (ANOMALY_HINT_MISMATCH, ANOMALY_UNREACHABLE),
}


@dataclasses.dataclass(frozen=True)
class Anomaly:
    """One dated, per-domain oddity extracted from the dataset."""

    kind: str
    name: str  # apex domain (presentation form, no trailing dot)
    date: datetime.date


@dataclasses.dataclass
class FaultAttribution:
    """One injected fault joined against the anomalies it can explain."""

    spec: FaultSpec
    in_window: bool  # fault window intersects the observed scan days
    anomalies: Tuple[Anomaly, ...]

    @property
    def attributed(self) -> bool:
        return bool(self.anomalies)


@dataclasses.dataclass
class AttributionReport:
    """The full injected-vs-organic account of one scenario dataset."""

    entries: List[FaultAttribution]
    anomalies: Tuple[Anomaly, ...]  # everything observed
    organic: Tuple[Anomaly, ...]  # claimed by no injected fault
    window_start: Optional[datetime.date]
    window_end: Optional[datetime.date]

    @property
    def injected(self) -> Tuple[Anomaly, ...]:
        """Anomalies claimed by at least one fault (deduplicated)."""
        organic = set((a.kind, a.name, a.date) for a in self.organic)
        return tuple(
            a for a in self.anomalies if (a.kind, a.name, a.date) not in organic
        )

    def unattributed_faults(self) -> List[FaultSpec]:
        """In-window faults that explain no observed anomaly — the CI
        chaos smoke requires this list to be empty."""
        return [e.spec for e in self.entries if e.in_window and not e.attributed]

    def fully_attributed(self) -> bool:
        return not self.unattributed_faults()

    def organic_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for anomaly in self.organic:
            counts[anomaly.kind] += 1
        return dict(counts)

    def summary(self) -> str:
        lines = [
            f"anomalies: {len(self.anomalies)} observed, "
            f"{len(self.injected)} injected, {len(self.organic)} organic"
        ]
        for entry in self.entries:
            status = (
                f"{len(entry.anomalies)} anomalies"
                if entry.attributed
                else ("UNATTRIBUTED" if entry.in_window else "out of window")
            )
            lines.append(f"  {entry.spec.canonical_tag()}: {status}")
        organic = self.organic_counts()
        if organic:
            parts = ", ".join(f"{k}={organic[k]}" for k in sorted(organic))
            lines.append(f"  organic breakdown: {parts}")
        return "\n".join(lines)


def profiles_by_name(config: SimConfig) -> Dict[str, DomainProfile]:
    """The world's domain profiles keyed by apex text, re-derived from
    the config (profiles are pure functions of seed × index)."""
    return {
        profile.name: profile
        for profile in (
            make_profile(config, i) for i in range(config.population)
        )
    }


def observed_anomalies(dataset: Dataset, config: SimConfig) -> List[Anomaly]:
    """Every dated oddity the dataset records, in deterministic order."""
    anomalies: List[Anomaly] = []
    days = dataset.days()
    # Presence flips: a name absent on a scan day after its first HTTPS
    # sighting. (Days before the first sighting are the organic adoption
    # ramp, not an anomaly.)
    first_seen: Dict[str, datetime.date] = {}
    for day in days:
        snapshot = dataset.snapshot(day)
        for name in snapshot.apex:
            first_seen.setdefault(name, day)
    for day in days:
        snapshot = dataset.snapshot(day)
        listed = set(snapshot.ranked_names)
        for name in sorted(first_seen):
            if first_seen[name] < day and name in listed and name not in snapshot.apex:
                anomalies.append(Anomaly(ANOMALY_ABSENCE, name, day))
    # Hint/A mismatches (§4.3.5) and the TLS connectivity probes on them.
    for day in days:
        snapshot = dataset.snapshot(day)
        for name in sorted(snapshot.apex):
            obs = snapshot.apex[name]
            hints = obs.all_ipv4_hints()
            if hints and obs.a_addrs and set(hints) != set(obs.a_addrs):
                anomalies.append(Anomaly(ANOMALY_HINT_MISMATCH, name, day))
        for probe in snapshot.connectivity:
            if probe.any_unreachable:
                anomalies.append(Anomaly(ANOMALY_UNREACHABLE, probe.name, day))
    # DNSSEC validation states on the snapshot day (Table 9): a signed
    # zone that does not validate SECURE.
    if dataset.dnssec_snapshot_date is not None:
        date = dataset.dnssec_snapshot_date
        for name in sorted(dataset.dnssec_snapshot):
            _has_https, signed, state, _ns, _reg, _prov = dataset.dnssec_snapshot[name]
            if signed and state != "secure":
                anomalies.append(Anomaly(ANOMALY_DNSSEC, name, date))
    # Stale ECH configs: a sighting whose config_id is not the current
    # key generation for that hour (the Table 7 failover trigger). The
    # expected generation is a pure function of the config, so this
    # works on daily scans and hourly rescans alike.
    manager = ECHKeyManager(
        ECH_PUBLIC_NAME,
        seed=config.seed.encode(),
        rotation_hours=config.ech_rotation_hours,
    )
    for day in days:
        snapshot = dataset.snapshot(day)
        hour = timeline.day_index(day) * 24
        expected = manager.generation_for_hour(hour) % 256
        for name in sorted(snapshot.apex):
            for record in snapshot.apex[name].https_records:
                if record.has_ech and record.ech_config_id != expected:
                    anomalies.append(Anomaly(ANOMALY_ECH_STALE, name, day))
                    break
    seen_hourly = set()
    for obs in dataset.ech_observations:
        expected = manager.generation_for_hour(obs.hour) % 256
        if obs.config_id != expected:
            day = timeline.date_of(obs.hour // 24)
            key = (obs.name, day)
            if key not in seen_hourly:  # one anomaly per (name, day)
                seen_hourly.add(key)
                anomalies.append(Anomaly(ANOMALY_ECH_STALE, obs.name, day))
    return anomalies


def attribute(
    dataset: Dataset,
    scenario: Optional[FaultSchedule],
    config: SimConfig,
) -> AttributionReport:
    """Join *scenario*'s fault ledger against *dataset*'s anomalies.

    Each fault claims the anomalies whose kind it can cause
    (:data:`_CAUSES`), whose date falls in its window, and whose domain
    it targets (:func:`~repro.simnet.faults.spec_affects`). Anomalies
    claimed by no fault are organic; in-window faults claiming nothing
    are flagged via :meth:`AttributionReport.unattributed_faults`.
    """
    days = dataset.days()
    window_start = days[0] if days else None
    window_end = days[-1] if days else None
    anomalies = observed_anomalies(dataset, config)
    profiles = profiles_by_name(config)
    specs = () if scenario is None else scenario.specs
    entries: List[FaultAttribution] = []
    claimed: set = set()
    for spec in specs:
        in_window = (
            window_start is not None
            and spec.overlaps(window_start, window_end)
        )
        matched: List[Anomaly] = []
        for index, anomaly in enumerate(anomalies):
            if anomaly.kind not in _CAUSES[spec.kind]:
                continue
            profile = profiles.get(anomaly.name)
            if profile is None:
                continue
            if spec_affects(spec, profile, config, anomaly.date):
                matched.append(anomaly)
                claimed.add(index)
        entries.append(FaultAttribution(spec, in_window, tuple(matched)))
    organic = tuple(
        anomaly for index, anomaly in enumerate(anomalies) if index not in claimed
    )
    return AttributionReport(
        entries=entries,
        anomalies=tuple(anomalies),
        organic=organic,
        window_start=window_start,
        window_end=window_end,
    )
