"""§4.2.3 — inconsistent (intermittent) use of HTTPS records.

Finds domains whose HTTPS record comes and goes during the NS window and
attributes the intermittency: same name servers throughout (Cloudflare
proxied-toggle vs non-Cloudflare), multiple providers with uneven HTTPS
support, name-server changes away from Cloudflare, and deactivations
with missing NS records.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..simnet import timeline
from ..scanner.dataset import Dataset
from .common import classify_ns_set, ns_is_cloudflare, NS_FULL_CLOUDFLARE


@dataclass
class IntermittencyReport:
    """The §4.2.3 breakdown."""

    intermittent_domains: int
    same_ns_domains: int
    same_ns_cloudflare_only: int
    same_ns_other: int
    mixed_ns_on_deactivation: int
    lost_on_ns_change: int
    missing_ns_on_deactivation: int

    @property
    def same_ns_cloudflare_share(self) -> float:
        return self.same_ns_cloudflare_only / max(1, self.same_ns_domains)


def analyze_intermittency(dataset: Dataset) -> IntermittencyReport:
    """Classify every intermittently-publishing apex in the NS window."""
    days = dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START)
    presence: Dict[str, List[bool]] = defaultdict(list)
    ns_history: Dict[str, List[Tuple[str, ...]]] = defaultdict(list)
    listed_history: Dict[str, List[bool]] = defaultdict(list)

    # Only domains listed on every window day are classifiable (otherwise
    # absence from the list masquerades as deactivation).
    window_names: Set[str] = set()
    for day in days:
        window_names.update(dataset.snapshot(day).ranked_names)
    always_listed = set(window_names)
    for day in days:
        names = set(dataset.snapshot(day).ranked_names)
        always_listed &= names

    # During active phases NS comes from the scan's follow-up queries;
    # during inactive phases from the deactivation watchlist (§4.2.3).
    inactive_ns: Dict[str, List[Tuple[str, ...]]] = defaultdict(list)
    saw_no_ns: Dict[str, bool] = defaultdict(bool)
    for day in days:
        snapshot = dataset.snapshot(day)
        # sorted: presence/ns_history insertion order must not depend on
        # the str-hash seed (the report only sums, but a stable order
        # keeps any future per-domain output deterministic too).
        for name in sorted(always_listed):
            obs = snapshot.apex.get(name)
            has = obs is not None
            presence[name].append(has)
            if has:
                ns_history[name].append(obs.ns_names)
            else:
                watched = snapshot.watchlist_ns.get(name)
                ns_history[name].append(watched if watched else ())
                if watched is not None:
                    if watched:
                        inactive_ns[name].append(watched)
                    else:
                        saw_no_ns[name] = True

    report_counts = dict(
        intermittent_domains=0,
        same_ns_domains=0,
        same_ns_cloudflare_only=0,
        same_ns_other=0,
        mixed_ns_on_deactivation=0,
        lost_on_ns_change=0,
        missing_ns_on_deactivation=0,
    )

    for name, flags in presence.items():
        if all(flags) or not any(flags):
            continue
        report_counts["intermittent_domains"] += 1
        active_ns = {
            ns for ns, has in zip(ns_history[name], flags) if has and ns
        }
        if not active_ns:
            continue
        active_all_cf = all(
            classify_ns_set(ns) == NS_FULL_CLOUDFLARE for ns in active_ns
        )
        if saw_no_ns[name] and not inactive_ns[name]:
            # The domain's NS records vanished when it deactivated.
            report_counts["missing_ns_on_deactivation"] += 1
            continue
        off_ns = set(inactive_ns[name])
        if not off_ns or off_ns <= active_ns:
            # Same name servers throughout activation and deactivation.
            report_counts["same_ns_domains"] += 1
            if active_all_cf:
                report_counts["same_ns_cloudflare_only"] += 1
            else:
                report_counts["same_ns_other"] += 1
            continue
        # NS differ between active and inactive phases.
        off_has_noncf = any(
            classify_ns_set(ns) != NS_FULL_CLOUDFLARE for ns in off_ns
        )
        last_active_index = max(i for i, has in enumerate(flags) if has)
        never_reactivated = last_active_index < len(flags) - 1
        if active_all_cf and off_has_noncf and never_reactivated:
            report_counts["lost_on_ns_change"] += 1
        elif active_all_cf and off_has_noncf:
            report_counts["mixed_ns_on_deactivation"] += 1
        else:
            report_counts["same_ns_domains"] += 1
            report_counts["same_ns_cloudflare_only"] += int(active_all_cf)
            report_counts["same_ns_other"] += int(not active_all_cf)
    return IntermittencyReport(**report_counts)


@dataclass
class InjectedSplit:
    """§4.2.3 intermittency split by cause: apexes whose HTTPS record
    flapped because of an injected fault vs. organically."""

    injected_domains: int
    organic_domains: int

    @property
    def flapping_domains(self) -> int:
        return self.injected_domains + self.organic_domains


def intermittency_injected_split(dataset: Dataset, scenario, config) -> InjectedSplit:
    """Split the dataset's presence-flapping apexes into those whose
    absence days an injected fault explains (kind, window, and target
    scope all matching — see :mod:`repro.analysis.attribution`) and
    those the world produced on its own. With no scenario everything is
    organic, which is the fault-free §4.2.3 picture."""
    from .attribution import ANOMALY_ABSENCE, attribute

    report = attribute(dataset, scenario, config)
    injected = {
        anomaly.name
        for entry in report.entries
        for anomaly in entry.anomalies
        if anomaly.kind == ANOMALY_ABSENCE
    }
    flapping = {a.name for a in report.anomalies if a.kind == ANOMALY_ABSENCE}
    return InjectedSplit(
        injected_domains=len(injected),
        organic_domains=len(flapping - injected),
    )


def direct_authoritative_check(world, dataset: Dataset) -> Dict[str, dict]:
    """The paper's supplementary experiment: query each intermittent
    domain's authoritative servers directly and compare how many return
    the HTTPS record (mixed-provider detection)."""
    from ..dnscore import rdtypes
    from ..dnscore.message import Message

    results: Dict[str, dict] = {}
    days = dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START)
    if not days:
        return results
    last_day = days[-1]
    snapshot = dataset.snapshot(last_day)
    for name, obs in snapshot.apex.items():
        if len(set(obs.ns_names)) < 2:
            continue
        profile = world.profile_by_name(name)
        if profile is None or profile.secondary_provider_key is None:
            continue
        answers = {}
        for hostname in obs.ns_names:
            ns_obs = snapshot.ns_observations.get(hostname)
            if ns_obs is None or not ns_obs.ips:
                continue
            query = Message.make_query(profile.apex, rdtypes.HTTPS)
            try:
                response = world.network.send_dns_query(ns_obs.ips[0], query)
            except Exception:
                continue
            answers[hostname] = response.get_answer(profile.apex, rdtypes.HTTPS) is not None
        if answers and len(set(answers.values())) > 1:
            results[name] = answers
    return results
