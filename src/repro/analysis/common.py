"""Shared helpers for the §4 analyses."""

from __future__ import annotations

import datetime
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..scanner.dataset import DailySnapshot, Dataset
from ..scanner.records import DomainObservation

CLOUDFLARE_NS_SUFFIXES = ("ns.cloudflare.com",)
CLOUDFLARE_CN_SUFFIXES = ("cf-ns.com", "cf-ns.net")
CLOUDFLARE_ORGS = ("Cloudflare, Inc.", "Cloudflare China Network (CAPG)")

# NS classification (Table 2 rows).
NS_FULL_CLOUDFLARE = "full"
NS_NONE_CLOUDFLARE = "none"
NS_PARTIAL_CLOUDFLARE = "partial"


def ns_is_cloudflare(hostname: str) -> bool:
    hostname = hostname.rstrip(".").lower()
    return any(
        hostname == suffix or hostname.endswith("." + suffix)
        for suffix in CLOUDFLARE_NS_SUFFIXES + CLOUDFLARE_CN_SUFFIXES
    )


def classify_ns_set(ns_names: Iterable[str]) -> Optional[str]:
    """Full / partial / none Cloudflare (None when no NS data)."""
    ns_names = list(ns_names)
    if not ns_names:
        return None
    flags = [ns_is_cloudflare(ns) for ns in ns_names]
    if all(flags):
        return NS_FULL_CLOUDFLARE
    if not any(flags):
        return NS_NONE_CLOUDFLARE
    return NS_PARTIAL_CLOUDFLARE


def ns_org(snapshot: DailySnapshot, hostname: str) -> Optional[str]:
    """WHOIS org of a name server, from that day's NS scan."""
    observation = snapshot.ns_observations.get(hostname)
    return observation.whois_org if observation is not None else None


def provider_orgs_of(snapshot: DailySnapshot, observation: DomainObservation) -> List[str]:
    """All (deduplicated) NS operator orgs of a domain on a day, using
    WHOIS where available and hostname heuristics otherwise."""
    orgs = []
    for hostname in observation.ns_names:
        org = ns_org(snapshot, hostname)
        if org is None:
            org = "Cloudflare, Inc." if ns_is_cloudflare(hostname) else _org_from_hostname(hostname)
        if org not in orgs:
            orgs.append(org)
    return orgs


def _org_from_hostname(hostname: str) -> str:
    """Fallback attribution from the NS hostname's registered domain."""
    labels = hostname.rstrip(".").split(".")
    if len(labels) >= 2:
        return ".".join(labels[-2:])
    return hostname


def series(
    dataset: Dataset,
    value_of,
    start: Optional[datetime.date] = None,
    end: Optional[datetime.date] = None,
) -> List[Tuple[datetime.date, float]]:
    """Evaluate ``value_of(snapshot)`` over the dataset's days."""
    return [
        (day, value_of(dataset.snapshot(day)))
        for day in dataset.days_between(start, end)
    ]


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stdev(values: Iterable[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def restrict(observations: Dict[str, DomainObservation], names: FrozenSet[str]) -> Dict[str, DomainObservation]:
    return {name: obs for name, obs in observations.items() if name in names}
