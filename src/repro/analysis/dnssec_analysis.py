"""§4.5 — HTTPS RR and DNSSEC (Figure 5, Table 9, registrar congruence)."""

from __future__ import annotations

import datetime
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simnet import timeline
from ..simnet.providers import PROVIDERS
from ..scanner.dataset import Dataset
from .common import classify_ns_set, mean, ns_is_cloudflare, NS_FULL_CLOUDFLARE


@dataclass
class SignedSeriesPoint:
    date: datetime.date
    signed_pct: float  # HTTPS RRsets with covering RRSIG
    validated_pct: float  # … and AD set by the validating resolver


def fig5_signed_series(
    dataset: Dataset, kind: str = "apex", overlapping_only: bool = False
) -> List[SignedSeriesPoint]:
    """Figure 5: share of HTTPS records that are signed / validated."""
    overlap = (
        dataset.overlapping_domains(1) | dataset.overlapping_domains(2)
        if overlapping_only
        else None
    )
    points = []
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        observations = snapshot.apex if kind == "apex" else snapshot.www
        selected = [
            obs for name, obs in observations.items()
            if overlap is None or (name[4:] if kind == "www" else name) in overlap
        ]
        if not selected:
            continue
        total = len(selected)
        signed = sum(1 for obs in selected if obs.rrsig_present)
        validated = sum(1 for obs in selected if obs.rrsig_present and obs.ad_flag)
        points.append(
            SignedSeriesPoint(day, 100.0 * signed / total, 100.0 * validated / total)
        )
    return points


@dataclass
class Table9Row:
    category: str
    signed: int
    secure: int
    insecure: int

    @property
    def secure_pct(self) -> float:
        return 100.0 * self.secure / max(1, self.signed)

    @property
    def insecure_pct(self) -> float:
        return 100.0 * self.insecure / max(1, self.signed)


def table9_validation(dataset: Dataset) -> List[Table9Row]:
    """Table 9: DNSSEC validation of signed domains on the snapshot day,
    split by HTTPS RR publication and (for publishers) by NS operator."""
    rows = {
        "without HTTPS RR": Table9Row("without HTTPS RR", 0, 0, 0),
        "with HTTPS RR": Table9Row("with HTTPS RR", 0, 0, 0),
        "- Cloudflare": Table9Row("- Cloudflare", 0, 0, 0),
        "- Non-Cloudflare": Table9Row("- Non-Cloudflare", 0, 0, 0),
    }
    for name, entry in dataset.dnssec_snapshot.items():
        has_https, signed, state, ns_names, _registrar, provider_key = entry
        if not signed:
            continue
        group = rows["with HTTPS RR"] if has_https else rows["without HTTPS RR"]
        group.signed += 1
        secure = state == "secure"
        if secure:
            group.secure += 1
        elif state == "insecure":
            group.insecure += 1
        if has_https:
            if ns_names:
                is_cf = classify_ns_set(ns_names) == NS_FULL_CLOUDFLARE
            else:
                is_cf = provider_key in ("cloudflare", "cfns")
            sub = rows["- Cloudflare"] if is_cf else rows["- Non-Cloudflare"]
            sub.signed += 1
            if secure:
                sub.secure += 1
            elif state == "insecure":
                sub.insecure += 1
    return list(rows.values())


@dataclass
class RegistrarCongruence:
    """§4.5.1 / Appendix G: do signed HTTPS domains use the same
    organisation as DNS operator and registrar?"""

    signed_https_domains: int
    congruent: int

    @property
    def congruent_pct(self) -> float:
        return 100.0 * self.congruent / max(1, self.signed_https_domains)


def registrar_congruence(dataset: Dataset) -> RegistrarCongruence:
    signed = congruent = 0
    for name, entry in dataset.dnssec_snapshot.items():
        has_https, is_signed, _state, _ns_names, registrar, provider_key = entry
        if not (has_https and is_signed):
            continue
        signed += 1
        provider = PROVIDERS.get(provider_key)
        if provider is not None and registrar in provider.registrar_names:
            congruent += 1
    return RegistrarCongruence(signed, congruent)


def ech_dnssec_overlap(dataset: Dataset) -> Tuple[float, float]:
    """§4.5.2: among pre-disable ECH domains, the mean signed share and
    the mean validated share (both small — <6% / ~half of that)."""
    signed_shares, validated_shares = [], []
    for day in dataset.days_between(end=timeline.ECH_DISABLE - datetime.timedelta(days=1)):
        snapshot = dataset.snapshot(day)
        ech_domains = [obs for obs in snapshot.apex.values() if obs.has_ech]
        if not ech_domains:
            continue
        total = len(ech_domains)
        signed = sum(1 for obs in ech_domains if obs.rrsig_present)
        validated = sum(1 for obs in ech_domains if obs.rrsig_present and obs.ad_flag)
        signed_shares.append(100.0 * signed / total)
        validated_shares.append(100.0 * validated / total)
    return mean(signed_shares), mean(validated_shares)
