"""Appendix E — the parameter-oddity census.

The paper's appendix names specific misconfigurations and oddities:
AliasMode records that alias to themselves, IP-address and URL literals
in TargetName, the geo-routing.nexuspipe.com multi-priority/port scheme,
draft-HTTP/3 stragglers, HTTP/1.1-only domains, and the Google-QUIC
(Q043/Q046/Q050) cohort that appears on Feb 11, 2024. This module finds
all of them in a campaign dataset.
"""

from __future__ import annotations

import datetime
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..scanner.dataset import Dataset
from ..svcb.params import ALPN_H3_27, ALPN_H3_29, ALPN_HTTP11, GOOGLE_QUIC_VERSIONS
from ..simnet import timeline


@dataclass
class OddityCensus:
    """Appendix E.1/E.2 named findings."""

    alias_self_domains: List[str]  # "0 ." — no true alias (newlinesmag.com)
    ip_target_domains: List[str]  # TargetName is an address literal
    url_target_domains: List[str]  # TargetName is an https:// URL
    multi_priority_domains: Dict[str, List[Tuple[int, Optional[int]]]]  # name -> [(prio, port)]
    odd_single_priority_domains: Dict[str, int]  # host-ir.com: 443, pionerfm.ru: 1800
    draft_h3_domains: List[str]  # still advertising h3-27/h3-29 late
    http11_only_domains: List[str]
    google_quic_domains: List[str]


def _looks_like_ip(target: str) -> bool:
    # An address literal stuffed into TargetName is one label, so its
    # presentation form escapes the dots ("1\.2\.3\.4.").
    stripped = target.replace("\\.", ".").rstrip(".")
    parts = stripped.split(".")
    return len(parts) == 4 and all(p.isdigit() and int(p) <= 255 for p in parts)


def census(dataset: Dataset, date: Optional[datetime.date] = None) -> OddityCensus:
    """Scan one day's apex observations for every Appendix-E oddity."""
    days = dataset.days()
    if date is None:
        date = days[-1]
    snapshot = dataset.snapshot(date)

    alias_self: List[str] = []
    ip_target: List[str] = []
    url_target: List[str] = []
    multi_priority: Dict[str, List[Tuple[int, Optional[int]]]] = {}
    odd_priority: Dict[str, int] = {}
    draft_h3: List[str] = []
    http11_only: List[str] = []

    for name, obs in sorted(snapshot.apex.items()):
        records = obs.https_records
        priorities = sorted({r.priority for r in records})
        if len(records) > 1 and len(priorities) > 1:
            multi_priority[name] = sorted(
                (r.priority, r.port) for r in records
            )
        elif len(records) == 1 and records[0].priority not in (0, 1):
            odd_priority[name] = records[0].priority
        for record in records:
            target = record.target
            if record.is_alias_mode and target == ".":
                alias_self.append(name)
            if _looks_like_ip(target):
                ip_target.append(name)
            if target.startswith("https://"):
                url_target.append(name)
            alpn = set(record.alpn or ())
            if alpn & {ALPN_H3_27, ALPN_H3_29} and date >= timeline.H3_29_RETIREMENT:
                draft_h3.append(name)
            if alpn == {ALPN_HTTP11}:
                http11_only.append(name)

    # Google-QUIC cohort: visible only from Feb 11, 2024.
    google_quic: List[str] = []
    for day in days:
        if day < timeline.GOOGLE_QUIC_APPEARANCE:
            continue
        for name, obs in dataset.snapshot(day).apex.items():
            for record in obs.https_records:
                if set(record.alpn or ()) & set(GOOGLE_QUIC_VERSIONS):
                    google_quic.append(name)
    return OddityCensus(
        alias_self_domains=sorted(set(alias_self)),
        ip_target_domains=sorted(set(ip_target)),
        url_target_domains=sorted(set(url_target)),
        multi_priority_domains=multi_priority,
        odd_single_priority_domains=odd_priority,
        draft_h3_domains=sorted(set(draft_h3)),
        http11_only_domains=sorted(set(http11_only)),
        google_quic_domains=sorted(set(google_quic)),
    )


def google_quic_first_seen(dataset: Dataset) -> Optional[datetime.date]:
    """The first scan day the Q043/Q046/Q050 cohort shows up (paper:
    Feb 11, 2024)."""
    for day in dataset.days():
        for obs in dataset.snapshot(day).apex.values():
            for record in obs.https_records:
                if set(record.alpn or ()) & set(GOOGLE_QUIC_VERSIONS):
                    return day
    return None


def nexuspipe_port_scheme(dataset: Dataset) -> Dict[str, List[Tuple[int, Optional[int]]]]:
    """The Appendix-E.1 geo-routing scheme: every priority 1..12 mapped to
    its own port, shared TargetName."""
    result = census(dataset)
    return {
        name: pairs
        for name, pairs in result.multi_priority_domains.items()
        if len(pairs) >= 10
    }
