"""Server-side analyses reproducing §4 of the paper."""

from . import (
    adoption,
    appendix,
    attribution,
    common,
    dnssec_analysis,
    ech_analysis,
    hints,
    intermittent,
    nameservers,
    parameters,
    tranco,
)

__all__ = [
    "adoption",
    "appendix",
    "attribution",
    "common",
    "dnssec_analysis",
    "ech_analysis",
    "hints",
    "intermittent",
    "nameservers",
    "parameters",
    "tranco",
]
