"""§4.2.2 — name servers of HTTPS-publishing domains.

Reproduces Table 2 (Cloudflare vs non-Cloudflare NS shares), Table 3
(top non-Cloudflare DNS providers), Figure 3 (daily count of distinct
non-Cloudflare providers), Figure 9 (ranks of non-Cloudflare apexes),
and Figure 10 (daily count of non-Cloudflare HTTPS domains).
"""

from __future__ import annotations

import datetime
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..simnet import timeline
from ..scanner.dataset import Dataset
from .common import (
    CLOUDFLARE_ORGS,
    NS_FULL_CLOUDFLARE,
    NS_NONE_CLOUDFLARE,
    NS_PARTIAL_CLOUDFLARE,
    classify_ns_set,
    mean,
    provider_orgs_of,
    stdev,
)


@dataclass
class NsShareStats:
    """One column of Table 2."""

    full_mean_pct: float
    full_std: float
    none_mean_pct: float
    none_std: float
    partial_mean_pct: float
    partial_std: float


def _daily_shares(dataset: Dataset, restrict_names=None) -> Dict[str, List[float]]:
    shares: Dict[str, List[float]] = {k: [] for k in (NS_FULL_CLOUDFLARE, NS_NONE_CLOUDFLARE, NS_PARTIAL_CLOUDFLARE)}
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        counts = Counter()
        total = 0
        for name, obs in snapshot.apex.items():
            if restrict_names is not None and name not in restrict_names:
                continue
            category = classify_ns_set(obs.ns_names)
            if category is None:
                continue
            counts[category] += 1
            total += 1
        if total == 0:
            continue
        for key in shares:
            shares[key].append(100.0 * counts[key] / total)
    return shares


def table2_ns_shares(dataset: Dataset, overlapping_only: bool = False) -> NsShareStats:
    """Table 2: mean/std of the daily Cloudflare-NS share among apex
    domains with HTTPS records (NS-scan window)."""
    restrict_names = dataset.overlapping_domains(2) if overlapping_only else None
    shares = _daily_shares(dataset, restrict_names)
    return NsShareStats(
        full_mean_pct=mean(shares[NS_FULL_CLOUDFLARE]),
        full_std=stdev(shares[NS_FULL_CLOUDFLARE]),
        none_mean_pct=mean(shares[NS_NONE_CLOUDFLARE]),
        none_std=stdev(shares[NS_NONE_CLOUDFLARE]),
        partial_mean_pct=mean(shares[NS_PARTIAL_CLOUDFLARE]),
        partial_std=stdev(shares[NS_PARTIAL_CLOUDFLARE]),
    )


def table3_top_noncf_providers(
    dataset: Dataset, overlapping_only: bool = False, top: int = 10
) -> List[Tuple[str, int]]:
    """Table 3: top non-Cloudflare DNS providers by the number of distinct
    apex domains (with HTTPS RR) they served during the NS window."""
    restrict_names = dataset.overlapping_domains(2) if overlapping_only else None
    domains_by_org: Dict[str, set] = defaultdict(set)
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        for name, obs in snapshot.apex.items():
            if restrict_names is not None and name not in restrict_names:
                continue
            if classify_ns_set(obs.ns_names) != NS_NONE_CLOUDFLARE:
                continue
            for org in provider_orgs_of(snapshot, obs):
                if org not in CLOUDFLARE_ORGS:
                    domains_by_org[org].add(name)
    ranked = sorted(domains_by_org.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    return [(org, len(names)) for org, names in ranked[:top]]


def fig3_noncf_provider_counts(dataset: Dataset) -> List[Tuple[datetime.date, int]]:
    """Figure 3: daily number of distinct non-Cloudflare DNS providers
    serving HTTPS-publishing apex domains."""
    points = []
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        orgs = set()
        for obs in snapshot.apex.values():
            if classify_ns_set(obs.ns_names) != NS_NONE_CLOUDFLARE:
                continue
            orgs.update(
                org for org in provider_orgs_of(snapshot, obs) if org not in CLOUDFLARE_ORGS
            )
        points.append((day, len(orgs)))
    return points


def fig10_noncf_domain_counts(dataset: Dataset) -> List[Tuple[datetime.date, int]]:
    """Figure 10: daily number of apex domains that both publish HTTPS
    records and use non-Cloudflare name servers."""
    points = []
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        count = sum(
            1
            for obs in snapshot.apex.values()
            if classify_ns_set(obs.ns_names) == NS_NONE_CLOUDFLARE
        )
        points.append((day, count))
    return points


def fig9_noncf_ranks(dataset: Dataset) -> List[Tuple[str, float]]:
    """Figure 9: mean daily rank of each apex that used non-Cloudflare
    name servers while publishing HTTPS records."""
    ranks: Dict[str, List[int]] = defaultdict(list)
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        rank_index = {name: i + 1 for i, name in enumerate(snapshot.ranked_names)}
        for name, obs in snapshot.apex.items():
            if classify_ns_set(obs.ns_names) == NS_NONE_CLOUDFLARE and name in rank_index:
                ranks[name].append(rank_index[name])
    return sorted(
        ((name, mean(values)) for name, values in ranks.items()), key=lambda kv: kv[1]
    )


def distinct_noncf_provider_count(dataset: Dataset) -> int:
    """Total distinct non-Cloudflare providers over the whole NS window
    (paper: 244 dynamic / 201 overlapping at full scale)."""
    orgs = set()
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        for obs in snapshot.apex.values():
            if classify_ns_set(obs.ns_names) != NS_NONE_CLOUDFLARE:
                continue
            orgs.update(
                org for org in provider_orgs_of(snapshot, obs) if org not in CLOUDFLARE_ORGS
            )
    return len(orgs)
