"""§4.3 — HTTPS RR parameter analyses (Tables 4, 5, 8; §4.3.3–4.3.4)."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simnet import timeline
from ..scanner.dataset import Dataset
from ..scanner.records import DomainObservation, HttpsRecordView
from ..svcb.params import ALPN_H2, ALPN_H3, ALPN_H3_27, ALPN_H3_29, ALPN_HTTP11
from .common import classify_ns_set, mean, ns_org, NS_FULL_CLOUDFLARE, NS_NONE_CLOUDFLARE


def looks_like_cloudflare_default(record: HttpsRecordView) -> bool:
    """Does a record match Cloudflare's default proxied configuration?

    ``1 . alpn=h2,h3[,…] ipv4hint=… [ipv6hint=…] [ech=…]`` — §4.3.1.
    """
    if record.priority != 1 or record.target != ".":
        return False
    alpn = set(record.alpn or ())
    if ALPN_H2 not in alpn or ALPN_H3 not in alpn:
        return False
    return bool(record.ipv4hints)


@dataclass
class DefaultVsCustom:
    """Table 4."""

    default_pct: float
    customized_pct: float
    sample_days: int


def table4_default_vs_custom(dataset: Dataset, overlapping_only: bool = False) -> DefaultVsCustom:
    """Table 4: among domains on Cloudflare NS, the daily-average share
    whose HTTPS record matches the default configuration."""
    restrict = dataset.overlapping_domains(2) if overlapping_only else None
    daily_default: List[float] = []
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        default = total = 0
        for name, obs in snapshot.apex.items():
            if restrict is not None and name not in restrict:
                continue
            if classify_ns_set(obs.ns_names) != NS_FULL_CLOUDFLARE:
                continue
            total += 1
            if any(looks_like_cloudflare_default(r) for r in obs.https_records):
                default += 1
        if total:
            daily_default.append(100.0 * default / total)
    default_pct = mean(daily_default)
    return DefaultVsCustom(default_pct, 100.0 - default_pct, len(daily_default))


@dataclass
class ProviderConfigProfile:
    """One column of Table 5."""

    provider_org: str
    domain_count: int
    top_priority: Tuple[int, float]  # (value, share%)
    alias_share_pct: float
    self_target_share_pct: float
    empty_alpn_share_pct: float
    empty_ipv4hint_share_pct: float
    empty_ipv6hint_share_pct: float


def table5_provider_profiles(dataset: Dataset, orgs: Tuple[str, ...] = ("Google LLC", "GoDaddy.com, LLC")) -> List[ProviderConfigProfile]:
    """Table 5: common HTTPS configurations per (non-Cloudflare) provider."""
    per_org_domains: Dict[str, Dict[str, DomainObservation]] = defaultdict(dict)
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        for name, obs in snapshot.apex.items():
            for hostname in obs.ns_names:
                org = ns_org(snapshot, hostname)
                if org in orgs:
                    per_org_domains[org][name] = obs
                    break
    profiles = []
    for org in orgs:
        observations = list(per_org_domains.get(org, {}).values())
        if not observations:
            profiles.append(ProviderConfigProfile(org, 0, (1, 0.0), 0.0, 0.0, 0.0, 0.0, 0.0))
            continue
        records = [obs.https_records[0] for obs in observations if obs.https_records]
        total = len(records)
        priorities = Counter(record.priority for record in records)
        top_value, top_count = priorities.most_common(1)[0]
        profiles.append(
            ProviderConfigProfile(
                provider_org=org,
                domain_count=total,
                top_priority=(top_value, 100.0 * top_count / total),
                alias_share_pct=100.0 * sum(r.is_alias_mode for r in records) / total,
                self_target_share_pct=100.0 * sum(r.target == "." for r in records) / total,
                empty_alpn_share_pct=100.0 * sum(not r.alpn for r in records) / total,
                empty_ipv4hint_share_pct=100.0 * sum(not r.ipv4hints for r in records) / total,
                empty_ipv6hint_share_pct=100.0 * sum(not r.ipv6hints for r in records) / total,
            )
        )
    return profiles


@dataclass
class PriorityTargetStats:
    """§4.3.3 / Appendix E.1."""

    service_mode_share_pct: float  # SvcPriority >= 1
    priority_one_share_pct: float
    alias_mode_count: int
    alias_self_target_count: int  # "0 ." — no true alias
    service_empty_params_count: int  # ServiceMode with no SvcParams
    ip_or_url_target_count: int  # nonstandard TargetName values
    multi_priority_domains: int  # nexuspipe-style records


def priority_target_stats(dataset: Dataset) -> PriorityTargetStats:
    days = dataset.days()
    last = dataset.snapshot(days[-1])
    service = one = alias = alias_self = empty = weird_target = multi = 0
    total = 0
    for obs in last.apex.values():
        if not obs.https_records:
            continue
        total += 1
        priorities = {record.priority for record in obs.https_records}
        if len(obs.https_records) > 1 and len(priorities) > 1:
            multi += 1
        record = obs.https_records[0]
        if record.is_service_mode:
            service += 1
            if record.priority == 1:
                one += 1
            if not record.has_params:
                empty += 1
        else:
            alias += 1
            if record.target == ".":
                alias_self += 1
        target = record.target.rstrip(".")
        if target.replace(".", "").isdigit() or target.startswith("https://"):
            weird_target += 1
    return PriorityTargetStats(
        service_mode_share_pct=100.0 * service / max(1, total),
        priority_one_share_pct=100.0 * one / max(1, total),
        alias_mode_count=alias,
        alias_self_target_count=alias_self,
        service_empty_params_count=empty,
        ip_or_url_target_count=weird_target,
        multi_priority_domains=multi,
    )


@dataclass
class AlpnStats:
    """Table 8: daily-average protocol shares among overlapping domains
    with HTTPS RR."""

    h2_pct: float
    h3_pct: float
    h3_29_before_pct: float  # before May 31, 2023
    h3_29_after_pct: float
    h3_27_pct: float
    http11_pct: float
    no_alpn_pct: float


def _alpn_day_share(snapshot, names, protocol: Optional[str], kind: str = "apex") -> float:
    observations = snapshot.apex if kind == "apex" else snapshot.www
    selected = [
        obs for name, obs in observations.items()
        if (name[4:] if kind == "www" else name) in names
    ] if names is not None else list(observations.values())
    if not selected:
        return 0.0
    if protocol is None:
        hits = sum(1 for obs in selected if all(not r.alpn for r in obs.https_records))
    else:
        hits = sum(
            1 for obs in selected
            if any(protocol in (r.alpn or ()) for r in obs.https_records)
        )
    return 100.0 * hits / len(selected)


def table8_alpn(dataset: Dataset, kind: str = "apex") -> AlpnStats:
    overlap = dataset.overlapping_domains(1) | dataset.overlapping_domains(2)
    h2, h3, h3_29_before, h3_29_after, h3_27, http11, none = [], [], [], [], [], [], []
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        h2.append(_alpn_day_share(snapshot, overlap, ALPN_H2, kind))
        h3.append(_alpn_day_share(snapshot, overlap, ALPN_H3, kind))
        bucket = h3_29_before if day < timeline.H3_29_RETIREMENT else h3_29_after
        bucket.append(_alpn_day_share(snapshot, overlap, ALPN_H3_29, kind))
        h3_27.append(_alpn_day_share(snapshot, overlap, ALPN_H3_27, kind))
        http11.append(_alpn_day_share(snapshot, overlap, ALPN_HTTP11, kind))
        none.append(_alpn_day_share(snapshot, overlap, None, kind))
    return AlpnStats(
        h2_pct=mean(h2),
        h3_pct=mean(h3),
        h3_29_before_pct=mean(h3_29_before),
        h3_29_after_pct=mean(h3_29_after),
        h3_27_pct=mean(h3_27),
        http11_pct=mean(http11),
        no_alpn_pct=mean(none),
    )


def noncf_alpn_shares(dataset: Dataset) -> Dict[str, float]:
    """§4.3.4: h2/h3/no-alpn shares among domains on non-Cloudflare NS."""
    h2_days, h3_days, none_days = [], [], []
    for day in dataset.days_between(timeline.NS_IP_WHOIS_SCAN_START):
        snapshot = dataset.snapshot(day)
        selected = [
            obs for obs in snapshot.apex.values()
            if classify_ns_set(obs.ns_names) == NS_NONE_CLOUDFLARE
        ]
        if not selected:
            continue
        total = len(selected)
        h2_days.append(100.0 * sum(
            1 for o in selected if any(ALPN_H2 in (r.alpn or ()) for r in o.https_records)
        ) / total)
        h3_days.append(100.0 * sum(
            1 for o in selected if any(ALPN_H3 in (r.alpn or ()) for r in o.https_records)
        ) / total)
        none_days.append(100.0 * sum(
            1 for o in selected if all(not r.alpn for r in o.https_records)
        ) / total)
    return {"h2": mean(h2_days), "h3": mean(h3_days), "no_alpn": mean(none_days)}
