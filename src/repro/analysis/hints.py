"""§4.3.5 — IP hints: utilization, consistency, durations, connectivity
(Figures 11–12 and the connectivity experiment)."""

from __future__ import annotations

import datetime
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simnet import timeline
from ..scanner.dataset import Dataset
from .common import mean


@dataclass
class HintSeriesPoint:
    date: datetime.date
    ipv4_usage_pct: float  # share of HTTPS domains publishing ipv4hint
    ipv6_usage_pct: float
    ipv4_match_pct: float  # among hint publishers, hints == A records
    ipv6_match_pct: float


def fig11_hint_series(dataset: Dataset, kind: str = "apex") -> List[HintSeriesPoint]:
    """Figure 11: hint utilization and A/AAAA-consistency over time,
    restricted to overlapping domains like the paper."""
    overlap = dataset.overlapping_domains(1) | dataset.overlapping_domains(2)
    points = []
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        observations = snapshot.apex if kind == "apex" else snapshot.www
        selected = [
            obs for name, obs in observations.items()
            if (name[4:] if kind == "www" else name) in overlap
        ]
        if not selected:
            continue
        total = len(selected)
        v4_users = [obs for obs in selected if obs.all_ipv4_hints()]
        v6_users = [obs for obs in selected if obs.all_ipv6_hints()]
        v4_match = [
            obs for obs in v4_users
            if obs.a_addrs and set(obs.all_ipv4_hints()) == set(obs.a_addrs)
        ]
        v6_match = [
            obs for obs in v6_users
            if obs.aaaa_addrs and set(obs.all_ipv6_hints()) == set(obs.aaaa_addrs)
        ]
        points.append(
            HintSeriesPoint(
                date=day,
                ipv4_usage_pct=100.0 * len(v4_users) / total,
                ipv6_usage_pct=100.0 * len(v6_users) / total,
                ipv4_match_pct=100.0 * len(v4_match) / max(1, len(v4_users)),
                ipv6_match_pct=100.0 * len(v6_match) / max(1, len(v6_users)),
            )
        )
    return points


@dataclass
class MismatchDurations:
    """Figure 12 + §4.3.5 headline numbers."""

    domains_with_mismatch: int
    mean_duration_days: float
    durations: List[int]  # one entry per mismatch episode, in days
    persistent_domains: List[str]  # mismatched on every scan day


def fig12_mismatch_durations(
    dataset: Dataset, kind: str = "apex", start: Optional[datetime.date] = None
) -> MismatchDurations:
    """Mismatch episode durations from *start* (default: the June 19
    sync-fix date, as in the paper's Figure 12)."""
    start = start or timeline.HINT_SYNC_FIX
    days = dataset.days_between(start)
    step = max(1, dataset.day_step)
    mismatch_flags: Dict[str, List[bool]] = defaultdict(lambda: [False] * len(days))
    for i, day in enumerate(days):
        snapshot = dataset.snapshot(day)
        observations = snapshot.apex if kind == "apex" else snapshot.www
        for name, obs in observations.items():
            hints = obs.all_ipv4_hints()
            if hints and obs.a_addrs and set(hints) != set(obs.a_addrs):
                mismatch_flags[name][i] = True
    durations: List[int] = []
    persistent: List[str] = []
    for name, flags in mismatch_flags.items():
        if all(flags):
            persistent.append(name)
        run = 0
        for flag in flags + [False]:
            if flag:
                run += 1
            elif run:
                durations.append(run * step)
                run = 0
    return MismatchDurations(
        domains_with_mismatch=len(mismatch_flags),
        mean_duration_days=mean(durations),
        durations=sorted(durations),
        persistent_domains=sorted(persistent),
    )


@dataclass
class ConnectivityReport:
    """§4.3.5 connectivity experiment (Jan 24 – Mar 31, 2024)."""

    occurrences: int  # domain-days with mismatched hints
    distinct_domains: int
    domains_with_unreachable: int
    hint_only_reachable: int
    a_only_reachable: int
    neither_reachable: int


def connectivity_report(dataset: Dataset) -> ConnectivityReport:
    probes = [
        probe
        for day in dataset.days_between(timeline.CONNECTIVITY_SCAN_START)
        for probe in dataset.snapshot(day).connectivity
    ]
    by_domain: Dict[str, List] = defaultdict(list)
    for probe in probes:
        by_domain[probe.name].append(probe)
    unreachable = hint_only = a_only = neither = 0
    for name, domain_probes in by_domain.items():
        if not any(p.any_unreachable for p in domain_probes):
            continue
        unreachable += 1
        last = domain_probes[-1]
        if last.hint_reachable and not last.a_reachable:
            hint_only += 1
        elif last.a_reachable and not last.hint_reachable:
            a_only += 1
        elif not last.a_reachable and not last.hint_reachable:
            neither += 1
    return ConnectivityReport(
        occurrences=len(probes),
        distinct_domains=len(by_domain),
        domains_with_unreachable=unreachable,
        hint_only_reachable=hint_only,
        a_only_reachable=a_only,
        neither_reachable=neither,
    )
