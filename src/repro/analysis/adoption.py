"""§4.2.1 — HTTPS RR adoption rates (Figure 2).

Produces the four series of Figure 2: apex and www adoption percentages
for (a) the dynamic daily Tranco list and (b) the overlapping domains
that appear on every scan day of a phase.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..simnet import timeline
from ..scanner.dataset import Dataset


@dataclass
class AdoptionSeries:
    """One line of Figure 2: (date, percentage) points."""

    label: str
    points: List[Tuple[datetime.date, float]]

    def first(self) -> float:
        return self.points[0][1] if self.points else 0.0

    def last(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def trend(self) -> float:
        """Last minus first percentage (sign gives the direction)."""
        return self.last() - self.first()


def dynamic_adoption(dataset: Dataset) -> Dict[str, AdoptionSeries]:
    """Figure 2a: dynamic Tranco top-list adoption, apex and www."""
    apex_points, www_points = [], []
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        denominator = max(1, snapshot.list_size)
        apex_points.append((day, 100.0 * snapshot.apex_https_count / denominator))
        www_points.append((day, 100.0 * snapshot.www_https_count / denominator))
    return {
        "apex": AdoptionSeries("dynamic apex", apex_points),
        "www": AdoptionSeries("dynamic www", www_points),
    }


def overlapping_adoption(dataset: Dataset) -> Dict[str, AdoptionSeries]:
    """Figure 2b: adoption among phase-overlapping domains."""
    apex_points, www_points = [], []
    overlap = {1: dataset.overlapping_domains(1), 2: dataset.overlapping_domains(2)}
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        names = overlap[timeline.phase_of(day)]
        if not names:
            continue
        denominator = len(names)
        apex_count = sum(1 for name in snapshot.apex if name in names)
        # www observations are stored under "www.<apex>"; membership is by
        # the apex name.
        www_count = sum(
            1 for name in snapshot.www if name.startswith("www.") and name[4:] in names
        )
        apex_points.append((day, 100.0 * apex_count / denominator))
        www_points.append((day, 100.0 * www_count / denominator))
    return {
        "apex": AdoptionSeries("overlapping apex", apex_points),
        "www": AdoptionSeries("overlapping www", www_points),
    }


@dataclass
class AdoptionSummary:
    """The headline numbers the paper reports from Figure 2."""

    dynamic_apex_start: float
    dynamic_apex_end: float
    overlapping_apex_mean_phase2: float
    dynamic_rising: bool
    overlapping_stable_or_declining: bool
    in_paper_band: bool  # all rates within the 20-27% band


def summarize(dataset: Dataset) -> AdoptionSummary:
    dynamic = dynamic_adoption(dataset)["apex"]
    overlapping = overlapping_adoption(dataset)["apex"]
    phase2 = [v for d, v in overlapping.points if timeline.phase_of(d) == 2]
    phase2_mean = sum(phase2) / len(phase2) if phase2 else 0.0
    all_values = [v for _d, v in dynamic.points] + [v for _d, v in overlapping.points]
    return AdoptionSummary(
        dynamic_apex_start=dynamic.first(),
        dynamic_apex_end=dynamic.last(),
        overlapping_apex_mean_phase2=phase2_mean,
        dynamic_rising=dynamic.trend() > 0,
        overlapping_stable_or_declining=overlapping.trend() <= 1.0,
        in_paper_band=all(15.0 <= v <= 32.0 for v in all_values),
    )
