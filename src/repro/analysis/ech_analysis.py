"""§4.4 — ECH deployment: adoption series, the October 5 disable event,
and key-rotation cadence (Figures 4, 13, 14)."""

from __future__ import annotations

import datetime
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simnet import timeline
from ..simnet.cohorts import ECH_TEST_DOMAINS
from ..scanner.dataset import Dataset
from .common import mean


def fig13_ech_share(dataset: Dataset, kind: str = "apex") -> List[Tuple[datetime.date, float]]:
    """Figure 13: % of overlapping HTTPS-publishing domains with the ech
    SvcParam, excluding Cloudflare's test domains (footnote 10)."""
    overlap = dataset.overlapping_domains(1) | dataset.overlapping_domains(2)
    points = []
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        observations = snapshot.apex if kind == "apex" else snapshot.www
        selected = {
            name: obs for name, obs in observations.items()
            if (name[4:] if kind == "www" else name) in overlap
        }
        if not selected:
            continue
        with_ech = sum(
            1 for name, obs in selected.items()
            if obs.has_ech and (name[4:] if kind == "www" else name) not in ECH_TEST_DOMAINS
        )
        points.append((day, 100.0 * with_ech / len(selected)))
    return points


@dataclass
class EchDisableEvent:
    """The October 5 cliff."""

    last_day_with_ech: Optional[datetime.date]
    first_day_without: Optional[datetime.date]
    pre_disable_mean_pct: float
    post_disable_max_pct: float

    @property
    def matches_paper(self) -> bool:
        """Cliff lands on the paper's date and the post level is ~0."""
        if self.first_day_without is None:
            return False
        return (
            self.first_day_without >= timeline.ECH_DISABLE
            and self.post_disable_max_pct < 1.0
            and self.pre_disable_mean_pct > 40.0
        )


def detect_disable_event(dataset: Dataset) -> EchDisableEvent:
    points = fig13_ech_share(dataset)
    last_with = first_without = None
    pre, post = [], []
    for day, pct in points:
        if day < timeline.ECH_DISABLE:
            pre.append(pct)
        else:
            post.append(pct)
        if pct > 1.0:
            last_with = day
        elif first_without is None and pct <= 1.0:
            first_without = day
    return EchDisableEvent(
        last_day_with_ech=last_with,
        first_day_without=first_without,
        pre_disable_mean_pct=mean(pre),
        post_disable_max_pct=max(post) if post else 0.0,
    )


@dataclass
class RotationStats:
    """Figure 4 + §4.4.2 rotation facts."""

    distinct_configs: int
    public_names: Tuple[str, ...]
    sightings_histogram: Dict[int, int]  # consecutive-hour count -> #configs
    per_domain_mean_hours: Dict[str, float]
    overall_mean_hours: float


def fig4_rotation(dataset: Dataset) -> RotationStats:
    """Key-rotation cadence from the hourly ECH scans.

    A config's 'duration' is the number of consecutive hourly scans in
    which a domain served it; the paper reports per-domain averages of
    1.1–1.4 h with an overall mean of 1.26 h.
    """
    per_domain_runs: Dict[str, List[int]] = defaultdict(list)
    configs_global: Dict[bytes, set] = defaultdict(set)
    public_names = set()
    by_domain: Dict[str, List] = defaultdict(list)
    for obs in dataset.ech_observations:
        by_domain[obs.name].append(obs)
        configs_global[obs.config_digest].add(obs.hour)
        if obs.public_name:
            public_names.add(obs.public_name)
    for name, observations in by_domain.items():
        observations.sort(key=lambda o: o.hour)
        run = 0
        previous_digest = None
        previous_hour = None
        for obs in observations:
            contiguous = previous_hour is None or obs.hour == previous_hour + 1
            if obs.config_digest == previous_digest and contiguous:
                run += 1
            else:
                if run:
                    per_domain_runs[name].append(run)
                run = 1
            previous_digest = obs.config_digest
            previous_hour = obs.hour
        if run:
            per_domain_runs[name].append(run)
    histogram: Dict[int, int] = defaultdict(int)
    for digest, hours in configs_global.items():
        ordered = sorted(hours)
        run = 0
        previous = None
        for hour in ordered:
            if previous is not None and hour == previous + 1:
                run += 1
            else:
                if run:
                    histogram[run] += 1
                run = 1
            previous = hour
        if run:
            histogram[run] += 1
    per_domain_mean = {
        name: mean(runs) for name, runs in per_domain_runs.items() if runs
    }
    return RotationStats(
        distinct_configs=len(configs_global),
        public_names=tuple(sorted(public_names)),
        sightings_histogram=dict(histogram),
        per_domain_mean_hours=per_domain_mean,
        overall_mean_hours=mean(per_domain_mean.values()),
    )


def fig14_signed_ech_share(dataset: Dataset) -> List[Tuple[datetime.date, float, float]]:
    """Figure 14: among overlapping domains with HTTPS+ECH, the share
    whose records are signed, and the share also validating (AD)."""
    overlap = dataset.overlapping_domains(1) | dataset.overlapping_domains(2)
    points = []
    for day in dataset.days():
        snapshot = dataset.snapshot(day)
        ech_domains = [
            obs for name, obs in snapshot.apex.items()
            if name in overlap and obs.has_ech and name not in ECH_TEST_DOMAINS
        ]
        if not ech_domains:
            points.append((day, 0.0, 0.0))
            continue
        signed = sum(1 for obs in ech_domains if obs.rrsig_present)
        validated = sum(1 for obs in ech_domains if obs.rrsig_present and obs.ad_flag)
        total = len(ech_domains)
        points.append((day, 100.0 * signed / total, 100.0 * validated / total))
    return points


def noncf_ech_targets(dataset: Dataset) -> Dict[str, int]:
    """§4.4.1: all ECH configs point at the same client-facing server
    regardless of DNS provider — count sightings per public_name."""
    counts: Dict[str, int] = defaultdict(int)
    for day in dataset.days():
        for obs in dataset.snapshot(day).apex.values():
            for record in obs.https_records:
                if record.has_ech and record.ech_public_name:
                    counts[record.ech_public_name] += 1
    return dict(counts)


@dataclass
class FailoverSplit:
    """Table 7 context: stale-ECH sightings (the config mismatch that
    forces a browser through the retry/failover ladder), split by cause."""

    injected_domains: int  # stale config explained by an injected key desync
    organic_domains: int  # stale on its own (rotation races, residue)
    stale_sightings: int  # total (name, day) stale observations

    @property
    def affected_domains(self) -> int:
        return self.injected_domains + self.organic_domains


def table7_failover_split(dataset: Dataset, scenario, config) -> FailoverSplit:
    """Split the dataset's stale-ECH sightings — the condition behind
    Table 7's "(3) Mismatched key" failover row — into those an injected
    ``ech_key_desync`` fault explains and those occurring organically.
    With no scenario everything is organic."""
    from .attribution import ANOMALY_ECH_STALE, attribute

    report = attribute(dataset, scenario, config)
    injected = {
        anomaly.name
        for entry in report.entries
        for anomaly in entry.anomalies
        if anomaly.kind == ANOMALY_ECH_STALE
    }
    stale = [a for a in report.anomalies if a.kind == ANOMALY_ECH_STALE]
    organic = {a.name for a in stale} - injected
    return FailoverSplit(
        injected_domains=len(injected),
        organic_domains=len(organic),
        stale_sightings=len(stale),
    )
