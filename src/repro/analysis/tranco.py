"""Appendix C — Tranco list composition (Figure 8)."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..simnet import timeline
from ..scanner.dataset import Dataset
from .common import mean


@dataclass
class RankDistributions:
    """Figure 8: mean phase-1 rank per domain, split by overlap status."""

    overlapping_ranks: List[float]
    non_overlapping_ranks: List[float]

    def overlapping_median(self) -> float:
        return _median(self.overlapping_ranks)

    def non_overlapping_median(self) -> float:
        return _median(self.non_overlapping_ranks)


def _median(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def fig8_rank_distributions(dataset: Dataset, phase: int = 1) -> RankDistributions:
    overlap = dataset.overlapping_domains(phase)
    rank_sum: Dict[str, List[int]] = defaultdict(list)
    for day in dataset.days():
        if timeline.phase_of(day) != phase:
            continue
        snapshot = dataset.snapshot(day)
        for i, name in enumerate(snapshot.ranked_names):
            rank_sum[name].append(i + 1)
    overlapping, non_overlapping = [], []
    for name, ranks in rank_sum.items():
        avg = mean(ranks)
        (overlapping if name in overlap else non_overlapping).append(avg)
    return RankDistributions(overlapping, non_overlapping)
