"""Developer tooling for the reproduction itself.

The paper's §7 thesis — misconfigurations in the measured ecosystem are
mechanically detectable, so they should be linted away before they ship
— applies just as well to this codebase.  ``repro.devtools`` hosts the
tooling that enforces the reproduction's own invariants (determinism,
cache identity, pickle/hash stability); see :mod:`repro.devtools.codelint`.
"""
