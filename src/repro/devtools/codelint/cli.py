"""The codelint command line.

Run as ``python -m repro.devtools.codelint [paths...]`` or
``repro-scan lint-code [paths...]``.  Exit codes CI can gate on:

* ``0`` — no findings beyond the committed baseline
* ``1`` — new findings (printed, and in the JSON report)
* ``2`` — usage error / unreadable baseline
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import baseline as baseline_mod
from .engine import all_rules, lint_paths
from .findings import Finding, render_json, render_text, severity_counts


def _default_paths() -> List[str]:
    return ["src"] if os.path.isdir("src") else ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codelint",
        description="AST-based invariant linter for determinism, cache "
                    "identity, and pickle/hash stability.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: src/ if "
                             "present, else .)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format on stdout (default text)")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="additionally write the JSON report to FILE "
                             "(CI artifact)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: {baseline_mod.DEFAULT_BASELINE} "
                             "when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file (every finding is new)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _rule_catalogue() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code} [{rule.severity.value}] {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_rule_catalogue())
        return 0
    if args.no_baseline and (args.baseline or args.write_baseline):
        parser.error("--no-baseline conflicts with --baseline/--write-baseline")

    paths = args.paths or _default_paths()
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    findings = lint_paths(paths)

    baseline_path = args.baseline or baseline_mod.DEFAULT_BASELINE
    if args.write_baseline:
        counts = baseline_mod.write_baseline(baseline_path, findings)
        print(f"codelint: wrote {sum(counts.values())} finding(s) "
              f"({len(counts)} identities) to {baseline_path}")
        return 0

    grandfathered: List[Finding] = []
    if not args.no_baseline and (args.baseline or os.path.exists(baseline_path)):
        try:
            tolerated = baseline_mod.load_baseline(baseline_path)
        except baseline_mod.BaselineError as exc:
            print(f"codelint: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = baseline_mod.partition(findings, tolerated)

    report_extra = {
        "baseline": {
            "path": baseline_path if grandfathered else None,
            "grandfathered": len(grandfathered),
        },
        "new": len(findings),
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(render_json(findings, **report_extra))
            handle.write("\n")
    if args.format == "json":
        print(render_json(findings, **report_extra))
    else:
        if findings:
            print(render_text(findings))
        counts = severity_counts(findings)
        summary = ", ".join(
            f"{count} {severity}" for severity, count in counts.items() if count
        ) or "clean"
        suffix = f" ({len(grandfathered)} baselined)" if grandfathered else ""
        print(f"codelint: {summary}{suffix}")
    return 1 if findings else 0
