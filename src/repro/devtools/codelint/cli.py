"""The codelint command line.

Run as ``python -m repro.devtools.codelint [paths...]`` or
``repro-scan lint-code [paths...]``.  Exit codes CI can gate on:

* ``0`` — no findings beyond the committed baseline
* ``1`` — new findings (printed, and in the JSON report)
* ``2`` — usage error / unreadable baseline / git failure

One invocation runs both scopes: the per-file rules walk every path,
then the project-scope rules (DET02/LAYER01/RACE01/DEAD01) run once
over the full parsed tree.  ``--changed[=REF]`` narrows the *report* to
files changed versus a git ref while the project graph still covers the
whole tree, so cross-module findings stay sound; ``--stats`` surfaces
per-rule wall time so CI artifacts can catch rule-cost regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Set

from . import baseline as baseline_mod
from .engine import all_rules, run_lint
from .findings import Finding, render_json, render_text, severity_counts


def _default_paths() -> List[str]:
    return ["src"] if os.path.isdir("src") else ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codelint",
        description="AST-based invariant linter for determinism, cache "
                    "identity, and pickle/hash stability.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: src/ if "
                             "present, else .)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format on stdout (default text)")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="additionally write the JSON report to FILE "
                             "(CI artifact)")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="REF",
                        help="report only findings in files changed vs the "
                             "given git ref (default HEAD when the flag is "
                             "bare); project-scope rules still analyse the "
                             "full tree")
    parser.add_argument("--stats", action="store_true",
                        help="append per-rule wall-time and finding counts "
                             "to the report")
    parser.add_argument("--stats-out", metavar="FILE", default=None,
                        help="write the per-rule stats as JSON to FILE "
                             "(CI artifact; implies collecting stats)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: {baseline_mod.DEFAULT_BASELINE} "
                             "when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file (every finding is new)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _rule_catalogue() -> str:
    lines = []
    for rule in all_rules():
        scope = "project" if rule.project_scope else "file"
        lines.append(f"{rule.code} [{rule.severity.value}, {scope}] {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _git_lines(args: List[str]) -> List[str]:
    completed = subprocess.run(
        ["git"] + args, capture_output=True, text=True, check=True,
    )
    return [line.strip() for line in completed.stdout.splitlines() if line.strip()]


def _changed_paths(ref: str) -> Set[str]:
    """Real paths of files changed vs *ref*, plus untracked files (a
    brand-new module should lint before its first commit)."""
    top = _git_lines(["rev-parse", "--show-toplevel"])[0]
    names = _git_lines(["diff", "--name-only", ref, "--"])
    names += _git_lines(["ls-files", "--others", "--exclude-standard"])
    return {os.path.realpath(os.path.join(top, name)) for name in names}


def _render_stats_text(stats_payload) -> str:
    lines = [f"codelint stats: {stats_payload['files']} file(s)"]
    rules = stats_payload["rules"]
    width = max((len(code) for code in rules), default=4)
    for code in sorted(rules):
        entry = rules[code]
        lines.append(
            f"  {code:<{width}}  {entry['seconds']*1000:8.1f} ms  "
            f"{entry['findings']} finding(s)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_rule_catalogue())
        return 0
    if args.no_baseline and (args.baseline or args.write_baseline):
        parser.error("--no-baseline conflicts with --baseline/--write-baseline")

    paths = args.paths or _default_paths()
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    run = run_lint(paths)
    findings = run.findings

    if args.changed is not None:
        try:
            changed = _changed_paths(args.changed)
        except (OSError, subprocess.CalledProcessError, IndexError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = (exc.stderr or "").strip() or str(exc)
            else:
                detail = str(exc)
            print(f"codelint: --changed failed: {detail}", file=sys.stderr)
            return 2
        findings = [
            finding for finding in findings
            if os.path.realpath(finding.where) in changed
        ]

    baseline_path = args.baseline or baseline_mod.DEFAULT_BASELINE
    if args.write_baseline:
        counts = baseline_mod.write_baseline(baseline_path, findings)
        print(f"codelint: wrote {sum(counts.values())} finding(s) "
              f"({len(counts)} identities) to {baseline_path}")
        return 0

    grandfathered: List[Finding] = []
    if not args.no_baseline and (args.baseline or os.path.exists(baseline_path)):
        try:
            tolerated = baseline_mod.load_baseline(baseline_path)
        except baseline_mod.BaselineError as exc:
            print(f"codelint: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = baseline_mod.partition(findings, tolerated)

    stats_payload = run.stats_json()
    report_extra = {
        "baseline": {
            "path": baseline_path if grandfathered else None,
            "grandfathered": len(grandfathered),
        },
        "new": len(findings),
    }
    if args.changed is not None:
        report_extra["changed_vs"] = args.changed
    if args.stats or args.stats_out:
        report_extra["stats"] = stats_payload
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(stats_payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(render_json(findings, **report_extra))
            handle.write("\n")
    if args.format == "json":
        print(render_json(findings, **report_extra))
    else:
        if findings:
            print(render_text(findings))
        counts = severity_counts(findings)
        summary = ", ".join(
            f"{count} {severity}" for severity, count in counts.items() if count
        ) or "clean"
        suffix = f" ({len(grandfathered)} baselined)" if grandfathered else ""
        print(f"codelint: {summary}{suffix}")
        if args.stats:
            print(_render_stats_text(stats_payload))
    return 1 if findings else 0
