"""The project-specific invariant rules.

Every rule here guards an invariant this reproduction has already been
burned by (see README.md in this directory for the incident history):

* ``DET01`` — determinism: no ambient randomness / wall-clock reads in
  the world-model subsystems; stochastic behaviour is a pure function of
  the world seed via ``simnet/determinism.py``.
* ``HASH01``/``HASH02`` — hash/pickle stability: the interpreter's
  str-hash seed must never reach pickled state or persisted identity
  (the PR 4 ``Name.__hash__`` cache bug).
* ``ORD01``/``ORD02`` — ordering: unordered iteration must not leak
  into rows, exports, or cache-tag material.
* ``TAG01`` — cache-tag completeness: every ``StudySpec`` field is
  accounted for by the canonical cache tag or explicitly exempted.
* ``GC01`` — GC pauses only through ``repro/gcutils.py``.
* ``FSTR01`` — no placeholder-less f-strings (the zone linter's own
  ``ipv6hint-mismatch`` message bug).
* ``INV01`` — paired invalidation: any scope that clears a
  ``_zone_cache`` must also invalidate the layered answer cache — or
  carry a justified ``# codelint: disable=INV01`` proving the cache's
  (uid, stamp) keys and per-entry guards already cover everything the
  flush changes (the ``World.set_time`` day flush is the one such
  suppression).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import GCUTILS_MODULE, Rule, SourceFile, register
from .findings import Finding, Severity

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _import_map(tree: ast.AST) -> Dict[str, str]:
    """Local name → dotted origin for every import in the file."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach stdlib sources
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a","b","c"]`` for pure Name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


def _resolve_call(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """The fully-qualified dotted target of a call, import aliases
    substituted (``from datetime import date; date.today()`` →
    ``datetime.date.today``)."""
    chain = _dotted_chain(node.func)
    if chain is None:
        return None
    root = imports.get(chain[0])
    if root is not None:
        chain = root.split(".") + chain[1:]
    return ".".join(chain)


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _walk_skipping_scopes(nodes: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Yield every node under *nodes* without descending into nested
    function/class bodies (they get their own scope analysis; the scope
    node itself is still yielded so callers can recurse)."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# DET01 — determinism
# ---------------------------------------------------------------------------

_BANNED_MODULES = ("random", "secrets", "uuid")
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "os.urandom": "OS entropy",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
}


@register
class NondeterministicSourceRule(Rule):
    code = "DET01"
    name = "nondeterministic-source"
    severity = Severity.ERROR
    rationale = (
        "simnet/, resolver/, scanner/, zones/, and dnscore/ must be pure "
        "functions of (world seed, sim clock): ambient randomness or "
        "wall-clock reads fork the dataset between runs. Route "
        "stochastic behaviour through simnet/determinism.py and time "
        "through the SimClock."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if not src.determinism_restricted:
            return
        imports = _import_map(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_call(node, imports)
            if dotted is None:
                continue
            root = dotted.split(".")[0]
            if root in _BANNED_MODULES:
                yield self.finding(
                    src, node,
                    f"{dotted}() is seeded ambient randomness; derive it "
                    "from the world seed via simnet/determinism.py",
                )
            elif dotted in _BANNED_CALLS:
                yield self.finding(
                    src, node,
                    f"{dotted}() is a {_BANNED_CALLS[dotted]}; simulation "
                    "time must come from the SimClock / timeline",
                )


# ---------------------------------------------------------------------------
# HASH01 — cached __hash__ state crossing a pickle boundary
# ---------------------------------------------------------------------------


def _self_attr_stores(func: ast.FunctionDef) -> Set[str]:
    """Attribute names assigned on ``self`` anywhere in *func*
    (including ``object.__setattr__(self, "name", ...)``)."""
    stores: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    stores.add(target.attr)
        elif isinstance(node, ast.Call):
            chain = _dotted_chain(node.func)
            if (chain and chain[-1] == "__setattr__" and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)):
                stores.add(node.args[1].value)
    return stores


def _references_attr(func: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == attr:
            return True
        if isinstance(node, ast.Constant) and node.value == attr:
            return True
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            return True
    return False


@register
class PickledCachedHashRule(Rule):
    code = "HASH01"
    name = "pickled-cached-hash"
    severity = Severity.ERROR
    rationale = (
        "a class that caches hash()-derived state on self inside "
        "__hash__ bakes the interpreter's str-hash seed into the "
        "instance; if that attribute crosses a pickle boundary (world "
        "snapshots, checkpoints), every dict lookup in the loading "
        "interpreter silently misses — the PR 4 Name bug."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            hash_method = methods.get("__hash__")
            if hash_method is None:
                continue
            cached = sorted(_self_attr_stores(hash_method))
            if not cached:
                continue
            pickle_hooks = [
                name for name in ("__getstate__", "__reduce__", "__reduce_ex__")
                if name in methods
            ]
            if not pickle_hooks:
                yield self.finding(
                    src, hash_method,
                    f"class {node.name} caches hash state in "
                    f"self.{'/self.'.join(cached)} inside __hash__ but has no "
                    "__getstate__/__reduce__; default pickling ships the "
                    "interpreter-specific hash (add a __getstate__ that "
                    "drops the cache)",
                )
                continue
            hook = methods[pickle_hooks[0]]
            leaking = [attr for attr in cached if _references_attr(hook, attr)]
            if leaking:
                yield self.finding(
                    src, hook,
                    f"class {node.name} caches hash state in "
                    f"self.{'/self.'.join(leaking)} and its "
                    f"{pickle_hooks[0]} still ships it across the pickle "
                    "boundary",
                )


# ---------------------------------------------------------------------------
# HASH02 — builtin hash() feeding persisted identity
# ---------------------------------------------------------------------------


@register
class UnstableBuiltinHashRule(Rule):
    code = "HASH02"
    name = "unstable-builtin-hash"
    severity = Severity.WARNING
    rationale = (
        "hash() of str/bytes changes with PYTHONHASHSEED, so any value "
        "derived from it (cache tags, shard assignment, file names) "
        "silently differs between interpreters — the PR 1 unstable "
        "cache-tag bug class. Outside __hash__, use "
        "simnet/determinism.digest for stable identity."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._scan(src, src.tree, in_hash=False)

    def _scan(self, src, node, in_hash) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_in_hash = in_hash
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_in_hash = child.name == "__hash__"
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "hash"
                    and not in_hash):
                yield self.finding(
                    src, child,
                    "builtin hash() outside __hash__ is PYTHONHASHSEED-"
                    "dependent; use simnet/determinism.digest (or hashlib) "
                    "for any value that is persisted or compared across "
                    "processes",
                )
            yield from self._scan(src, child, child_in_hash)


# ---------------------------------------------------------------------------
# ORD01 / ORD02 — ordering leaks
# ---------------------------------------------------------------------------

_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return (_is_set_expr(node.left, set_vars)
                and _is_set_expr(node.right, set_vars))
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS):
            return _is_set_expr(node.func.value, set_vars)
    return False


def _assigned_names(target: ast.AST) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _scope_set_vars(body: Sequence[ast.AST]) -> Set[str]:
    """Names that are only ever bound to set values in this scope."""
    set_assigned: Set[str] = set()
    other_assigned: Set[str] = set()
    # Two passes so one level of aliasing (b = a) propagates.
    for _ in range(2):
        set_assigned, previous = set(), set_assigned
        other_assigned = set()
        for node in _walk_skipping_scopes(body):
            if isinstance(node, ast.Assign):
                pairs = [(t, node.value) for t in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(node.target, node.value)]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                pairs = [(node.target, None)]
            elif isinstance(node, ast.withitem) and node.optional_vars:
                pairs = [(node.optional_vars, None)]
            elif isinstance(node, ast.comprehension):
                pairs = [(node.target, None)]
            else:
                continue
            for target, value in pairs:
                names = set(_assigned_names(target))
                if value is not None and isinstance(target, ast.Name) \
                        and _is_set_expr(value, previous):
                    set_assigned |= names
                else:
                    other_assigned |= names
    return set_assigned - other_assigned


@register
class UnorderedIterationRule(Rule):
    code = "ORD01"
    name = "unordered-set-iteration"
    severity = Severity.ERROR
    rationale = (
        "iterating a set is PYTHONHASHSEED-ordered for str/bytes "
        "elements, so rows, exports, or cache-tag material built from "
        "the iteration differ between runs. Wrap the iterable in "
        "sorted(...) — or suppress where the fold is provably "
        "commutative."
    )

    #: reducers whose result is independent of iteration order — a set
    #: flowing straight into one of these cannot leak ordering.
    _COMMUTATIVE = (
        "all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum",
    )
    _COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._check_scope(src, [src.tree])

    def _check_scope(self, src: SourceFile, body: Sequence[ast.AST]) -> Iterator[Finding]:
        roots = []
        for node in body:
            roots.extend(ast.iter_child_nodes(node))
        set_vars = _scope_set_vars(roots)

        # Comprehensions consumed whole by an order-insensitive reducer
        # (all(... for x in s), sum/min/max/sorted/...) are exempt.
        neutral: Set[int] = set()
        for node in _walk_skipping_scopes(roots):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in self._COMMUTATIVE and len(node.args) == 1
                    and isinstance(node.args[0], self._COMPREHENSIONS)):
                neutral.add(id(node.args[0]))

        for node in _walk_skipping_scopes(roots):
            iterables: List[Tuple[ast.AST, ast.AST]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append((node.iter, node))
            elif isinstance(node, self._COMPREHENSIONS) and id(node) not in neutral:
                for generator in node.generators:
                    iterables.append((generator.iter, generator.iter))
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple") and len(node.args) == 1):
                iterables.append((node.args[0], node))
            for iterable, anchor in iterables:
                if _is_set_expr(iterable, set_vars):
                    yield self.finding(
                        src, anchor,
                        "iteration over an unordered set; wrap in "
                        "sorted(...) so downstream rows/exports/tags are "
                        "order-stable",
                    )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from self._check_scope(src, [node])


@register
class DictKeysIterationRule(Rule):
    code = "ORD02"
    name = "dict-keys-iteration"
    severity = Severity.WARNING
    rationale = (
        "for-loops over X.keys() hide whether canonical order matters: "
        "insertion order is deterministic only if every writer inserts "
        "in the same order across processes/shards. Iterate the mapping "
        "directly when order is irrelevant, or sorted(X) when the "
        "output is a row/export/tag."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            iterables: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, ast.comprehension):
                iterables.append(node.iter)
            for iterable in iterables:
                if (isinstance(iterable, ast.Call)
                        and isinstance(iterable.func, ast.Attribute)
                        and iterable.func.attr == "keys"
                        and not iterable.args):
                    yield self.finding(
                        src, iterable,
                        "iteration over .keys(); iterate the mapping "
                        "directly (order-irrelevant) or sorted(...) "
                        "(order-bearing output)",
                    )


# ---------------------------------------------------------------------------
# TAG01 — StudySpec cache-tag completeness
# ---------------------------------------------------------------------------


def _module_str_collection(tree: ast.AST, name: str) -> Optional[Set[str]]:
    """The string members of a module-level tuple/list/set/dict-keys
    constant assignment, or None when absent."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
            continue
        value = node.value
        elements: Sequence[ast.AST]
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            elements = value.elts
        elif isinstance(value, ast.Dict):
            elements = [k for k in value.keys if k is not None]
        else:
            continue
        return {
            el.value for el in elements
            if isinstance(el, ast.Constant) and isinstance(el.value, str)
        }
    return None


@register
class CacheTagCompletenessRule(Rule):
    code = "TAG01"
    name = "cache-tag-field-unaccounted"
    severity = Severity.ERROR
    rationale = (
        "every StudySpec field defines dataset identity; a field that "
        "never reaches spec.cache_tag() lets two different studies "
        "silently share one cache entry (the PR 5 typo'd-kwarg fork, "
        "generalised). New fields must join _SCHEDULE_FIELDS, be read "
        "by cache_tag(), or be declared result-neutral in _TAG_EXEMPT "
        "with a reason."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        spec = next(
            (node for node in ast.walk(src.tree)
             if isinstance(node, ast.ClassDef) and node.name == "StudySpec"),
            None,
        )
        if spec is None:
            return
        schedule_fields = _module_str_collection(src.tree, "_SCHEDULE_FIELDS") or set()
        exempt = _module_str_collection(src.tree, "_TAG_EXEMPT") or set()

        methods = {
            stmt.name: stmt for stmt in spec.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        consumed: Set[str] = set()
        seen_methods: Set[str] = set()
        queue = ["cache_tag"]
        while queue:  # one transitive closure over in-class helper calls
            current = methods.get(queue.pop())
            if current is None or current.name in seen_methods:
                continue
            seen_methods.add(current.name)
            for node in ast.walk(current):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    consumed.add(node.attr)
                    if node.attr in methods:
                        queue.append(node.attr)

        for stmt in spec.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
                continue
            field = stmt.target.id
            if field.startswith("_"):
                continue
            annotation = ast.dump(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            if field in schedule_fields or field in consumed or field in exempt:
                continue
            yield self.finding(
                src, stmt,
                f"StudySpec field {field!r} never reaches cache_tag() "
                "(not in _SCHEDULE_FIELDS, not read by cache_tag, not "
                "exempted in _TAG_EXEMPT): studies differing only in "
                f"{field!r} would alias one cache entry",
            )


# ---------------------------------------------------------------------------
# GC01 — GC-pause hygiene
# ---------------------------------------------------------------------------


@register
class GcHygieneRule(Rule):
    code = "GC01"
    name = "gc-outside-gcutils"
    severity = Severity.ERROR
    rationale = (
        "gc.disable()/gc.enable() pairs in library code re-enable "
        "collection inside someone else's pause window; PR 3 extracted "
        "the refcounted paused_gc() helper into repro/gcutils.py as the "
        "only legal owner of the toggle."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if src.module == GCUTILS_MODULE:
            return
        imports = _import_map(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_call(node, imports)
            if dotted in ("gc.disable", "gc.enable"):
                yield self.finding(
                    src, node,
                    f"{dotted}() outside repro/gcutils.py; use "
                    "gcutils.paused_gc() so nested pause windows compose",
                )


# ---------------------------------------------------------------------------
# INV01 — paired cache invalidation
# ---------------------------------------------------------------------------

#: call-chain tails that count as invalidating the answer fast path.
_ANSWER_INVALIDATORS = ("invalidate", "reset", "clear", "set_enabled")


def _is_zone_cache_clear(chain: List[str]) -> bool:
    return len(chain) >= 2 and chain[-2] == "_zone_cache" and chain[-1] == "clear"


def _is_answer_cache_invalidation(chain: List[str]) -> bool:
    if chain[-1] == "set_answer_cache":
        return True
    return "answer_cache" in chain[:-1] and chain[-1] in _ANSWER_INVALIDATORS


@register
class PairedInvalidationRule(Rule):
    code = "INV01"
    name = "zone-cache-clear-without-answer-invalidate"
    severity = Severity.ERROR
    rationale = (
        "the layered answer fast path memoizes responses rendered from "
        "the zones in World._zone_cache; a scope that clears the zone "
        "cache without also invalidating the answer cache (an "
        "answer_cache .invalidate()/.reset()/.clear()/.set_enabled() "
        "call, or set_answer_cache()) risks the fast path serving "
        "answers the flushed state no longer backs — stale bytes with "
        "no error. Where the answer cache's (uid, stamp) keys and "
        "per-entry guards provably cover everything the flush changes, "
        "suppress with a justified '# codelint: disable=INV01' instead."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._check_scope(src, [src.tree])

    def _check_scope(self, src: SourceFile, body: Sequence[ast.AST]) -> Iterator[Finding]:
        roots: List[ast.AST] = []
        for node in body:
            roots.extend(ast.iter_child_nodes(node))

        clears: List[ast.AST] = []
        invalidates = False
        scopes: List[ast.AST] = []
        for node in _walk_skipping_scopes(roots):
            if isinstance(node, _SCOPE_NODES):
                scopes.append(node)
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_chain(node.func)
            if chain is None:
                continue
            if _is_zone_cache_clear(chain):
                clears.append(node)
            elif _is_answer_cache_invalidation(chain):
                invalidates = True

        if clears and not invalidates:
            for node in clears:
                yield self.finding(
                    src, node,
                    "._zone_cache.clear() without a paired answer-cache "
                    "invalidation in the same scope; add "
                    "answer_cache.invalidate()/.reset() (or "
                    "set_answer_cache) so the fast path cannot serve "
                    "answers rendered from the zones just discarded",
                )
        for scope in scopes:
            if isinstance(scope, ast.Lambda):
                continue
            yield from self._check_scope(src, [scope])


# ---------------------------------------------------------------------------
# FSTR01 — f-strings without placeholders
# ---------------------------------------------------------------------------


@register
class FstringPlaceholderRule(Rule):
    code = "FSTR01"
    name = "fstring-no-placeholders"
    severity = Severity.WARNING
    rationale = (
        "an f-string with no {placeholders} almost always means the "
        "interpolated values were dropped from the message — exactly "
        "how the zone linter's ipv6hint-mismatch finding lost the "
        "mismatching addresses. Drop the prefix or add the fields."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        format_specs = {
            id(node.format_spec)
            for node in ast.walk(src.tree)
            if isinstance(node, ast.FormattedValue) and node.format_spec is not None
        }
        for node in ast.walk(src.tree):
            if (isinstance(node, ast.JoinedStr)
                    and id(node) not in format_specs
                    and not any(isinstance(v, ast.FormattedValue) for v in node.values)):
                yield self.finding(
                    src, node,
                    "f-string has no placeholders (were the values meant "
                    "to be interpolated dropped?); use a plain string or "
                    "add the fields",
                )
