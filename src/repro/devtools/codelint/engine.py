"""The codelint engine: source model, rule registry, suppressions, walker.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`~repro.devtools.codelint.findings.Finding` objects.  The engine
owns everything rules share: turning a path into a dotted module name
(so rules can scope themselves to the determinism-restricted
subsystems), the ``# codelint: disable=CODE[,CODE...]`` inline
suppression syntax (unknown codes are themselves findings — a
suppression that silently never matched would be worse than none), and
the directory walker.
"""

from __future__ import annotations

import ast
import io
import os
import re
import time
import tokenize
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set,
    Tuple,
)

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph needs SourceFile)
    from .graph import ProjectGraph

#: Subsystems where stochastic behaviour must route through
#: ``simnet/determinism.py`` (dataset identity depends on them being
#: pure functions of the world seed).
RESTRICTED_SUBSYSTEMS = ("dnscore", "resolver", "scanner", "simnet", "zones")

#: The one module allowed to own pseudo-randomness.
DETERMINISM_MODULE = "repro.simnet.determinism"

#: The one module allowed to toggle the cyclic GC (PR 3's refcounted
#: pause helper; a bare disable/enable pair elsewhere can re-enable GC
#: inside someone else's pause window).
GCUTILS_MODULE = "repro.gcutils"

_SUPPRESS_RE = re.compile(r"codelint:\s*disable=([A-Za-z0-9_\-, ]*)")

PARSE_CODE = "PARSE"
SUPPRESS_CODE = "SUP01"


def module_guess(path: str) -> str:
    """Best-effort dotted module for *path*.

    ``src/repro/simnet/world.py`` → ``repro.simnet.world``.  Anchors on
    the last ``repro`` path component when present, else strips a
    leading ``src``; a bare file outside any package keeps just its
    stem (project-scoped rules then stay quiet).
    """
    parts = list(os.path.normpath(path).replace(os.sep, "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    elif "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        parts = parts[-1:]
    return ".".join(part for part in parts if part not in ("", ".", ".."))


@dataclass
class SourceFile:
    """One parsed source file plus everything rules need to scope and
    suppress their findings."""

    path: str
    text: str
    tree: ast.AST
    module: str
    #: physical line → frozenset of (upper-cased) codes disabled there.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def module_parts(self) -> Tuple[str, ...]:
        return tuple(self.module.split(".")) if self.module else ()

    @property
    def subsystem(self) -> Optional[str]:
        """The top-level ``repro`` subpackage (``simnet``, ``scanner``,
        ...), or None when the file is not under the package."""
        parts = self.module_parts
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return None

    @property
    def determinism_restricted(self) -> bool:
        return (
            self.subsystem in RESTRICTED_SUBSYSTEMS
            and self.module != DETERMINISM_MODULE
        )


class Rule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check`.  ``rationale`` records the invariant the rule
    protects and the historical bug motivating it (rendered by
    ``--list-rules`` and the README)."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""
    #: project-scope rules run once, after the file walk, over the graph.
    project_scope: bool = False

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        src: SourceFile,
        node: Optional[ast.AST],
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            self.code, severity or self.severity, src.path, message,
            line=line, col=col,
        )


class ProjectRule(Rule):
    """A rule that needs more than one file: it runs once per lint run,
    after every file has been parsed and file-scope rules have walked,
    with the whole-project :class:`~.graph.ProjectGraph` (import graph,
    name-resolved call graph, shared-state inventory) plus every
    per-file AST.

    Subclasses implement :meth:`check_project` instead of :meth:`check`.
    Findings anchor to real (path, line) positions, so per-line
    ``# codelint: disable=`` suppressions, the baseline identity scheme,
    renderers, and ``--list-rules`` all apply unchanged.
    """

    project_scope: bool = True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectGraph") -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        lineno: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            self.code, severity or self.severity, path, message,
            line=lineno, col=col,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.code or rule.code in _REGISTRY:
        raise ValueError(f"duplicate or empty rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def file_scope_rules(rules: Optional[Sequence[Rule]] = None) -> List[Rule]:
    pool = list(rules) if rules is not None else all_rules()
    return [rule for rule in pool if not rule.project_scope]


def project_scope_rules(rules: Optional[Sequence[Rule]] = None) -> List[Rule]:
    pool = list(rules) if rules is not None else all_rules()
    return [rule for rule in pool if rule.project_scope]


def known_codes() -> Set[str]:
    """Codes a suppression comment may legally name."""
    return set(_REGISTRY) | {PARSE_CODE}


def _extract_suppressions(text: str) -> Dict[int, Set[str]]:
    """``line → codes`` from ``# codelint: disable=...`` comments.

    Comments are found with :mod:`tokenize` so string literals that
    merely *contain* the pattern don't suppress anything; an empty code
    list is recorded (and later rejected) rather than ignored.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = {
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        }
        suppressions.setdefault(token.start[0], set()).update(codes or {""})
    return suppressions


def parse_source(
    path: str, text: Optional[str] = None, module: Optional[str] = None
) -> SourceFile:
    """Parse *path* (or the given *text*) into a :class:`SourceFile`.

    *module* overrides the dotted-module guess — fixture tests use this
    to exercise subsystem-scoped rules on files that live outside the
    package.  Raises :class:`SyntaxError` on unparseable source (the
    walker turns that into a ``PARSE`` finding).
    """
    if text is None:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    tree = ast.parse(text, filename=path)
    return SourceFile(
        path=path,
        text=text,
        tree=tree,
        module=module if module is not None else module_guess(path),
        suppressions=_extract_suppressions(text),
    )


def _suppression_findings(src: SourceFile) -> List[Finding]:
    """SUP01 findings for suppression comments naming unknown codes."""
    valid = known_codes()
    findings: List[Finding] = []
    for line, codes in sorted(src.suppressions.items()):
        unknown = sorted(code for code in codes if code not in valid)
        for code in unknown:
            findings.append(Finding(
                SUPPRESS_CODE, Severity.ERROR, src.path,
                f"suppression names unknown rule code {code or '<empty>'!r} "
                f"(known: {', '.join(sorted(valid))})",
                line=line, col=0,
            ))
    return findings


def _apply_suppressions(
    findings: Iterable[Finding], by_path: Dict[str, SourceFile]
) -> List[Finding]:
    """Drop findings whose code is disabled on their own line."""
    kept: List[Finding] = []
    for finding in findings:
        src = by_path.get(finding.where)
        if (
            src is not None
            and finding.code != SUPPRESS_CODE
            and finding.code.upper() in src.suppressions.get(finding.line, ())
        ):
            continue
        kept.append(finding)
    return kept


def lint_source(
    src: SourceFile, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """All file-scope findings for one file: rule output plus
    suppression-syntax errors, minus findings disabled on their own
    line.  Project-scope rules in *rules* are ignored (they need the
    whole tree — see :func:`run_lint` / :func:`project_findings`)."""
    findings = list(_suppression_findings(src))
    for rule in file_scope_rules(rules):
        findings.extend(rule.check(src))
    kept = _apply_suppressions(findings, {src.path: src})
    return sorted(kept, key=Finding.sort_key)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under *paths* (files pass through verbatim),
    sorted, hidden directories and ``__pycache__`` skipped."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(set(found))


#: Sibling directories of a linted ``src`` tree whose references count
#: for reachability analyses (DEAD01) without being linted themselves.
CONSUMER_DIRS = ("tests", "benchmarks", "examples")


@dataclass
class LintRun:
    """One full lint run: findings plus per-rule cost accounting.

    ``stats`` maps rule code (plus the pseudo-entries ``parse`` and
    ``graph``) to ``{"seconds": wall_time, "findings": count}`` —
    the ``--stats`` surface CI uses to spot rule-cost regressions.
    """

    findings: List[Finding]
    stats: Dict[str, Dict[str, float]]
    files: int = 0

    def stats_json(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "rules": {
                code: {
                    "seconds": round(entry["seconds"], 6),
                    "findings": int(entry["findings"]),
                }
                for code, entry in sorted(self.stats.items())
            },
        }


def _stat_entry(
    stats: Dict[str, Dict[str, float]], code: str
) -> Dict[str, float]:
    return stats.setdefault(code, {"seconds": 0.0, "findings": 0})


def _discover_consumers(
    paths: Iterable[str], linted: Set[str]
) -> Tuple[List[SourceFile], List[str]]:
    """Reference-only sources for a project pass: when a linted path is
    (or contains) a ``src`` tree, its sibling ``tests``/``benchmarks``/
    ``examples`` files plus ``setup.py`` are parsed for references, and
    ``pyproject.toml`` (entry points) is harvested as raw text."""
    roots: Set[str] = set()
    for path in paths:
        absolute = os.path.abspath(path)
        if os.path.isdir(absolute):
            if os.path.basename(absolute) == "src":
                roots.add(os.path.dirname(absolute))
            elif os.path.isdir(os.path.join(absolute, "src")):
                roots.add(absolute)
    consumer_files: List[str] = []
    texts: List[str] = []
    for root in sorted(roots):
        for sub in CONSUMER_DIRS:
            directory = os.path.join(root, sub)
            if os.path.isdir(directory):
                consumer_files.extend(iter_python_files([directory]))
        setup_py = os.path.join(root, "setup.py")
        if os.path.isfile(setup_py):
            consumer_files.append(setup_py)
        pyproject = os.path.join(root, "pyproject.toml")
        if os.path.isfile(pyproject):
            with open(pyproject, encoding="utf-8") as handle:
                texts.append(handle.read())
    consumers: List[SourceFile] = []
    for path in consumer_files:
        if os.path.abspath(path) in linted:
            continue
        try:
            consumers.append(parse_source(path))
        except SyntaxError:
            continue  # consumers inform reachability; they are not linted
    return consumers, texts


def project_findings(
    sources: Sequence[SourceFile],
    consumers: Sequence[SourceFile] = (),
    rules: Optional[Sequence[Rule]] = None,
    stats: Optional[Dict[str, Dict[str, float]]] = None,
    extra_reference_texts: Sequence[str] = (),
) -> List[Finding]:
    """Run the project-scope rules over already-parsed *sources*.

    Per-line suppressions in the source files apply to project findings
    exactly as they do to file findings.  Tests drive this directly with
    synthetic :class:`SourceFile` sets; :func:`run_lint` drives it with
    the walked tree.
    """
    from .graph import build_project

    active = project_scope_rules(rules)
    if not active or not sources:
        return []
    started = time.perf_counter()
    project = build_project(sources, consumers, extra_reference_texts)
    if stats is not None:
        _stat_entry(stats, "graph")["seconds"] += time.perf_counter() - started
    findings: List[Finding] = []
    for rule in active:
        started = time.perf_counter()
        produced = list(rule.check_project(project))
        if stats is not None:
            entry = _stat_entry(stats, rule.code)
            entry["seconds"] += time.perf_counter() - started
        findings.extend(produced)
    by_path = {src.path: src for src in sources}
    return _apply_suppressions(findings, by_path)


def run_lint(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> LintRun:
    """Lint every python file under *paths* with both scopes in one
    pass: the per-file walk first, then the project-scope rules over the
    full parsed tree.  Unparseable files become ``PARSE`` findings
    instead of aborting the run."""
    stats: Dict[str, Dict[str, float]] = {}
    file_active = file_scope_rules(rules)
    project_active = project_scope_rules(rules)
    findings: List[Finding] = []
    sources: List[SourceFile] = []
    files = iter_python_files(paths)
    for path in files:
        started = time.perf_counter()
        try:
            src = parse_source(path)
        except SyntaxError as exc:
            _stat_entry(stats, PARSE_CODE)["seconds"] += (
                time.perf_counter() - started
            )
            findings.append(Finding(
                PARSE_CODE, Severity.ERROR, path,
                f"file does not parse: {exc.msg}",
                line=exc.lineno or 0, col=exc.offset or 0,
            ))
            continue
        _stat_entry(stats, PARSE_CODE)["seconds"] += (
            time.perf_counter() - started
        )
        sources.append(src)
        findings.extend(_suppression_findings(src))
        for rule in file_active:
            started = time.perf_counter()
            produced = list(rule.check(src))
            _stat_entry(stats, rule.code)["seconds"] += (
                time.perf_counter() - started
            )
            findings.extend(produced)
    by_path = {src.path: src for src in sources}
    findings = _apply_suppressions(findings, by_path)

    if project_active and sources:
        consumers, texts = _discover_consumers(
            paths, {os.path.abspath(path) for path in files}
        )
        findings.extend(project_findings(
            sources, consumers, project_active, stats, texts,
        ))

    findings = sorted(findings, key=Finding.sort_key)
    for rule in (rules if rules is not None else all_rules()):
        _stat_entry(stats, rule.code)
    for finding in findings:
        _stat_entry(stats, finding.code)["findings"] += 1
    return LintRun(findings=findings, stats=stats, files=len(files))


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Back-compat façade over :func:`run_lint`: just the findings."""
    return run_lint(paths, rules).findings
