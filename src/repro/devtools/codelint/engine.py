"""The codelint engine: source model, rule registry, suppressions, walker.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`~repro.devtools.codelint.findings.Finding` objects.  The engine
owns everything rules share: turning a path into a dotted module name
(so rules can scope themselves to the determinism-restricted
subsystems), the ``# codelint: disable=CODE[,CODE...]`` inline
suppression syntax (unknown codes are themselves findings — a
suppression that silently never matched would be worse than none), and
the directory walker.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity

#: Subsystems where stochastic behaviour must route through
#: ``simnet/determinism.py`` (dataset identity depends on them being
#: pure functions of the world seed).
RESTRICTED_SUBSYSTEMS = ("dnscore", "resolver", "scanner", "simnet", "zones")

#: The one module allowed to own pseudo-randomness.
DETERMINISM_MODULE = "repro.simnet.determinism"

#: The one module allowed to toggle the cyclic GC (PR 3's refcounted
#: pause helper; a bare disable/enable pair elsewhere can re-enable GC
#: inside someone else's pause window).
GCUTILS_MODULE = "repro.gcutils"

_SUPPRESS_RE = re.compile(r"codelint:\s*disable=([A-Za-z0-9_\-, ]*)")

PARSE_CODE = "PARSE"
SUPPRESS_CODE = "SUP01"


def module_guess(path: str) -> str:
    """Best-effort dotted module for *path*.

    ``src/repro/simnet/world.py`` → ``repro.simnet.world``.  Anchors on
    the last ``repro`` path component when present, else strips a
    leading ``src``; a bare file outside any package keeps just its
    stem (project-scoped rules then stay quiet).
    """
    parts = list(os.path.normpath(path).replace(os.sep, "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    elif "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        parts = parts[-1:]
    return ".".join(part for part in parts if part not in ("", ".", ".."))


@dataclass
class SourceFile:
    """One parsed source file plus everything rules need to scope and
    suppress their findings."""

    path: str
    text: str
    tree: ast.AST
    module: str
    #: physical line → frozenset of (upper-cased) codes disabled there.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def module_parts(self) -> Tuple[str, ...]:
        return tuple(self.module.split(".")) if self.module else ()

    @property
    def subsystem(self) -> Optional[str]:
        """The top-level ``repro`` subpackage (``simnet``, ``scanner``,
        ...), or None when the file is not under the package."""
        parts = self.module_parts
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return None

    @property
    def determinism_restricted(self) -> bool:
        return (
            self.subsystem in RESTRICTED_SUBSYSTEMS
            and self.module != DETERMINISM_MODULE
        )


class Rule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check`.  ``rationale`` records the invariant the rule
    protects and the historical bug motivating it (rendered by
    ``--list-rules`` and the README)."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        src: SourceFile,
        node: Optional[ast.AST],
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            self.code, severity or self.severity, src.path, message,
            line=line, col=col,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.code or rule.code in _REGISTRY:
        raise ValueError(f"duplicate or empty rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def known_codes() -> Set[str]:
    """Codes a suppression comment may legally name."""
    return set(_REGISTRY) | {PARSE_CODE}


def _extract_suppressions(text: str) -> Dict[int, Set[str]]:
    """``line → codes`` from ``# codelint: disable=...`` comments.

    Comments are found with :mod:`tokenize` so string literals that
    merely *contain* the pattern don't suppress anything; an empty code
    list is recorded (and later rejected) rather than ignored.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = {
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        }
        suppressions.setdefault(token.start[0], set()).update(codes or {""})
    return suppressions


def parse_source(
    path: str, text: Optional[str] = None, module: Optional[str] = None
) -> SourceFile:
    """Parse *path* (or the given *text*) into a :class:`SourceFile`.

    *module* overrides the dotted-module guess — fixture tests use this
    to exercise subsystem-scoped rules on files that live outside the
    package.  Raises :class:`SyntaxError` on unparseable source (the
    walker turns that into a ``PARSE`` finding).
    """
    if text is None:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    tree = ast.parse(text, filename=path)
    return SourceFile(
        path=path,
        text=text,
        tree=tree,
        module=module if module is not None else module_guess(path),
        suppressions=_extract_suppressions(text),
    )


def lint_source(
    src: SourceFile, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """All findings for one file: rule output plus suppression-syntax
    errors, minus findings disabled on their own line."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check(src))

    valid = known_codes()
    for line, codes in sorted(src.suppressions.items()):
        unknown = sorted(code for code in codes if code not in valid)
        for code in unknown:
            findings.append(Finding(
                SUPPRESS_CODE, Severity.ERROR, src.path,
                f"suppression names unknown rule code {code or '<empty>'!r} "
                f"(known: {', '.join(sorted(valid))})",
                line=line, col=0,
            ))

    kept = [
        finding for finding in findings
        if not (
            finding.code != SUPPRESS_CODE
            and finding.code.upper() in src.suppressions.get(finding.line, ())
        )
    ]
    return sorted(kept, key=Finding.sort_key)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under *paths* (files pass through verbatim),
    sorted, hidden directories and ``__pycache__`` skipped."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(set(found))


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every python file under *paths*; unparseable files become
    ``PARSE`` findings instead of aborting the run."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            src = parse_source(path)
        except SyntaxError as exc:
            findings.append(Finding(
                PARSE_CODE, Severity.ERROR, path,
                f"file does not parse: {exc.msg}",
                line=exc.lineno or 0, col=exc.offset or 0,
            ))
            continue
        findings.extend(lint_source(src, rules))
    return sorted(findings, key=Finding.sort_key)
