"""The shared findings vocabulary for every linter in the project.

Both linters — the zone linter (:mod:`repro.manage.linter`, which checks
*measured* zones for the paper's §4 misconfigurations) and the code
linter (:mod:`repro.devtools.codelint`, which checks *this repository's
source* for the invariants those measurements depend on) — report
through one :class:`Finding` dataclass and one :class:`Severity` enum,
rendered by one pair of text/JSON renderers.  A finding is a finding,
whether the subject is a DNS owner name or a source line.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List


class Severity(enum.Enum):
    ERROR = "error"  # will break clients / corrupt datasets silently
    WARNING = "warning"  # degraded, risky, or latent
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: most severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One linter observation.

    ``where`` names the subject: the zone owner name for zone findings,
    the source file path for code findings (with ``line``/``col`` set).
    ``owner`` is kept as an alias for the zone linter's historical field
    name.
    """

    code: str
    severity: Severity
    where: str
    message: str
    line: int = 0
    col: int = 0

    @property
    def owner(self) -> str:
        return self.where

    @property
    def location(self) -> str:
        if self.line:
            return f"{self.where}:{self.line}:{self.col}"
        return self.where

    def identity(self) -> str:
        """A line-number-free key for baseline matching: editing an
        unrelated part of a file must not churn the baseline."""
        return f"{self.code}::{self.where}::{self.message}"

    def sort_key(self):
        return (self.where, self.line, self.col, self.severity.rank, self.code)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "where": self.where,
            "message": self.message,
        }
        if self.line:
            payload["line"] = self.line
            payload["col"] = self.col
        return payload

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code} {self.location}: {self.message}"


def render_text(findings: Iterable[Finding]) -> str:
    """One finding per line, stable order (path, line, severity, code)."""
    return "\n".join(str(f) for f in sorted(findings, key=Finding.sort_key))


def render_json(findings: Iterable[Finding], **extra: object) -> str:
    """A machine-readable report; *extra* keys join the top level (the
    code linter adds baseline counts, the zone linter the lint date)."""
    ordered = sorted(findings, key=Finding.sort_key)
    payload: Dict[str, object] = {
        "findings": [f.to_json() for f in ordered],
        "counts": severity_counts(ordered),
    }
    payload.update(extra)
    return json.dumps(payload, indent=1, sort_keys=True)


def severity_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts
