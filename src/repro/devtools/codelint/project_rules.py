"""Project-scope rules: analyses no single file can support.

Each rule here consumes the :class:`~.graph.ProjectGraph` built after
the per-file walk — the import graph, the name-resolved call graph, and
the shared-state inventory — and reports findings anchored to real
(path, line) positions so suppressions and the baseline apply
unchanged.

The catalogue (see README.md for the incident history):

* ``DET02`` — transitive determinism: a restricted-subsystem function
  calls a helper *outside* the restricted tree that transitively
  reaches ambient randomness or the wall clock.
* ``LAYER01`` — import layering and devtools isolation; import cycles.
* ``RACE01`` — shared mutable state written without its lock, or from
  thread-pool workers with no lock at all.
* ``DEAD01`` — public symbols nothing references.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import (
    DETERMINISM_MODULE,
    RESTRICTED_SUBSYSTEMS,
    ProjectRule,
    register,
)
from .findings import Finding, Severity
from .graph import (
    ClassInfo,
    FunctionNode,
    ProjectGraph,
    dotted_chain,
    reachable_from,
)
from .rules import _BANNED_CALLS, _BANNED_MODULES

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

#: Container methods that mutate in place.
MUTATOR_METHODS = {
    "append", "appendleft", "add", "update", "setdefault", "pop", "popitem",
    "clear", "extend", "remove", "discard", "insert", "move_to_end",
}


def _subsystem(module: str) -> Optional[str]:
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


def _restricted(module: str) -> bool:
    return (
        _subsystem(module) in RESTRICTED_SUBSYSTEMS
        and module != DETERMINISM_MODULE
    )


def _short(qualname: str) -> str:
    return qualname[len("repro."):] if qualname.startswith("repro.") else qualname


# ---------------------------------------------------------------------------
# DET02 — transitive determinism across module boundaries
# ---------------------------------------------------------------------------


def _direct_banned_call(
    graph: ProjectGraph, fn: FunctionNode
) -> Optional[Tuple[str, int]]:
    """The first ambient randomness / wall-clock call *directly* inside
    *fn*, resolved through the module's import aliases."""
    aliases = graph.import_aliases.get(fn.module, {})
    stack = list(ast.iter_child_nodes(fn.node))
    hits: List[Tuple[int, str]] = []
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if chain is None:
            continue
        resolved = aliases.get(chain[0], chain[0]).split(".") + chain[1:]
        dotted = ".".join(resolved)
        if resolved[0] in _BANNED_MODULES or dotted in _BANNED_CALLS:
            hits.append((node.lineno, dotted))
    if not hits:
        return None
    lineno, dotted = min(hits)
    return dotted, lineno


@register
class TransitiveDeterminismRule(ProjectRule):
    code = "DET02"
    name = "transitive nondeterminism reachable from restricted subsystems"
    severity = Severity.ERROR
    rationale = (
        "DET01 catches random/time/uuid used *inside* dnscore/resolver/"
        "scanner/simnet/zones, but a restricted function calling a helper "
        "one module over that calls time.time() two calls deep corrupts "
        "dataset identity just as silently. The call graph closes the "
        "loophole: any restricted function whose transitive callees reach "
        "ambient entropy outside simnet/determinism.py is reported with "
        "the full chain."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        banned: Dict[str, Tuple[str, int]] = {}
        for qualname, fn in project.functions.items():
            if fn.module == DETERMINISM_MODULE:
                continue
            hit = _direct_banned_call(project, fn)
            if hit is not None:
                banned[qualname] = hit

        chains: Dict[str, Optional[Tuple[str, ...]]] = {}

        def chain_to_banned(qualname: str) -> Optional[Tuple[str, ...]]:
            if qualname in chains:
                return chains[qualname]
            chains[qualname] = None  # cycle guard: in-progress means no
            fn = project.functions.get(qualname)
            if fn is None or fn.module == DETERMINISM_MODULE:
                return None
            if qualname in banned:
                chains[qualname] = (qualname,)
                return chains[qualname]
            best: Optional[Tuple[str, ...]] = None
            for edge in project.calls_from(qualname):
                tail = chain_to_banned(edge.target)
                if tail is not None and (best is None or len(tail) < len(best)):
                    best = tail
            if best is not None:
                chains[qualname] = (qualname,) + best
            return chains[qualname]

        seen: Set[Tuple[str, str]] = set()
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not _restricted(fn.module) or qualname in banned:
                continue
            for edge in sorted(
                project.calls_from(qualname), key=lambda e: (e.lineno, e.target)
            ):
                callee = project.functions.get(edge.target)
                if callee is None or _restricted(callee.module):
                    continue  # restricted callees answer for themselves
                if callee.module == DETERMINISM_MODULE:
                    continue
                tail = chain_to_banned(edge.target)
                if tail is None or (qualname, edge.target) in seen:
                    continue
                seen.add((qualname, edge.target))
                sink, _ = banned[tail[-1]]
                path = " -> ".join(_short(q) for q in (qualname,) + tail)
                yield self.project_finding(
                    edge.path, edge.lineno, edge.col,
                    f"{_short(qualname)} transitively reaches {sink}() "
                    f"outside the restricted tree: {path} -> {sink}(); "
                    "route entropy/clock reads through simnet/determinism.py",
                )


# ---------------------------------------------------------------------------
# LAYER01 — import layering, devtools isolation, cycles
# ---------------------------------------------------------------------------

#: The dependency order, lowest first.  A module may import same-or-
#: lower layers only.  This is the codebase's real topology: World
#: (simnet) is the composition root that wires resolver stacks
#: together, scanner drives worlds, study/cli drive scanner.
_LAYERS = {
    "dnscore": 0,
    "zones": 1,
    "dnssec": 1,
    "resolver": 2,
    "simnet": 3,
    "scanner": 4,
    "study": 5,
    "cli": 5,
}

_ORDER_TEXT = "dnscore -> zones/dnssec -> resolver -> simnet -> scanner -> study/cli"


@register
class ImportLayeringRule(ProjectRule):
    code = "LAYER01"
    name = "import layering, devtools isolation, and import cycles"
    severity = Severity.ERROR
    rationale = (
        "The subsystems form a strict stack (" + _ORDER_TEXT + "): wire "
        "format below zone data below resolution below the simulated "
        "world below campaign drivers. An upward import (dnscore reaching "
        "into scanner) or a cycle makes the layers untestable in "
        "isolation and is how deprecation shims rot into load-bearing "
        "dependencies. devtools must import nothing from the product "
        "tree so the linter can never deadlock on the code it lints."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        seen: Set[Tuple[str, str, str]] = set()
        for edge in sorted(
            project.import_edges,
            key=lambda e: (e.path, e.lineno, e.target),
        ):
            importer_sub = _subsystem(edge.importer)
            target_sub = _subsystem(edge.target)
            if edge.importer == edge.target:
                continue
            if importer_sub == "devtools" and target_sub != "devtools":
                key = (edge.importer, edge.target, "devtools")
                if key not in seen:
                    seen.add(key)
                    yield self.project_finding(
                        edge.path, edge.lineno, edge.col,
                        f"devtools module {edge.importer} imports "
                        f"{edge.target} from the product tree; devtools "
                        "must stay import-isolated from the code it lints",
                    )
                continue
            if (
                importer_sub in _LAYERS
                and target_sub in _LAYERS
                and _LAYERS[importer_sub] < _LAYERS[target_sub]
            ):
                key = (edge.importer, edge.target, "order")
                if key not in seen:
                    seen.add(key)
                    yield self.project_finding(
                        edge.path, edge.lineno, edge.col,
                        f"layering violation: {edge.importer} (layer "
                        f"'{importer_sub}') imports {edge.target} (layer "
                        f"'{target_sub}'); the dependency order is "
                        + _ORDER_TEXT,
                    )
        yield from self._cycles(project)

    def _cycles(self, project: ProjectGraph) -> Iterator[Finding]:
        edges: Dict[str, Set[str]] = {}
        anchors: Dict[Tuple[str, str], Tuple[str, int, int]] = {}
        for edge in project.import_edges:
            if not edge.toplevel or edge.type_only:
                continue
            target = edge.target
            if target not in project.modules:
                continue
            if edge.importer == target or edge.importer not in project.modules:
                continue
            edges.setdefault(edge.importer, set()).add(target)
            anchors.setdefault(
                (edge.importer, target), (edge.path, edge.lineno, edge.col)
            )
        for component in _strongly_connected(edges):
            if len(component) < 2:
                continue
            members = set(component)
            for importer in sorted(members):
                for target in sorted(edges.get(importer, ())):
                    if target not in members:
                        continue
                    path, lineno, col = anchors[(importer, target)]
                    cycle = _cycle_path(edges, members, importer, target)
                    yield self.project_finding(
                        path, lineno, col,
                        f"import cycle: {importer} -> {target} "
                        f"(cycle: {' -> '.join(cycle)})",
                    )


def _strongly_connected(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan, iteratively (the module graph is small but recursion
    depth should not depend on it)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]
    nodes = sorted(set(edges) | {t for ts in edges.values() for t in ts})

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, List[str], int]] = [
            (root, sorted(edges.get(root, ())), 0)
        ]
        while work:
            node, succs, position = work[-1]
            if position == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for offset in range(position, len(succs)):
                succ = succs[offset]
                if succ not in index:
                    work[-1] = (node, succs, offset + 1)
                    work.append((succ, sorted(edges.get(succ, ())), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    popped = stack.pop()
                    on_stack.discard(popped)
                    component.append(popped)
                    if popped == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def _cycle_path(
    edges: Dict[str, Set[str]], members: Set[str], importer: str, target: str
) -> List[str]:
    """A representative cycle through the edge importer→target: BFS a
    path target→importer within the component."""
    parents: Dict[str, Optional[str]] = {target: None}
    queue = [target]
    while queue:
        node = queue.pop(0)
        if node == importer:
            break
        for succ in sorted(edges.get(node, ())):
            if succ in members and succ not in parents:
                parents[succ] = node
                queue.append(succ)
    if importer not in parents:
        return [importer, target, importer]
    walked = [importer]
    node = importer
    while parents[node] is not None:
        node = parents[node]  # type: ignore[assignment]
        walked.append(node)
    # walked is importer..target along reversed BFS parents; the cycle is
    # importer -> target -> ... -> importer.
    return [importer] + list(reversed(walked))


# ---------------------------------------------------------------------------
# RACE01 — shared state written without its lock
# ---------------------------------------------------------------------------


def _is_lock_context(
    expr: ast.AST, self_locks: Set[str], module_locks: Set[str]
) -> bool:
    if isinstance(expr, ast.Call):
        expr = expr.func
    chain = dotted_chain(expr)
    if chain is None:
        return False
    if chain[0] == "self" and len(chain) >= 2 and chain[1] in self_locks:
        return True
    return chain[0] in module_locks


def _iter_unlocked_writes(
    body: Sequence[ast.AST],
    self_locks: Set[str],
    module_locks: Set[str],
    is_write,
) -> Iterator[Tuple[ast.AST, str]]:
    """(node, attr/name) for every shared-state write not under a
    recognised ``with <lock>:``.  *is_write* classifies a node."""
    stack: List[Tuple[ast.AST, bool]] = [(node, False) for node in body]
    while stack:
        node, locked = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        child_locked = locked
        if isinstance(node, ast.With):
            if any(
                _is_lock_context(item.context_expr, self_locks, module_locks)
                for item in node.items
            ):
                child_locked = True
        if not locked:
            target = is_write(node)
            if target is not None:
                yield node, target
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_locked))


def _self_write_target(
    node: ast.AST, container_attrs: Set[str], state_attrs: Set[str]
) -> Optional[str]:
    """The ``self.<attr>`` a node writes, when that attr is shared."""
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        if (
            chain is not None and len(chain) == 3 and chain[0] == "self"
            and chain[1] in container_attrs and chain[2] in MUTATOR_METHODS
        ):
            return chain[1]
        return None
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        if isinstance(target, ast.Subscript):
            chain = dotted_chain(target.value)
            if (
                chain is not None and len(chain) == 2 and chain[0] == "self"
                and chain[1] in container_attrs
            ):
                return chain[1]
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in state_attrs
        ):
            return target.attr
    return None


def _module_write_target(
    node: ast.AST,
    module_containers: Set[str],
    class_containers: Dict[str, Set[str]],
) -> Optional[str]:
    """The module-level container (or ``Class.attr`` cache) a node
    writes."""

    def classify(chain: Optional[List[str]]) -> Optional[str]:
        if chain is None:
            return None
        if len(chain) == 1 and chain[0] in module_containers:
            return chain[0]
        if len(chain) == 2 and chain[1] in class_containers.get(chain[0], ()):
            return ".".join(chain)
        return None

    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        if chain is not None and len(chain) >= 2 and chain[-1] in MUTATOR_METHODS:
            return classify(chain[:-1])
        return None
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        if isinstance(target, ast.Subscript):
            found = classify(dotted_chain(target.value))
            if found is not None:
                return found
    return None


@register
class SharedStateRaceRule(ProjectRule):
    code = "RACE01"
    name = "shared mutable state written without lock protection"
    severity = Severity.ERROR
    rationale = (
        "The pipeline's thread mode shares caches across workers "
        "(SignatureMemo, WorldRegistry, AnswerCache). A class that owns "
        "a threading lock but writes its shared attributes outside "
        "'with self._lock:' — or a module-level container written from a "
        "function reachable from a ThreadPoolExecutor submission — is a "
        "data race that corrupts datasets nondeterministically under "
        "exactly the sharded execution shapes the equivalence suites "
        "exist to protect. dnssec/signing.SignatureMemo is the exemplar "
        "lock-held pattern."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        yield from self._lock_owning_classes(project)
        yield from self._thread_reachable_writes(project)

    def _lock_owning_classes(self, project: ProjectGraph) -> Iterator[Finding]:
        for class_qual in sorted(project.classes):
            info = project.classes[class_qual]
            if not info.lock_attrs:
                continue
            state_attrs = set(info.container_attrs) | set(info.init_attrs)
            state_attrs -= info.lock_attrs
            if not state_attrs:
                continue
            for method_name in sorted(info.methods):
                if method_name in ("__init__", "__new__", "__del__"):
                    continue
                fn = project.functions.get(info.methods[method_name])
                if fn is None:
                    continue
                reported: Set[str] = set()
                for node, attr in _iter_unlocked_writes(
                    list(ast.iter_child_nodes(fn.node)),
                    info.lock_attrs, set(),
                    lambda n: _self_write_target(
                        n, info.container_attrs, state_attrs
                    ),
                ):
                    if attr in reported:
                        continue
                    reported.add(attr)
                    lock = sorted(info.lock_attrs)[0]
                    yield self.project_finding(
                        fn.path, node.lineno, getattr(node, "col_offset", 0),
                        f"{info.name}.{method_name} writes shared attribute "
                        f"'{attr}' outside 'with self.{lock}:' although "
                        f"{info.name} owns a lock for it; hold the lock "
                        "around every read-modify-write",
                    )

    def _thread_reachable_writes(
        self, project: ProjectGraph
    ) -> Iterator[Finding]:
        roots = {root.qualname for root in project.thread_roots}
        if not roots:
            return
        chains = reachable_from(project, roots)
        reported: Set[Tuple[str, str]] = set()
        for qualname in sorted(chains):
            fn = project.functions.get(qualname)
            if fn is None:
                continue
            module_containers = set(project.module_containers.get(fn.module, ()))
            module_locks = set(project.module_locks.get(fn.module, ()))
            class_containers = {
                info.name: set(info.container_attrs)
                for info in project.classes.values()
                if info.module == fn.module
            }
            self_locks: Set[str] = set()
            if fn.class_name is not None:
                owner = qualname.rsplit(".", 2)[0] + "." + fn.class_name
                owner_info = project.classes.get(owner)
                if owner_info is not None:
                    self_locks = set(owner_info.lock_attrs)
            if not module_containers and not class_containers:
                continue
            for node, name in _iter_unlocked_writes(
                list(ast.iter_child_nodes(fn.node)),
                self_locks, module_locks,
                lambda n: _module_write_target(
                    n, module_containers, class_containers
                ),
            ):
                if (qualname, name) in reported:
                    continue
                reported.add((qualname, name))
                path = " -> ".join(_short(q) for q in chains[qualname])
                yield self.project_finding(
                    fn.path, node.lineno, getattr(node, "col_offset", 0),
                    f"module-level shared state '{name}' is written by "
                    f"{_short(qualname)}, which threads reach via {path}, "
                    "without a lock-guarded 'with'; guard it with a "
                    "threading.Lock",
                )


# ---------------------------------------------------------------------------
# DEAD01 — unreachable public symbols
# ---------------------------------------------------------------------------

#: DEAD01 only judges full project trees: the CLI entry module must be
#: in the linted set, else (narrow path arguments, fixture subsets) the
#: rule stays silent rather than calling everything dead.
_ENTRY_MODULE = "repro.cli"


@register
class DeadPublicSymbolRule(ProjectRule):
    code = "DEAD01"
    name = "public symbol referenced nowhere"
    severity = Severity.WARNING
    rationale = (
        "A public function nothing reaches — not the CLI entry points, "
        "not tests, not __init__ exports, not registered rules — is "
        "untested code that drifts: PR 5's load_or_run_campaign shim "
        "survived only because a test pinned its cache keys. Reference "
        "counting is conservative (any name/attribute/string-token "
        "mention anywhere in src, tests, benchmarks, examples, setup.py "
        "or pyproject.toml keeps a symbol alive; decorated defs are "
        "always alive), so a DEAD01 hit is a symbol the repository "
        "genuinely never mentions again: delete it."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        if _ENTRY_MODULE not in project.modules:
            return
        for symbol in sorted(
            project.public_symbols, key=lambda s: (s.path, s.lineno)
        ):
            if symbol.decorated:
                continue
            external = (
                project.reference_counts[symbol.name]
                - symbol.own_refs[symbol.name]
            )
            if external > 0:
                continue
            yield self.project_finding(
                symbol.path, symbol.lineno, 0,
                f"public {symbol.kind} '{symbol.name}' in {symbol.module} "
                "is referenced nowhere (CLI entry points, tests, __init__ "
                "exports, registered rules, benchmarks, examples all "
                "checked); delete it or mark it private",
            )
