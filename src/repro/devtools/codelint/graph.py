"""Project-scope source model: the import graph and a name-resolved
intra-project call graph over every parsed :class:`SourceFile`.

File-local AST rules (``rules.py``) cannot see a ``simnet/`` function
that calls a helper which calls ``time.time()`` two modules away, an
import that inverts the layering, or a cache written from a thread-pool
worker defined elsewhere.  This module builds the shared cross-file
model those analyses need; :mod:`.project_rules` consumes it.

Resolution is **best-effort and never guesses**: a call is resolved
when its target can be named through module-level definitions, import
aliases (absolute and relative), ``self.``/``cls.`` method dispatch
(including one-hop base-class lookup when the base resolves to a
project class), or class-qualified access.  Everything else is recorded
in :attr:`ProjectGraph.unresolved` so a rule can reason about the gap
instead of silently assuming an empty call set.
"""

from __future__ import annotations

import ast
import os
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import SourceFile

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Containers whose in-place mutation from concurrent writers is a race.
CONTAINER_CALLS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter",
}

_CONTAINER_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)

_LOCK_CALLS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]`` for pure Name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


def is_container_value(value: ast.AST) -> bool:
    """Does *value* construct a mutable container (literal or call)?"""
    if isinstance(value, _CONTAINER_LITERALS):
        return True
    if isinstance(value, ast.Call):
        chain = dotted_chain(value.func)
        return bool(chain) and chain[-1] in CONTAINER_CALLS
    return False


def _is_lock_value(value: ast.AST) -> bool:
    if isinstance(value, ast.Call):
        chain = dotted_chain(value.func)
        return bool(chain) and chain[-1] in _LOCK_CALLS
    return False


@dataclass
class ImportEdge:
    """One project-internal import: *importer* module imports *target*."""

    importer: str
    target: str
    symbol: Optional[str]
    path: str
    lineno: int
    col: int
    toplevel: bool
    type_only: bool  # under `if TYPE_CHECKING:` — no runtime edge


@dataclass
class CallEdge:
    """A resolved intra-project call: *caller* qualname invokes *target*."""

    caller: str
    target: str
    path: str
    lineno: int
    col: int


@dataclass
class FunctionNode:
    """One function or method, addressable by dotted qualname."""

    qualname: str
    name: str
    module: str
    class_name: Optional[str]
    path: str
    lineno: int
    node: ast.AST = field(repr=False)

    @property
    def subsystem(self) -> Optional[str]:
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return None


@dataclass
class ClassInfo:
    """One class: method table, shared-state attributes, lock attributes."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef = field(repr=False)
    methods: Dict[str, str] = field(default_factory=dict)
    base_chains: List[List[str]] = field(default_factory=list)
    #: container attrs: class-body assigns plus ``self.X = {...}`` in __init__.
    container_attrs: Set[str] = field(default_factory=set)
    #: attrs first assigned in __init__ (shared instance state, any type).
    init_attrs: Set[str] = field(default_factory=set)
    lock_attrs: Set[str] = field(default_factory=set)
    #: module-level names bound to an instance of this class.
    module_instances: List[str] = field(default_factory=list)


@dataclass
class PublicSymbol:
    """A public top-level def/class in a ``repro.*`` module."""

    name: str
    module: str
    path: str
    lineno: int
    kind: str  # "function" | "class"
    decorated: bool
    #: identifier tokens inside the symbol's own subtree (self-references
    #: such as recursion or docstrings never count as external use).
    own_refs: Counter = field(default_factory=Counter)


@dataclass
class ThreadRoot:
    """A function handed to a thread: ``pool.submit(f)``, a
    ``threading.Thread(target=f)``, or a function referenced by name in
    a module that constructs a thread pool (indirect submission)."""

    qualname: str
    via: str
    path: str
    lineno: int


class ProjectGraph:
    """Everything :class:`~.engine.ProjectRule` analyses share."""

    def __init__(self) -> None:
        self.modules: Dict[str, SourceFile] = {}
        self.packages: Set[str] = set()
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallEdge]] = {}
        #: caller qualname → dotted text of calls that did not resolve.
        self.unresolved: Dict[str, List[str]] = {}
        self.import_edges: List[ImportEdge] = []
        #: module → local alias → dotted target (import resolution scope).
        self.import_aliases: Dict[str, Dict[str, str]] = {}
        #: module → top-level name → qualname (functions and classes).
        self.module_scope: Dict[str, Dict[str, str]] = {}
        #: module → module-level mutable container names.
        self.module_containers: Dict[str, Dict[str, int]] = {}
        #: module → module-level lock-valued names.
        self.module_locks: Dict[str, Set[str]] = set_default_dict()
        self.thread_roots: List[ThreadRoot] = []
        self.public_symbols: List[PublicSymbol] = []
        #: identifier tokens across all project + consumer sources.
        self.reference_counts: Counter = Counter()
        #: paths parsed as consumers (tests/benchmarks/... — references
        #: only, no findings).
        self.consumer_paths: List[str] = []

    # -- lookups -----------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionNode]:
        return self.functions.get(qualname)

    def calls_from(self, qualname: str) -> List[CallEdge]:
        return self.calls.get(qualname, [])

    def source_for_path(self, path: str) -> Optional[SourceFile]:
        for src in self.modules.values():
            if src.path == path:
                return src
        return None

    def resolve_method(
        self, class_qualname: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """``Class.method`` through the class and (resolvable) bases."""
        info = self.classes.get(class_qualname)
        if info is None or _depth > 8:
            return None
        if method in info.methods:
            return info.methods[method]
        for chain in info.base_chains:
            base = self._resolve_scope_chain(info.module, chain)
            if base in self.classes:
                found = self.resolve_method(base, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_scope_chain(
        self, module: str, chain: Sequence[str]
    ) -> Optional[str]:
        """A dotted name used inside *module* → project qualname."""
        scope = self.module_scope.get(module, {})
        aliases = self.import_aliases.get(module, {})
        root = chain[0]
        if root in scope:
            dotted = ".".join([scope[root]] + list(chain[1:]))
        elif root in aliases:
            dotted = ".".join([aliases[root]] + list(chain[1:]))
        else:
            return None
        return self._normalize_qualname(dotted)

    def _normalize_qualname(self, dotted: str) -> Optional[str]:
        """Map a dotted path to a known function/class/module qualname,
        collapsing re-export hops (``repro.simnet.timeline.iter_days``
        imported as ``repro.simnet.iter_days``)."""
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if dotted in self.modules or dotted in self.packages:
            return dotted
        # one re-export hop through a package __init__
        head, _, tail = dotted.rpartition(".")
        package_aliases = self.import_aliases.get(head)
        if package_aliases and tail in package_aliases:
            target = package_aliases[tail]
            if target != dotted:
                return self._normalize_qualname(target)
        return None

    # -- call resolution ---------------------------------------------------

    def resolve_call_chain(
        self, module: str, class_qualname: Optional[str], chain: List[str]
    ) -> Optional[str]:
        """The qualname a call chain targets, or None when unresolvable.

        Handles ``self.m()``/``cls.m()`` (method dispatch through bases),
        module-scope functions and classes (a class resolves to its
        ``__init__`` when defined), imported functions and modules, and
        class-qualified methods.
        """
        if chain[0] in ("self", "cls") and class_qualname is not None:
            if len(chain) == 2:
                return self.resolve_method(class_qualname, chain[1])
            return None
        target = self._resolve_scope_chain(module, chain)
        if target is None:
            return None
        if target in self.functions:
            return target
        if target in self.classes:
            init = self.classes[target].methods.get("__init__")
            return init if init is not None else target
        return None


def set_default_dict() -> Dict[str, Set[str]]:
    from collections import defaultdict

    return defaultdict(set)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def _walk_toplevel(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, bool, bool]]:
    """Yield ``(node, toplevel, type_only)`` for every node, where
    *toplevel* means outside any function/lambda body and *type_only*
    means under an ``if TYPE_CHECKING:`` guard."""
    stack: List[Tuple[ast.AST, bool, bool]] = [(tree, True, False)]
    while stack:
        node, toplevel, type_only = stack.pop()
        yield node, toplevel, type_only
        child_toplevel = toplevel and not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        child_type_only = type_only
        if isinstance(node, ast.If):
            test_chain = dotted_chain(node.test)
            if test_chain and test_chain[-1] == "TYPE_CHECKING":
                child_type_only = True
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_toplevel, child_type_only))


def _module_imports(
    src: SourceFile,
) -> Tuple[Dict[str, str], List[Tuple[str, Optional[str], ast.AST, bool, bool]]]:
    """(alias map, [(target_module_or_symbol, symbol, node, toplevel,
    type_only)]) for every import in *src*.  Relative imports resolve
    against the file's own dotted module."""
    aliases: Dict[str, str] = {}
    raw: List[Tuple[str, Optional[str], ast.AST, bool, bool]] = []
    parts = list(src.module_parts)
    is_package = src.path.endswith("__init__.py")
    for node, toplevel, type_only in _walk_toplevel(src.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases.setdefault(
                        alias.name.split(".")[0], alias.name.split(".")[0]
                    )
                raw.append((alias.name, None, node, toplevel, type_only))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = parts if is_package else parts[:-1]
                hops = node.level - 1
                base = base[: len(base) - hops] if hops else base
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    raw.append((prefix, "*", node, toplevel, type_only))
                    continue
                dotted = f"{prefix}.{alias.name}"
                aliases[alias.asname or alias.name] = dotted
                raw.append((prefix, alias.name, node, toplevel, type_only))
    return aliases, raw


def _class_shared_state(node: ast.ClassDef) -> Tuple[Set[str], Set[str], Set[str]]:
    """(container attrs, __init__-assigned attrs, lock attrs) of a class."""
    containers: Set[str] = set()
    init_attrs: Set[str] = set()
    locks: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if is_container_value(stmt.value):
                        containers.add(target.id)
                    if _is_lock_value(stmt.value):
                        locks.add(target.id)
    for stmt in node.body:
        if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in ("__init__", "__new__")):
            for sub in ast.walk(stmt):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                value = sub.value
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        init_attrs.add(target.attr)
                        if value is not None and is_container_value(value):
                            containers.add(target.attr)
                        if value is not None and _is_lock_value(value):
                            locks.add(target.attr)
    return containers, init_attrs, locks


def _identifier_tokens(tree: ast.AST) -> Iterator[str]:
    """Every identifier a file could be referring to something by: names,
    attribute accesses, import targets, keyword-argument names, and the
    identifier-shaped tokens of short string constants (``__all__``
    entries, ``"pkg.mod:func"`` entry points, ``getattr`` names)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.keyword) and node.arg:
            yield node.arg
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", None)
            if module:
                yield from module.split(".")
            for alias in node.names:
                yield from alias.name.split(".")
                if alias.asname:
                    yield alias.asname
        elif (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and len(node.value) <= 400):
            yield from _IDENT_RE.findall(node.value)


def _collect_definitions(graph: ProjectGraph, src: SourceFile) -> None:
    module = src.module
    scope: Dict[str, str] = {}
    graph.module_scope[module] = scope

    def visit(node: ast.AST, qual_stack: List[str], class_qual: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join([module] + qual_stack + [child.name])
                graph.functions[qualname] = FunctionNode(
                    qualname=qualname, name=child.name, module=module,
                    class_name=qual_stack[-1] if class_qual else None,
                    path=src.path, lineno=child.lineno, node=child,
                )
                if not qual_stack:
                    scope[child.name] = qualname
                if class_qual is not None:
                    graph.classes[class_qual].methods[child.name] = qualname
                visit(child, qual_stack + [child.name], None)
            elif isinstance(child, ast.ClassDef):
                qualname = ".".join([module] + qual_stack + [child.name])
                containers, init_attrs, locks = _class_shared_state(child)
                info = ClassInfo(
                    qualname=qualname, name=child.name, module=module,
                    node=child, container_attrs=containers,
                    init_attrs=init_attrs, lock_attrs=locks,
                )
                for base in child.bases:
                    chain = dotted_chain(base)
                    if chain:
                        info.base_chains.append(chain)
                graph.classes[qualname] = info
                if not qual_stack:
                    scope[child.name] = qualname
                visit(child, qual_stack + [child.name], qualname)

    visit(src.tree, [], None)

    # Module-level containers, locks, and class instantiations.
    containers: Dict[str, int] = {}
    for stmt in src.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                continue
            if is_container_value(stmt.value):
                containers[target.id] = stmt.lineno
            if _is_lock_value(stmt.value):
                graph.module_locks[module].add(target.id)
    graph.module_containers[module] = containers


def _bind_module_instances(graph: ProjectGraph) -> None:
    """Record module-level ``NAME = SomeClass(...)`` bindings so rules
    can treat the instance's shared attributes as process-global state."""
    for module, src in graph.modules.items():
        for stmt in src.tree.body:
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            chain = dotted_chain(stmt.value.func)
            if chain is None:
                continue
            target = graph._resolve_scope_chain(module, chain)
            if target in graph.classes:
                for name_node in stmt.targets:
                    if isinstance(name_node, ast.Name):
                        graph.classes[target].module_instances.append(
                            f"{module}.{name_node.id}"
                        )


def _collect_calls(graph: ProjectGraph, src: SourceFile) -> None:
    module = src.module
    for qualname, fn in graph.functions.items():
        if fn.module != module or fn.path != src.path:
            continue
        class_qual = None
        if fn.class_name is not None:
            class_qual = qualname.rsplit(".", 2)[0] + "." + fn.class_name
            if class_qual not in graph.classes:
                class_qual = None
        edges: List[CallEdge] = []
        unresolved: List[str] = []
        stack = list(ast.iter_child_nodes(fn.node))
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue  # nested defs own their calls
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            target = graph.resolve_call_chain(module, class_qual, chain)
            if target is not None and (
                target in graph.functions or target in graph.classes
            ):
                edges.append(CallEdge(
                    caller=qualname, target=target, path=src.path,
                    lineno=node.lineno, col=node.col_offset,
                ))
            else:
                aliases = graph.import_aliases.get(module, {})
                root = aliases.get(chain[0])
                dotted = ".".join(
                    (root.split(".") if root else [chain[0]]) + chain[1:]
                )
                unresolved.append(dotted)
        if edges:
            graph.calls[qualname] = edges
        if unresolved:
            graph.unresolved[qualname] = unresolved


def _collect_thread_roots(graph: ProjectGraph, src: SourceFile) -> None:
    module = src.module
    creates_pool = False
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            chain = dotted_chain(node.func)
            if chain and chain[-1] in ("ThreadPoolExecutor", "ProcessPoolExecutor"):
                creates_pool = True

    def as_function(expr: ast.AST, class_qual: Optional[str]) -> Optional[str]:
        chain = dotted_chain(expr)
        if chain is None:
            return None
        target = graph.resolve_call_chain(module, class_qual, chain)
        if target in graph.functions:
            return target
        if target in graph.classes:  # submitted callable object: its __call__
            return graph.resolve_method(target, "__call__")
        return None

    for qualname, fn in graph.functions.items():
        if fn.module != module or fn.path != src.path:
            continue
        class_qual = None
        if fn.class_name is not None:
            class_qual = qualname.rsplit(".", 2)[0] + "." + fn.class_name
        stack = list(ast.iter_child_nodes(fn.node))
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                tail = chain[-1] if chain else None
                if tail in ("submit", "map") and node.args:
                    target = as_function(node.args[0], class_qual)
                    if target is not None:
                        graph.thread_roots.append(ThreadRoot(
                            qualname=target, via=f"{qualname} .{tail}()",
                            path=src.path, lineno=node.lineno,
                        ))
                if tail == "Thread":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target = as_function(kw.value, class_qual)
                            if target is not None:
                                graph.thread_roots.append(ThreadRoot(
                                    qualname=target,
                                    via=f"{qualname} Thread(target=...)",
                                    path=src.path, lineno=node.lineno,
                                ))
            elif (creates_pool and isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                # A bare function reference in a pool-owning module is
                # assumed to flow into a submission indirectly (the
                # pipeline's (fn, args) task tuples).
                target = graph.resolve_call_chain(module, class_qual, [node.id])
                if target in graph.functions and not _is_call_func(node, fn.node):
                    graph.thread_roots.append(ThreadRoot(
                        qualname=target, via=f"{qualname} (task reference)",
                        path=src.path, lineno=node.lineno,
                    ))


def _is_call_func(name_node: ast.Name, scope: ast.AST) -> bool:
    """Is *name_node* the function position of a Call in *scope*?"""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) and node.func is name_node:
            return True
    return False


def _collect_public_symbols(graph: ProjectGraph, src: SourceFile) -> None:
    if not src.module.startswith("repro") or src.path.endswith("__init__.py"):
        return
    for stmt in src.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if stmt.name.startswith("_"):
            continue
        graph.public_symbols.append(PublicSymbol(
            name=stmt.name, module=src.module, path=src.path,
            lineno=stmt.lineno,
            kind="class" if isinstance(stmt, ast.ClassDef) else "function",
            decorated=bool(stmt.decorator_list),
            own_refs=Counter(_identifier_tokens(stmt)),
        ))


def build_project(
    sources: Sequence[SourceFile],
    consumers: Sequence[SourceFile] = (),
    extra_reference_texts: Sequence[str] = (),
) -> ProjectGraph:
    """Build the :class:`ProjectGraph` for *sources*.

    *consumers* are parsed-but-not-linted files (tests, benchmarks,
    examples, setup.py) whose references count for reachability analyses
    like DEAD01 but which never produce findings themselves.
    *extra_reference_texts* are raw non-python texts (pyproject.toml)
    whose identifier tokens likewise count as references — console
    entry points keep ``*_main`` functions alive.
    """
    graph = ProjectGraph()
    for src in sources:
        if src.module:
            graph.modules[src.module] = src
            parts = src.module.split(".")
            for depth in range(1, len(parts)):
                graph.packages.add(".".join(parts[:depth]))

    for src in sources:
        _collect_definitions(graph, src)

    for src in sources:
        module = src.module
        aliases, raw = _module_imports(src)
        graph.import_aliases[module] = aliases
        for prefix, symbol, node, toplevel, type_only in raw:
            if symbol is None or symbol == "*":
                target, edge_symbol = prefix, None if symbol is None else "*"
            elif f"{prefix}.{symbol}" in graph.modules or (
                symbol != "*" and _looks_like_module(graph, prefix, symbol)
            ):
                target, edge_symbol = f"{prefix}.{symbol}", None
            else:
                target, edge_symbol = prefix, symbol
            if not target.split(".")[0] == "repro":
                continue
            graph.import_edges.append(ImportEdge(
                importer=module, target=target, symbol=edge_symbol,
                path=src.path, lineno=node.lineno, col=node.col_offset,
                toplevel=toplevel, type_only=type_only,
            ))

    _bind_module_instances(graph)
    for src in sources:
        _collect_calls(graph, src)
        _collect_thread_roots(graph, src)
        _collect_public_symbols(graph, src)
        graph.reference_counts.update(_identifier_tokens(src.tree))
    for src in consumers:
        graph.consumer_paths.append(src.path)
        graph.reference_counts.update(_identifier_tokens(src.tree))
    for text in extra_reference_texts:
        graph.reference_counts.update(_IDENT_RE.findall(text))
    return graph


def _looks_like_module(graph: ProjectGraph, prefix: str, symbol: str) -> bool:
    """``from repro.simnet import timeline`` imports a *module* even when
    that module is outside the linted set — recognise it by the package
    being known while the symbol is no known definition of it."""
    dotted = f"{prefix}.{symbol}"
    if dotted in graph.packages:
        return True
    if prefix in graph.modules:
        scope = graph.module_scope.get(prefix, {})
        aliases = graph.import_aliases.get(prefix, {})
        return symbol not in scope and symbol not in aliases and (
            dotted in graph.modules
        )
    return False


def reachable_from(
    graph: ProjectGraph, roots: Iterable[str]
) -> Dict[str, Tuple[str, ...]]:
    """BFS over the call graph: qualname → shortest chain from a root
    (the chain starts at the root and ends at the qualname)."""
    chains: Dict[str, Tuple[str, ...]] = {}
    queue: List[str] = []
    for root in roots:
        if root in graph.functions and root not in chains:
            chains[root] = (root,)
            queue.append(root)
    while queue:
        current = queue.pop(0)
        for edge in graph.calls_from(current):
            target = edge.target
            if target in graph.functions and target not in chains:
                chains[target] = chains[current] + (target,)
                queue.append(target)
    return chains
