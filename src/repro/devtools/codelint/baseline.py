"""Committed baseline for grandfathered findings.

A baseline lets the linter gate CI from day one: pre-existing findings
that are deliberately tolerated live in a committed JSON file, and only
*new* findings fail the build.  Entries are keyed by
:meth:`Finding.identity` — code + file + message, **no line numbers** —
so editing an unrelated part of a file never churns the baseline, while
a second occurrence of a baselined pattern in the same file does fail
(counts are per-identity).

The project policy (ISSUE 6) is to *fix* true positives rather than
baseline them, so the committed baseline should stay empty; the
machinery exists so a future grandfathered finding is an explicit,
reviewed diff instead of a silent suppression.
"""

from __future__ import annotations

import collections
import json
import os
from typing import Counter, Dict, Iterable, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "codelint-baseline.json"
_MAGIC = "repro-codelint-baseline"


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or not a baseline."""


def load_baseline(path: str) -> Counter:
    """``identity → tolerated count`` from a baseline file."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise BaselineError(f"{path} is not a codelint baseline")
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline version {payload.get('version')!r} != {BASELINE_VERSION} in {path}"
        )
    findings = payload.get("findings", {})
    if not isinstance(findings, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in findings.items()
    ):
        raise BaselineError(f"malformed findings table in {path}")
    return collections.Counter(findings)


def write_baseline(path: str, findings: Iterable[Finding]) -> Counter:
    """Serialize *findings* as the new baseline (atomic replace)."""
    counts = collections.Counter(f.identity() for f in findings)
    payload = {
        "magic": _MAGIC,
        "version": BASELINE_VERSION,
        "findings": dict(sorted(counts.items())),
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return counts


def partition(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split into (new, baselined).

    Each baseline entry absorbs up to its recorded count of matching
    findings; the overflow — and anything unmatched — is new.
    """
    budget: Dict[str, int] = dict(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        identity = finding.identity()
        if budget.get(identity, 0) > 0:
            budget[identity] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
