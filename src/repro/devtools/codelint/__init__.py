"""codelint — AST-based invariant linter for this reproduction's source.

The paper argues (§7) that the misconfigurations it measures are
mechanically detectable; ``repro.manage.linter`` implements that for
zones.  This package applies the same thesis to the reproduction's own
code: the silent-corruption bugs PRs 1-5 each shipped (unstable cache
tags, pickled hash caches, typo'd kwargs forking the cache) are members
of a few mechanically-detectable classes, enforced here as lint rules
that CI gates on.  See README.md next to this file for the rule
catalogue and the incident history behind each rule.

Public surface::

    from repro.devtools.codelint import lint_paths, main
    findings = lint_paths(["src"])           # List[Finding]
    sys.exit(main(["src"]))                  # the CLI, programmatically

Suppression: append ``# codelint: disable=CODE[,CODE...]`` to the line
a finding is reported on.  Unknown codes are rejected (SUP01) so a
suppression can never silently rot.  Grandfathered findings live in the
committed ``codelint-baseline.json`` (see :mod:`.baseline`).
"""

from .baseline import (
    BaselineError,
    DEFAULT_BASELINE,
    load_baseline,
    partition,
    write_baseline,
)
from .cli import main
from .engine import (
    RESTRICTED_SUBSYSTEMS,
    LintRun,
    ProjectRule,
    Rule,
    SourceFile,
    all_rules,
    file_scope_rules,
    known_codes,
    lint_paths,
    lint_source,
    parse_source,
    project_findings,
    project_scope_rules,
    register,
    run_lint,
)
from .findings import Finding, Severity, render_json, render_text
from .graph import ProjectGraph, build_project
from . import rules as _rules  # noqa: F401  (importing registers the rules)
from . import project_rules as _project_rules  # noqa: F401  (ditto)

__all__ = [
    "BaselineError",
    "DEFAULT_BASELINE",
    "Finding",
    "LintRun",
    "ProjectGraph",
    "ProjectRule",
    "RESTRICTED_SUBSYSTEMS",
    "Rule",
    "Severity",
    "SourceFile",
    "all_rules",
    "build_project",
    "file_scope_rules",
    "known_codes",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "parse_source",
    "partition",
    "project_findings",
    "project_scope_rules",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
