"""Rdata classes for the record types exercised by the study.

Each class implements:

* ``to_wire(writer)`` / ``from_wire(reader, rdlength)`` — RFC 1035 wire form
  (names inside RRSIG/SVCB rdata are written uncompressed per RFC 3597/4034);
* ``to_text()`` / ``from_text(text)`` — zone-file presentation form.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Dict, List, Tuple, Type

from ..svcb.params import SvcParamError, SvcParams
from . import rdtypes
from .names import Name
from .wire import WireReader, WireWriter


class RdataError(ValueError):
    """Malformed rdata."""


class Rdata:
    """Base class for typed rdata. Immutable by convention."""

    rdtype: int = -1

    def to_wire(self, writer: WireWriter) -> None:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    @classmethod
    def from_text(cls, text: str) -> "Rdata":
        raise NotImplementedError

    def wire_bytes(self) -> bytes:
        """Canonical (uncompressed) wire form, cached.

        Rdata objects are treated as immutable once constructed; the rare
        in-place mutators (e.g. :meth:`Zone.corrupt_signature`) must call
        :meth:`invalidate_wire_cache`.
        """
        cached = getattr(self, "_wire_cache", None)
        if cached is None:
            writer = WireWriter(enable_compression=False)
            self.to_wire(writer)
            cached = writer.getvalue()
            self._wire_cache = cached
        return cached

    def invalidate_wire_cache(self) -> None:
        self._wire_cache = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rdata):
            return NotImplemented
        return self.rdtype == other.rdtype and self.wire_bytes() == other.wire_bytes()

    def __hash__(self) -> int:
        return hash((self.rdtype, self.wire_bytes()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}<{self.to_text()}>"


class ARdata(Rdata):
    rdtype = rdtypes.A

    def __init__(self, address: str):
        self.address = str(ipaddress.IPv4Address(address))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(ipaddress.IPv4Address(self.address).packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "ARdata":
        if rdlength != 4:
            raise RdataError(f"A rdata must be 4 octets, got {rdlength}")
        return cls(str(ipaddress.IPv4Address(reader.read_bytes(4))))

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_text(cls, text: str) -> "ARdata":
        return cls(text.strip())


class AAAARdata(Rdata):
    rdtype = rdtypes.AAAA

    def __init__(self, address: str):
        self.address = str(ipaddress.IPv6Address(address))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(ipaddress.IPv6Address(self.address).packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "AAAARdata":
        if rdlength != 16:
            raise RdataError(f"AAAA rdata must be 16 octets, got {rdlength}")
        return cls(str(ipaddress.IPv6Address(reader.read_bytes(16))))

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_text(cls, text: str) -> "AAAARdata":
        return cls(text.strip())


class _SingleNameRdata(Rdata):
    """Common base for CNAME / NS."""

    def __init__(self, target: Name):
        if not isinstance(target, Name):
            target = Name.from_text(str(target))
        self.target = target

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        return cls(reader.read_name())

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def from_text(cls, text: str):
        return cls(Name.from_text(text.strip()))


class CNAMERdata(_SingleNameRdata):
    rdtype = rdtypes.CNAME


class NSRdata(_SingleNameRdata):
    rdtype = rdtypes.NS


class SOARdata(Rdata):
    rdtype = rdtypes.SOA

    def __init__(
        self,
        mname: Name,
        rname: Name,
        serial: int,
        refresh: int = 7200,
        retry: int = 3600,
        expire: int = 1209600,
        minimum: int = 300,
    ):
        self.mname = mname if isinstance(mname, Name) else Name.from_text(str(mname))
        self.rname = rname if isinstance(rname, Name) else Name.from_text(str(rname))
        self.serial = serial & 0xFFFFFFFF
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.mname)
        writer.write_name(self.rname)
        writer.write_u32(self.serial)
        writer.write_u32(self.refresh)
        writer.write_u32(self.retry)
        writer.write_u32(self.expire)
        writer.write_u32(self.minimum)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SOARdata":
        mname = reader.read_name()
        rname = reader.read_name()
        serial, refresh, retry, expire, minimum = (
            reader.read_u32(),
            reader.read_u32(),
            reader.read_u32(),
            reader.read_u32(),
            reader.read_u32(),
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def from_text(cls, text: str) -> "SOARdata":
        fields = text.split()
        if len(fields) != 7:
            raise RdataError(f"SOA needs 7 fields, got {len(fields)}")
        return cls(
            Name.from_text(fields[0]),
            Name.from_text(fields[1]),
            int(fields[2]),
            int(fields[3]),
            int(fields[4]),
            int(fields[5]),
            int(fields[6]),
        )


class TXTRdata(Rdata):
    rdtype = rdtypes.TXT

    def __init__(self, strings: Tuple[bytes, ...]):
        if isinstance(strings, (str, bytes)):
            strings = (strings,)
        normalized = []
        for item in strings:
            if isinstance(item, str):
                item = item.encode()
            if len(item) > 255:
                raise RdataError("TXT string exceeds 255 octets")
            normalized.append(bytes(item))
        if not normalized:
            raise RdataError("TXT needs at least one string")
        self.strings = tuple(normalized)

    def to_wire(self, writer: WireWriter) -> None:
        for item in self.strings:
            writer.write_u8(len(item))
            writer.write_bytes(item)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TXTRdata":
        end = reader.position + rdlength
        strings = []
        while reader.position < end:
            length = reader.read_u8()
            strings.append(reader.read_bytes(length))
        return cls(tuple(strings))

    def to_text(self) -> str:
        return " ".join('"' + item.decode("utf-8", "replace").replace('"', '\\"') + '"' for item in self.strings)

    @classmethod
    def from_text(cls, text: str) -> "TXTRdata":
        text = text.strip()
        if text.startswith('"'):
            parts = [part for part in text.split('"') if part.strip() or part == ""]
            strings = [part for i, part in enumerate(text.split('"')) if i % 2 == 1]
        else:
            strings = text.split()
        return cls(tuple(item.encode() for item in strings))


class DNSKEYRdata(Rdata):
    """DNSKEY (RFC 4034 section 2). The public key blob is opaque here;
    crypto semantics live in :mod:`repro.dnssec`."""

    rdtype = rdtypes.DNSKEY

    FLAG_ZONE = 0x0100
    FLAG_SEP = 0x0001

    def __init__(self, flags: int, protocol: int, algorithm: int, public_key: bytes):
        self.flags = flags
        self.protocol = protocol
        self.algorithm = algorithm
        self.public_key = bytes(public_key)

    def is_ksk(self) -> bool:
        return bool(self.flags & self.FLAG_SEP)

    def key_tag(self) -> int:
        """RFC 4034 appendix B key tag computation."""
        rdata = self.wire_bytes()
        total = 0
        for i, byte in enumerate(rdata):
            total += byte << 8 if i % 2 == 0 else byte
        total += (total >> 16) & 0xFFFF
        return total & 0xFFFF

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.flags)
        writer.write_u8(self.protocol)
        writer.write_u8(self.algorithm)
        writer.write_bytes(self.public_key)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "DNSKEYRdata":
        if rdlength < 4:
            raise RdataError("DNSKEY rdata too short")
        flags = reader.read_u16()
        protocol = reader.read_u8()
        algorithm = reader.read_u8()
        public_key = reader.read_bytes(rdlength - 4)
        return cls(flags, protocol, algorithm, public_key)

    def to_text(self) -> str:
        import base64

        return f"{self.flags} {self.protocol} {self.algorithm} {base64.b64encode(self.public_key).decode()}"

    @classmethod
    def from_text(cls, text: str) -> "DNSKEYRdata":
        import base64

        fields = text.split()
        if len(fields) < 4:
            raise RdataError("DNSKEY needs 4 fields")
        return cls(int(fields[0]), int(fields[1]), int(fields[2]), base64.b64decode("".join(fields[3:])))


class DSRdata(Rdata):
    rdtype = rdtypes.DS

    def __init__(self, key_tag: int, algorithm: int, digest_type: int, digest: bytes):
        self.key_tag = key_tag
        self.algorithm = algorithm
        self.digest_type = digest_type
        self.digest = bytes(digest)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.key_tag)
        writer.write_u8(self.algorithm)
        writer.write_u8(self.digest_type)
        writer.write_bytes(self.digest)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "DSRdata":
        if rdlength < 4:
            raise RdataError("DS rdata too short")
        key_tag = reader.read_u16()
        algorithm = reader.read_u8()
        digest_type = reader.read_u8()
        digest = reader.read_bytes(rdlength - 4)
        return cls(key_tag, algorithm, digest_type, digest)

    def to_text(self) -> str:
        return f"{self.key_tag} {self.algorithm} {self.digest_type} {self.digest.hex().upper()}"

    @classmethod
    def from_text(cls, text: str) -> "DSRdata":
        fields = text.split()
        if len(fields) < 4:
            raise RdataError("DS needs 4 fields")
        return cls(int(fields[0]), int(fields[1]), int(fields[2]), bytes.fromhex("".join(fields[3:])))


class RRSIGRdata(Rdata):
    rdtype = rdtypes.RRSIG

    def __init__(
        self,
        type_covered: int,
        algorithm: int,
        labels: int,
        original_ttl: int,
        expiration: int,
        inception: int,
        key_tag: int,
        signer: Name,
        signature: bytes,
    ):
        self.type_covered = type_covered
        self.algorithm = algorithm
        self.labels = labels
        self.original_ttl = original_ttl
        self.expiration = expiration & 0xFFFFFFFF
        self.inception = inception & 0xFFFFFFFF
        self.key_tag = key_tag
        self.signer = signer if isinstance(signer, Name) else Name.from_text(str(signer))
        self.signature = bytes(signature)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.type_covered)
        writer.write_u8(self.algorithm)
        writer.write_u8(self.labels)
        writer.write_u32(self.original_ttl)
        writer.write_u32(self.expiration)
        writer.write_u32(self.inception)
        writer.write_u16(self.key_tag)
        # RFC 4034: signer name is never compressed.
        writer.write_name(self.signer, compress=False)
        writer.write_bytes(self.signature)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "RRSIGRdata":
        start = reader.position
        type_covered = reader.read_u16()
        algorithm = reader.read_u8()
        labels = reader.read_u8()
        original_ttl = reader.read_u32()
        expiration = reader.read_u32()
        inception = reader.read_u32()
        key_tag = reader.read_u16()
        signer = reader.read_name()
        consumed = reader.position - start
        signature = reader.read_bytes(rdlength - consumed)
        return cls(
            type_covered, algorithm, labels, original_ttl, expiration, inception, key_tag, signer, signature
        )

    def to_text(self) -> str:
        import base64

        return (
            f"{rdtypes.type_to_text(self.type_covered)} {self.algorithm} {self.labels} "
            f"{self.original_ttl} {self.expiration} {self.inception} {self.key_tag} "
            f"{self.signer.to_text()} {base64.b64encode(self.signature).decode()}"
        )

    @classmethod
    def from_text(cls, text: str) -> "RRSIGRdata":
        import base64

        fields = text.split()
        if len(fields) < 9:
            raise RdataError("RRSIG needs 9 fields")
        return cls(
            rdtypes.text_to_type(fields[0]),
            int(fields[1]),
            int(fields[2]),
            int(fields[3]),
            int(fields[4]),
            int(fields[5]),
            int(fields[6]),
            Name.from_text(fields[7]),
            base64.b64decode("".join(fields[8:])),
        )


class SVCBBase(Rdata):
    """Shared implementation for SVCB and HTTPS (RFC 9460 section 2)."""

    def __init__(self, priority: int, target: Name, params: SvcParams = None):
        if not 0 <= priority <= 0xFFFF:
            raise RdataError(f"SvcPriority {priority} out of range")
        if not isinstance(target, Name):
            target = Name.from_text(str(target))
        params = params if params is not None else SvcParams()
        if priority == 0 and len(params):
            raise RdataError("AliasMode (SvcPriority 0) must not carry SvcParams")
        self.priority = priority
        self.target = target
        self.params = params

    # -- mode helpers -----------------------------------------------------

    @property
    def is_alias_mode(self) -> bool:
        return self.priority == 0

    @property
    def is_service_mode(self) -> bool:
        return self.priority != 0

    def effective_target(self, owner: Name) -> Name:
        """RFC 9460: a TargetName of "." means the owner name itself
        (ServiceMode) or is invalid-ish (AliasMode, "no alias")."""
        if self.target == Name.root():
            return owner
        return self.target

    # -- codecs ------------------------------------------------------------

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.priority)
        # RFC 9460: TargetName is never compressed.
        writer.write_name(self.target, compress=False)
        writer.write_bytes(self.params.to_wire())

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        start = reader.position
        priority = reader.read_u16()
        target = reader.read_name()
        consumed = reader.position - start
        try:
            params = SvcParams.from_wire(reader.read_bytes(rdlength - consumed))
        except SvcParamError as exc:
            raise RdataError(str(exc)) from exc
        return cls(priority, target, params)

    def to_text(self) -> str:
        text = f"{self.priority} {self.target.to_text()}"
        params_text = self.params.to_text()
        if params_text:
            text += " " + params_text
        return text

    @classmethod
    def from_text(cls, text: str):
        fields = text.split(None, 2)
        if len(fields) < 2:
            raise RdataError("SVCB/HTTPS needs at least priority and target")
        priority = int(fields[0])
        target = Name.from_text(fields[1])
        try:
            params = SvcParams.from_text(fields[2]) if len(fields) > 2 else SvcParams()
        except SvcParamError as exc:
            raise RdataError(str(exc)) from exc
        return cls(priority, target, params)


class SVCBRdata(SVCBBase):
    rdtype = rdtypes.SVCB


class HTTPSRdata(SVCBBase):
    rdtype = rdtypes.HTTPS


_RDATA_CLASSES: Dict[int, Type[Rdata]] = {
    rdtypes.A: ARdata,
    rdtypes.AAAA: AAAARdata,
    rdtypes.CNAME: CNAMERdata,
    rdtypes.NS: NSRdata,
    rdtypes.SOA: SOARdata,
    rdtypes.TXT: TXTRdata,
    rdtypes.DNSKEY: DNSKEYRdata,
    rdtypes.DS: DSRdata,
    rdtypes.RRSIG: RRSIGRdata,
    rdtypes.SVCB: SVCBRdata,
    rdtypes.HTTPS: HTTPSRdata,
}


class GenericRdata(Rdata):
    """RFC 3597 opaque rdata for unknown types."""

    def __init__(self, rdtype: int, data: bytes):
        self.rdtype = rdtype
        self.data = bytes(data)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "GenericRdata":  # pragma: no cover
        raise NotImplementedError("use rdata_from_wire")

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def from_text(cls, text: str) -> "GenericRdata":  # pragma: no cover
        raise NotImplementedError("use rdata_from_text with an explicit type")


def rdata_from_wire(rdtype: int, reader: WireReader, rdlength: int) -> Rdata:
    cls = _RDATA_CLASSES.get(rdtype)
    if cls is None:
        return GenericRdata(rdtype, reader.read_bytes(rdlength))
    end = reader.position + rdlength
    rdata = cls.from_wire(reader, rdlength)
    if reader.position != end:
        raise RdataError(
            f"{rdtypes.type_to_text(rdtype)} rdata length mismatch: "
            f"consumed {reader.position - (end - rdlength)} of {rdlength}"
        )
    return rdata


def rdata_from_text(rdtype: int, text: str) -> Rdata:
    cls = _RDATA_CLASSES.get(rdtype)
    if cls is None:
        fields = text.split()
        if len(fields) >= 2 and fields[0] == "\\#":
            return GenericRdata(rdtype, bytes.fromhex("".join(fields[2:])))
        raise RdataError(f"no presentation parser for type {rdtype}")
    return cls.from_text(text)
