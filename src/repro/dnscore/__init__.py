"""DNS substrate: names, rdata, RRsets, messages, wire codec.

This package is a from-scratch implementation of the pieces of the DNS the
study depends on: RFC 1035 message/wire format with name compression,
RFC 9460 SVCB/HTTPS rdata (SvcParams live in :mod:`repro.svcb`), and the
DNSSEC record types (RFC 4034) whose chain logic lives in
:mod:`repro.dnssec`.
"""

from . import rdtypes
from .names import Name, apex_of, www_of
from .rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    DNSKEYRdata,
    DSRdata,
    GenericRdata,
    HTTPSRdata,
    NSRdata,
    Rdata,
    RdataError,
    RRSIGRdata,
    SOARdata,
    SVCBRdata,
    TXTRdata,
    rdata_from_text,
    rdata_from_wire,
)
from .message import Message, Question
from .rrset import RRset
from .wire import WireError, WireReader, WireWriter

__all__ = [
    "rdtypes",
    "Name",
    "apex_of",
    "www_of",
    "Rdata",
    "RdataError",
    "ARdata",
    "AAAARdata",
    "CNAMERdata",
    "NSRdata",
    "SOARdata",
    "TXTRdata",
    "DNSKEYRdata",
    "DSRdata",
    "RRSIGRdata",
    "SVCBRdata",
    "HTTPSRdata",
    "GenericRdata",
    "rdata_from_text",
    "rdata_from_wire",
    "Message",
    "Question",
    "RRset",
    "WireError",
    "WireReader",
    "WireWriter",
]
