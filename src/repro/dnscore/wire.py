"""Low-level DNS wire-format reader/writer.

The writer supports RFC 1035 name compression; the reader follows
compression pointers with loop protection.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from .names import BadPointer, Name

_MAX_POINTER_HOPS = 128
_POINTER_MASK = 0xC000


class WireError(ValueError):
    """Raised on truncated or malformed wire data."""


class WireWriter:
    """Accumulates a DNS message, compressing names against earlier output."""

    def __init__(self, enable_compression: bool = True):
        self._buf = bytearray()
        self._offsets: Dict[Tuple[bytes, ...], int] = {}
        self._enable_compression = enable_compression

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def write_bytes(self, data: bytes) -> None:
        self._buf.extend(data)

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self._buf.extend(struct.pack("!H", value & 0xFFFF))

    def write_u32(self, value: int) -> None:
        self._buf.extend(struct.pack("!I", value & 0xFFFFFFFF))

    def write_name(self, name: Name, compress: bool = True) -> None:
        """Write *name*, emitting a compression pointer for any suffix
        already present in the message."""
        labels = name.labels
        for i in range(len(labels)):
            suffix = tuple(label.lower() for label in labels[i:])
            if suffix == (b"",):
                break
            offset = self._offsets.get(suffix) if (compress and self._enable_compression) else None
            if offset is not None and offset < 0x4000:
                self._buf.extend(struct.pack("!H", _POINTER_MASK | offset))
                return
            if len(self._buf) < 0x4000:
                self._offsets[suffix] = len(self._buf)
            label = labels[i]
            self._buf.append(len(label))
            self._buf.extend(label)
        self._buf.append(0)

    def reserve_u16(self) -> int:
        """Reserve two bytes (e.g. for RDLENGTH) and return their offset."""
        offset = len(self._buf)
        self._buf.extend(b"\x00\x00")
        return offset

    def patch_u16(self, offset: int, value: int) -> None:
        struct.pack_into("!H", self._buf, offset, value & 0xFFFF)


class WireReader:
    """Sequential reader over a full DNS message (needed for pointers)."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= len(self._data):
            raise WireError(f"seek to {offset} outside message of {len(self._data)} bytes")
        self._pos = offset

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read_bytes(self, count: int) -> bytes:
        if self.remaining() < count:
            raise WireError(f"wanted {count} bytes, only {self.remaining()} remain")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_u8(self) -> int:
        return self.read_bytes(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read_bytes(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read_bytes(4))[0]

    def read_name(self) -> Name:
        """Read a possibly-compressed name starting at the current offset."""
        labels = []
        jumped = False
        hops = 0
        pos = self._pos
        total = 0
        while True:
            if pos >= len(self._data):
                raise WireError("name runs past end of message")
            length = self._data[pos]
            if length & 0xC0 == 0xC0:
                if pos + 1 >= len(self._data):
                    raise WireError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self._data[pos + 1]
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise BadPointer("compression pointer loop")
                if not jumped:
                    self._pos = pos + 2
                    jumped = True
                if target >= pos:
                    raise BadPointer("forward compression pointer")
                pos = target
                continue
            if length & 0xC0:
                raise WireError(f"reserved label type 0x{length & 0xC0:02x}")
            if length == 0:
                labels.append(b"")
                if not jumped:
                    self._pos = pos + 1
                break
            if pos + 1 + length > len(self._data):
                raise WireError("label runs past end of message")
            total += length + 1
            if total > 255:
                raise WireError("decoded name exceeds 255 octets")
            labels.append(self._data[pos + 1 : pos + 1 + length])
            pos += 1 + length
        return Name(labels)
