"""Domain name handling.

Implements DNS domain names as immutable label sequences with both
presentation-format (``"www.example.com."``) and wire-format (RFC 1035
section 3.1, including compression pointers) codecs.

Names are case-preserving but compare and hash case-insensitively, which
matches resolver behaviour (RFC 4343).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


class NameError_(ValueError):
    """Raised for malformed domain names (avoids shadowing builtin NameError)."""


class LabelTooLong(NameError_):
    """A single label exceeds 63 octets."""


class NameTooLong(NameError_):
    """The encoded name exceeds 255 octets."""


class EmptyLabel(NameError_):
    """A label is empty (e.g. ``a..com``)."""


class BadEscape(NameError_):
    """Invalid escape sequence in presentation format."""


class BadPointer(NameError_):
    """Invalid compression pointer in wire format."""


def _validate_labels(labels: Tuple[bytes, ...]) -> None:
    total = 0
    for i, label in enumerate(labels):
        if len(label) > MAX_LABEL_LENGTH:
            raise LabelTooLong(f"label {label!r} exceeds {MAX_LABEL_LENGTH} octets")
        if not label and i != len(labels) - 1:
            raise EmptyLabel("empty label in the middle of a name")
        total += len(label) + 1
    if total > MAX_NAME_LENGTH:
        raise NameTooLong(f"name would encode to {total} octets")


class Name:
    """An immutable DNS domain name.

    A *absolute* name ends with the root label (empty bytes). All names
    produced by :meth:`from_text` are absolute; relative names are supported
    only as intermediate values for :meth:`relativize` output.
    """

    __slots__ = ("_labels", "_hash", "_key_cache")

    def __init__(self, labels: Iterable[bytes]):
        labels = tuple(bytes(label) for label in labels)
        _validate_labels(labels)
        self._labels = labels
        self._hash: Optional[int] = None
        self._key_cache: Optional[Tuple[bytes, ...]] = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format. The trailing dot is optional; the
        result is always absolute.

        Supports ``\\.`` escapes and ``\\DDD`` decimal escapes.
        Results are memoized (names are immutable).
        """
        cached = _FROM_TEXT_CACHE.get(text)
        if cached is not None:
            return cached
        name = cls._from_text_uncached(text)
        if len(_FROM_TEXT_CACHE) > 400_000:
            _FROM_TEXT_CACHE.clear()
        _FROM_TEXT_CACHE[text] = name
        return name

    @classmethod
    def _from_text_uncached(cls, text: str) -> "Name":
        if text in (".", ""):
            return cls((b"",))
        labels = []
        current = bytearray()
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise BadEscape("trailing backslash")
                nxt = text[i + 1]
                if nxt.isdigit():
                    if i + 3 >= n or not (text[i + 2].isdigit() and text[i + 3].isdigit()):
                        raise BadEscape(f"bad decimal escape at offset {i}")
                    value = int(text[i + 1 : i + 4])
                    if value > 255:
                        raise BadEscape(f"escape value {value} out of range")
                    current.append(value)
                    i += 4
                else:
                    current.append(ord(nxt))
                    i += 2
                continue
            if ch == ".":
                if not current:
                    raise EmptyLabel(f"empty label in {text!r}")
                labels.append(bytes(current))
                current = bytearray()
            else:
                current.append(ord(ch))
            i += 1
        if current:
            labels.append(bytes(current))
        labels.append(b"")
        return cls(labels)

    @classmethod
    def root(cls) -> "Name":
        return cls((b"",))

    # -- basic protocol ---------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        return self._labels

    def is_absolute(self) -> bool:
        return bool(self._labels) and self._labels[-1] == b""

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def _key(self) -> Tuple[bytes, ...]:
        key = self._key_cache
        if key is None:
            key = tuple(label.lower() for label in self._labels)
            self._key_cache = key
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering (RFC 4034 section 6.1): compare label
        # sequences right-to-left, case-insensitively.
        return self._canonical_order_key() < other._canonical_order_key()

    def _canonical_order_key(self) -> Tuple[bytes, ...]:
        labels = [label.lower() for label in self._labels if label != b""]
        return tuple(reversed(labels))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __getstate__(self):
        # Only the labels cross a pickle boundary, never the caches: the
        # cached hash bakes in this interpreter's str-hash seed, and a
        # Name unpickled into another interpreter (world snapshots are
        # loaded by resumed collections — see simnet/snapshot.py) would
        # keep answering with the stale value, silently missing in every
        # dict keyed by freshly constructed Names. Wrapped in a 1-tuple
        # so the state is truthy even for an empty relative name (pickle
        # skips __setstate__ entirely on a falsy state).
        return (self._labels,)

    def __setstate__(self, state) -> None:
        (self._labels,) = state  # validated when first constructed
        self._hash = None
        self._key_cache = None

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    # -- text -------------------------------------------------------------

    def to_text(self, omit_final_dot: bool = False) -> str:
        if self._labels == (b"",):
            return "."
        parts = []
        for label in self._labels:
            if label == b"":
                continue
            chunk = []
            for byte in label:
                ch = chr(byte)
                if ch in ".\\":
                    chunk.append("\\" + ch)
                elif 0x21 <= byte <= 0x7E:
                    chunk.append(ch)
                else:
                    chunk.append("\\%03d" % byte)
            parts.append("".join(chunk))
        text = ".".join(parts)
        if self.is_absolute() and not omit_final_dot:
            text += "."
        return text

    # -- structure --------------------------------------------------------

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        Raises :class:`NameError_` on the root name.
        """
        if self._labels == (b"",):
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if *self* is equal to or underneath *other*."""
        if len(other._labels) > len(self._labels):
            return False
        return self._key()[-len(other._labels):] == other._key()

    def prepend(self, label: str) -> "Name":
        """Return a new name with *label* prepended (e.g. ``www``)."""
        return Name((label.encode("ascii"),) + self._labels)

    def split_depth(self) -> int:
        """Number of non-root labels."""
        return len(self._labels) - (1 if self.is_absolute() else 0)

    # -- wire -------------------------------------------------------------

    def to_wire(self) -> bytes:
        """Uncompressed wire encoding."""
        out = bytearray()
        for label in self._labels:
            out.append(len(label))
            out.extend(label)
        if not self.is_absolute():
            out.append(0)
        return bytes(out)


_FROM_TEXT_CACHE: dict = {}

ROOT = Name.root()


def www_of(name: Name) -> Name:
    """The ``www`` subdomain of *name* (identity if already www-prefixed)."""
    if name.labels and name.labels[0].lower() == b"www":
        return name
    return name.prepend("www")


def apex_of(name: Name) -> Name:
    """Strip a leading ``www`` label if present."""
    if name.labels and name.labels[0].lower() == b"www":
        return name.parent()
    return name
