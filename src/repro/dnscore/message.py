"""DNS message model and wire codec (RFC 1035 section 4).

Supports the header flags relevant to the study — notably AD (Authenticated
Data, RFC 3655/4035) which the scanner records for DNSSEC analysis — and the
four sections. Records in a section are grouped into RRsets on parse.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from . import rdtypes
from .names import Name
from .rdata import Rdata, rdata_from_wire
from .rrset import RRset
from .wire import WireError, WireReader, WireWriter

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080
FLAG_AD = 0x0020
FLAG_CD = 0x0010


class Question:
    """A single question section entry."""

    def __init__(self, name: Name, rdtype: int, rdclass: int = rdtypes.IN):
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        self.name = name
        self.rdtype = rdtype
        self.rdclass = rdclass

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Question):
            return NotImplemented
        return (self.name, self.rdtype, self.rdclass) == (other.name, other.rdtype, other.rdclass)

    def __hash__(self) -> int:
        return hash((self.name, self.rdtype, self.rdclass))

    def __repr__(self) -> str:
        return f"Question({self.name.to_text()} {rdtypes.type_to_text(self.rdtype)})"


class Message:
    """A DNS query or response."""

    def __init__(self, msg_id: int = 0):
        self.msg_id = msg_id & 0xFFFF
        self.flags = 0
        self.rcode = rdtypes.NOERROR
        self.opcode = rdtypes.QUERY
        self.questions: List[Question] = []
        self.answers: List[RRset] = []
        self.authority: List[RRset] = []
        self.additional: List[RRset] = []
        # EDNS0 (RFC 6891): carried as an OPT pseudo-RR on the wire.
        self.use_edns = False
        self.edns_payload_size = 1232
        self.dnssec_ok = False  # the DO bit — ask for RRSIGs

    # -- flag helpers ------------------------------------------------------

    def _flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def _set_flag(self, mask: int, value: bool) -> None:
        if value:
            self.flags |= mask
        else:
            self.flags &= ~mask

    @property
    def is_response(self) -> bool:
        return self._flag(FLAG_QR)

    @is_response.setter
    def is_response(self, value: bool) -> None:
        self._set_flag(FLAG_QR, value)

    @property
    def authoritative(self) -> bool:
        return self._flag(FLAG_AA)

    @authoritative.setter
    def authoritative(self, value: bool) -> None:
        self._set_flag(FLAG_AA, value)

    @property
    def truncated(self) -> bool:
        return self._flag(FLAG_TC)

    @truncated.setter
    def truncated(self, value: bool) -> None:
        self._set_flag(FLAG_TC, value)

    @property
    def recursion_desired(self) -> bool:
        return self._flag(FLAG_RD)

    @recursion_desired.setter
    def recursion_desired(self, value: bool) -> None:
        self._set_flag(FLAG_RD, value)

    @property
    def recursion_available(self) -> bool:
        return self._flag(FLAG_RA)

    @recursion_available.setter
    def recursion_available(self, value: bool) -> None:
        self._set_flag(FLAG_RA, value)

    @property
    def authenticated_data(self) -> bool:
        return self._flag(FLAG_AD)

    @authenticated_data.setter
    def authenticated_data(self, value: bool) -> None:
        self._set_flag(FLAG_AD, value)

    @property
    def checking_disabled(self) -> bool:
        return self._flag(FLAG_CD)

    @checking_disabled.setter
    def checking_disabled(self, value: bool) -> None:
        self._set_flag(FLAG_CD, value)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def make_query(cls, name, rdtype: int, msg_id: int = 0, want_dnssec: bool = False) -> "Message":
        query = cls(msg_id)
        query.recursion_desired = True
        if want_dnssec:
            query.use_edns = True
            query.dnssec_ok = True
        query.questions.append(Question(name, rdtype))
        return query

    def make_response(self) -> "Message":
        response = Message(self.msg_id)
        response.is_response = True
        response.recursion_desired = self.recursion_desired
        response.questions = list(self.questions)
        # EDNS is negotiated: a server answers with EDNS iff asked with it.
        response.use_edns = self.use_edns
        response.dnssec_ok = self.dnssec_ok
        return response

    # -- section access -------------------------------------------------------

    def find_rrset(self, section: List[RRset], name: Name, rdtype: int) -> Optional[RRset]:
        for rrset in section:
            if rrset.name == name and rrset.rdtype == rdtype:
                return rrset
        return None

    def get_answer(self, name, rdtype: int) -> Optional[RRset]:
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        return self.find_rrset(self.answers, name, rdtype)

    def answer_rrsets_of_type(self, rdtype: int) -> List[RRset]:
        return [rrset for rrset in self.answers if rrset.rdtype == rdtype]

    # -- wire codec ------------------------------------------------------------

    def to_wire(self) -> bytes:
        writer = WireWriter()
        flags = (self.flags & 0x7FB0) | ((self.opcode & 0xF) << 11) | (self.rcode & 0xF)
        if self.is_response:
            flags |= FLAG_QR
        writer.write_u16(self.msg_id)
        writer.write_u16(flags)
        writer.write_u16(len(self.questions))
        counts = []
        for section in (self.answers, self.authority, self.additional):
            counts.append(sum(len(rrset) for rrset in section))
        if self.use_edns:
            counts[2] += 1  # the OPT pseudo-RR rides in ADDITIONAL
        for count in counts:
            writer.write_u16(count)
        for question in self.questions:
            writer.write_name(question.name)
            writer.write_u16(question.rdtype)
            writer.write_u16(question.rdclass)
        for section in (self.answers, self.authority, self.additional):
            for rrset in section:
                for rdata in rrset:
                    writer.write_name(rrset.name)
                    writer.write_u16(rrset.rdtype)
                    writer.write_u16(rrset.rdclass)
                    writer.write_u32(rrset.ttl)
                    rdlength_offset = writer.reserve_u16()
                    before = len(writer)
                    rdata.to_wire(writer)
                    writer.patch_u16(rdlength_offset, len(writer) - before)
        if self.use_edns:
            # OPT RR (RFC 6891): root owner; CLASS carries the payload
            # size; the high TTL bits carry ext-rcode/version, the low 16
            # the flags (DO = 0x8000).
            writer.write_name(Name.root())
            writer.write_u16(rdtypes.OPT)
            writer.write_u16(self.edns_payload_size)
            writer.write_u32(0x8000 if self.dnssec_ok else 0)
            writer.write_u16(0)  # no EDNS options
        return writer.getvalue()

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        if len(data) < 12:
            raise WireError("message shorter than header")
        reader = WireReader(data)
        msg = cls(reader.read_u16())
        flags = reader.read_u16()
        msg.flags = flags & 0x7FB0
        if flags & FLAG_QR:
            msg.is_response = True
        msg.opcode = (flags >> 11) & 0xF
        msg.rcode = flags & 0xF
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        for _ in range(qdcount):
            name = reader.read_name()
            rdtype = reader.read_u16()
            rdclass = reader.read_u16()
            msg.questions.append(Question(name, rdtype, rdclass))
        for count, section in ((ancount, msg.answers), (nscount, msg.authority), (arcount, msg.additional)):
            for _ in range(count):
                name = reader.read_name()
                rdtype = reader.read_u16()
                rdclass = reader.read_u16()
                ttl = reader.read_u32()
                rdlength = reader.read_u16()
                if rdtype == rdtypes.OPT:
                    reader.read_bytes(rdlength)
                    msg.use_edns = True
                    msg.edns_payload_size = rdclass
                    msg.dnssec_ok = bool(ttl & 0x8000)
                    continue
                rdata = rdata_from_wire(rdtype, reader, rdlength)
                rrset = msg.find_rrset(section, name, rdtype)
                if rrset is None or rrset.ttl != ttl:
                    rrset = RRset(name, rdtype, ttl, rdclass=rdclass)
                    section.append(rrset)
                rrset.add(rdata)
        return msg

    def __repr__(self) -> str:
        question = self.questions[0] if self.questions else None
        return (
            f"Message(id={self.msg_id}, {'response' if self.is_response else 'query'}, "
            f"rcode={rdtypes.rcode_to_text(self.rcode)}, q={question}, "
            f"an={len(self.answers)} rrsets)"
        )
