"""RRsets: a name + type + TTL + one or more rdatas (RFC 2181 section 5)."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from . import rdtypes
from .names import Name
from .rdata import Rdata, rdata_from_text


class RRset:
    """A mutable resource record set.

    All rdatas share the name, type, class, and TTL (RFC 2181 requires a
    uniform TTL across an RRset).
    """

    def __init__(
        self,
        name: Name,
        rdtype: int,
        ttl: int,
        rdatas: Iterable[Rdata] = (),
        rdclass: int = rdtypes.IN,
    ):
        if not isinstance(name, Name):
            name = Name.from_text(str(name))
        self.name = name
        self.rdtype = rdtype
        self.ttl = ttl
        self.rdclass = rdclass
        self._rdatas: List[Rdata] = []
        for rdata in rdatas:
            self.add(rdata)

    @classmethod
    def from_text(cls, name: str, ttl: int, rdtype_text: str, *rdata_texts: str) -> "RRset":
        rdtype = rdtypes.text_to_type(rdtype_text)
        rrset = cls(Name.from_text(name), rdtype, ttl)
        for text in rdata_texts:
            rrset.add(rdata_from_text(rdtype, text))
        return rrset

    def add(self, rdata: Rdata) -> None:
        if rdata.rdtype != self.rdtype:
            raise ValueError(
                f"rdata type {rdata.rdtype} does not match RRset type {self.rdtype}"
            )
        if rdata not in self._rdatas:
            self._rdatas.append(rdata)

    def remove(self, rdata: Rdata) -> None:
        self._rdatas.remove(rdata)

    @property
    def rdatas(self) -> List[Rdata]:
        return list(self._rdatas)

    def __len__(self) -> int:
        return len(self._rdatas)

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self._rdatas)

    def __getitem__(self, index: int) -> Rdata:
        return self._rdatas[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRset):
            return NotImplemented
        return (
            self.name == other.name
            and self.rdtype == other.rdtype
            and self.rdclass == other.rdclass
            and self.ttl == other.ttl
            and sorted(r.wire_bytes() for r in self._rdatas)
            == sorted(r.wire_bytes() for r in other._rdatas)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.name,
                self.rdtype,
                self.rdclass,
                self.ttl,
                tuple(sorted(r.wire_bytes() for r in self._rdatas)),
            )
        )

    def __repr__(self) -> str:
        return f"RRset({self.to_text()!r})"

    def to_text(self) -> str:
        type_text = rdtypes.type_to_text(self.rdtype)
        lines = [
            f"{self.name.to_text()} {self.ttl} IN {type_text} {rdata.to_text()}"
            for rdata in self._rdatas
        ]
        return "\n".join(lines)

    def copy(self, ttl: Optional[int] = None) -> "RRset":
        return RRset(
            self.name,
            self.rdtype,
            self.ttl if ttl is None else ttl,
            self._rdatas,
            self.rdclass,
        )

    def canonical_rdata_order(self) -> List[Rdata]:
        """Rdatas sorted by canonical wire form (RFC 4034 section 6.3),
        as used when constructing signature input."""
        return sorted(self._rdatas, key=lambda rdata: rdata.wire_bytes())
