"""DNS record type and class constants plus rcode/opcode values."""

from __future__ import annotations

# RR types (subset used by the study).
A = 1
NS = 2
CNAME = 5
SOA = 6
TXT = 16
AAAA = 28
OPT = 41  # EDNS0 pseudo-RR (RFC 6891)
DS = 43
RRSIG = 46
DNSKEY = 48
SVCB = 64
HTTPS = 65

_TYPE_NAMES = {
    A: "A",
    NS: "NS",
    CNAME: "CNAME",
    SOA: "SOA",
    TXT: "TXT",
    AAAA: "AAAA",
    OPT: "OPT",
    DS: "DS",
    RRSIG: "RRSIG",
    DNSKEY: "DNSKEY",
    SVCB: "SVCB",
    HTTPS: "HTTPS",
}
_NAME_TYPES = {name: value for value, name in _TYPE_NAMES.items()}

# Classes.
IN = 1

# Rcodes.
NOERROR = 0
FORMERR = 1
SERVFAIL = 2
NXDOMAIN = 3
NOTIMP = 4
REFUSED = 5

_RCODE_NAMES = {
    NOERROR: "NOERROR",
    FORMERR: "FORMERR",
    SERVFAIL: "SERVFAIL",
    NXDOMAIN: "NXDOMAIN",
    NOTIMP: "NOTIMP",
    REFUSED: "REFUSED",
}

# Opcodes.
QUERY = 0


def type_to_text(rdtype: int) -> str:
    return _TYPE_NAMES.get(rdtype, f"TYPE{rdtype}")


def text_to_type(text: str) -> int:
    text = text.upper()
    if text in _NAME_TYPES:
        return _NAME_TYPES[text]
    if text.startswith("TYPE"):
        return int(text[4:])
    raise ValueError(f"unknown RR type {text!r}")


def rcode_to_text(rcode: int) -> str:
    return _RCODE_NAMES.get(rcode, f"RCODE{rcode}")
