"""Unified Study API: declarative StudySpec/ExecutionPlan facade over the
measurement campaign machinery.

Four generations of capability (sharding, batching, world snapshots,
continuous collection) accreted onto ``load_or_run_campaign`` as
positional knobs, duplicated as ``repro-scan`` flags and ``REPRO_*``
bench env vars. This module replaces that kwarg-threaded surface with
three objects:

* :class:`StudySpec` — **what** is measured. The world
  :class:`~repro.simnet.config.SimConfig` plus the schedule knobs
  (``day_step``, window overrides, ``ech_sample``, feature toggles).
  These fields define dataset *identity* and are the single source of
  the canonical cache tag: two studies with equal specs share a cached
  dataset, and nothing outside the spec may influence the tag.

* :class:`ExecutionPlan` — **how** it runs. Workers, batching, the
  world-snapshot cache, GC policy, cache/checkpoint/release directories,
  and the continuous partitioning. Every plan knob is guaranteed not to
  change the resulting dataset (the continuous knobs do join the cache
  *key*, so a half-finished checkpoint can never alias a one-shot cache
  entry — but the finished dataset is value-equal either way).
  :meth:`ExecutionPlan.from_env` absorbs the ``REPRO_*`` bench knobs.

* :class:`Study` — the compiled session. Owns the persistent
  :class:`~repro.scanner.pipeline.ParallelCampaignRunner` pool and the
  continuous-collection checkpoint lifecycle, and exposes ``run()``,
  ``resume()``, ``dataset()``, ``export(dir)``, ``release(tag)``, and
  ``close()`` (also usable as a context manager).

Migrating from the old kwarg surface::

    old load_or_run_campaign kwarg        new home
    ------------------------------------  --------------------------------
    config                                StudySpec.config
    day_step                              StudySpec.day_step
    start / end                           StudySpec.start / StudySpec.end
    ech_sample                            StudySpec.ech_sample
    with_ech_hourly                       StudySpec.with_ech_hourly
    with_dnssec_snapshot                  StudySpec.with_dnssec_snapshot
    cache_dir                             ExecutionPlan.cache_dir
    workers                               ExecutionPlan.workers
    batch                                 ExecutionPlan.batch
    snapshot_dir                          ExecutionPlan.snapshot_dir
    continuous                            ExecutionPlan.continuous
    checkpoint_dir                        ExecutionPlan.checkpoint_dir
    days_per_increment                    ExecutionPlan.days_per_increment
    max_increments                        ExecutionPlan.max_increments
    verbose                               Study.run(progress=...)
    REPRO_WORKERS/BATCH/SNAPSHOT/...      ExecutionPlan.from_env()

Unknown field names raise ``TypeError`` at construction (the old
``**kwargs`` surface silently accepted — and cache-keyed — misspelled
options). ``load_or_run_campaign`` survives as a thin deprecation shim
that builds a ``Study``; its cache paths are byte-identical to the
pre-facade keys, so existing ``.cache`` entries keep hitting.

**Releases.** :meth:`Study.release` completes the paper's "collect and
release periodically" loop: it snapshots the study's merged dataset and
every figure CSV (:func:`~repro.reporting.export.export_figure_data`)
under ``<release_dir>/<tag>/`` and writes a ``manifest.json`` carrying
coverage QA (missing scan days + cadence gaps from
:func:`~repro.scanner.incremental.coverage_gaps`) and per-file SHA-256
digests; :func:`validate_release` re-checks a release directory against
its manifest. Exposed on the CLI as ``repro-scan --release TAG``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import warnings
from typing import Callable, Dict, List, Mapping, Optional

from .gcutils import paused_gc
from .scanner import campaign
from .scanner.collector import ContinuousCollector, has_checkpoint
from .scanner.dataset import Dataset, cache_path, checkpoint_dir_path
from .scanner.incremental import coverage_gaps
from .scanner.pipeline import ParallelCampaignRunner
from .simnet.config import SimConfig
from .simnet.faults import FaultSchedule

RELEASE_VERSION = 1

_RELEASE_MAGIC = "repro-study-release"
_MANIFEST = "manifest.json"
_RELEASE_DATASET = "dataset.pkl.gz"
_FIGURES_SUBDIR = "figures"
_DEFAULT_CACHE_DIR = ".cache"


class StudyError(RuntimeError):
    """A Study operation that cannot proceed (no dataset collected yet,
    incomplete release, invalid release directory, ...)."""


class _Unset:
    """Sentinel for schedule fields the spec leaves at the campaign
    default. Distinct from ``None`` so an *explicitly* passed ``None``
    (a legal override value) still reaches the cache tag exactly as the
    old kwarg surface recorded it."""

    def __repr__(self) -> str:  # keeps StudySpec reprs readable
        return "UNSET"


UNSET = _Unset()

# Spec fields forwarded to build_schedule()/the cache tag when set.
_SCHEDULE_FIELDS = (
    "start", "end", "ech_sample", "with_ech_hourly", "with_dnssec_snapshot",
)

# Spec fields whose identity is carried outside cache_tag() itself.
# codelint's TAG01 rule enforces that every StudySpec field is either in
# _SCHEDULE_FIELDS, read by cache_tag(), or listed here with the reason
# — so a new field can never silently alias cache entries.
_TAG_EXEMPT = {
    "day_step": "cache_path() embeds day_step in the cache filename, so "
                "two specs differing in day_step already name different "
                "cache entries",
}


@dataclasses.dataclass(frozen=True)
class StudySpec:
    """What a study measures: the world plus the scan schedule.

    Equal specs name the same dataset — every field here (and nothing
    else) feeds the canonical cache tag. Schedule fields left ``UNSET``
    use the campaign defaults and stay out of the tag, matching how the
    old kwarg surface only keyed on arguments actually passed.
    """

    config: Optional[SimConfig] = None
    day_step: int = 7
    start: object = UNSET  # datetime.date
    end: object = UNSET  # datetime.date
    ech_sample: object = UNSET  # int
    with_ech_hourly: object = UNSET  # bool
    with_dnssec_snapshot: object = UNSET  # bool
    # Chaos scenario: a declarative fault schedule injected into the
    # world for the whole run (None/empty = the fault-free study). Part
    # of dataset identity — the faults shape every observation — so it
    # joins the cache tag via its canonical string form.
    scenario: Optional[FaultSchedule] = None

    def __post_init__(self):
        if self.config is None:
            object.__setattr__(self, "config", SimConfig.from_env())
        if not isinstance(self.config, SimConfig):
            raise TypeError(f"config must be a SimConfig, got {self.config!r}")
        if self.scenario is not None and not isinstance(self.scenario, FaultSchedule):
            raise TypeError(
                f"scenario must be a FaultSchedule, got {self.scenario!r}"
            )
        if not isinstance(self.day_step, int) or isinstance(self.day_step, bool):
            raise TypeError(f"day_step must be an int, got {self.day_step!r}")
        if self.day_step < 1:
            raise ValueError("day_step must be >= 1")
        # Every override must be tag-able (primitives/dates only);
        # rejecting here surfaces bad values at construction instead of
        # deep inside a cache-path computation.
        campaign.canonical_cache_tag(self.schedule_overrides())

    def schedule_overrides(self) -> Dict[str, object]:
        """The schedule fields this spec explicitly sets (identity-
        relevant kwargs beyond ``day_step``)."""
        return {
            name: getattr(self, name)
            for name in _SCHEDULE_FIELDS
            if getattr(self, name) is not UNSET
        }

    def build_schedule(self) -> "campaign.CampaignSchedule":
        """Resolve the spec into the concrete campaign scan plan."""
        return campaign.build_schedule(
            day_step=self.day_step, **self.schedule_overrides()
        )

    def cache_tag(self, extra: Optional[Mapping[str, object]] = None) -> str:
        """The canonical dataset-identity tag for this spec.

        *extra* lets the execution layer append key-separating knobs
        (the continuous partitioning) without owning a second tag
        derivation — this method remains the single source. The
        construction is byte-identical to the pre-facade
        ``load_or_run_campaign`` key, so existing cache entries survive.
        """
        tag_kwargs = self.schedule_overrides()
        # An empty schedule is the fault-free study: it stays out of the
        # tag so the key is byte-identical to the pre-scenario construction
        # (existing cache entries keep hitting).
        if self.scenario is not None and self.scenario:
            tag_kwargs["scenario"] = self.scenario.canonical_tag()
        if extra:
            tag_kwargs.update(extra)
        return (
            campaign.canonical_cache_tag(tag_kwargs)
            + "|"
            + repr(dataclasses.astuple(self.config))
        )


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """How a study runs: knobs guaranteed not to change the dataset.

    ``workers``/``batch``/``snapshot_dir``/``executor``/``gc_policy``
    trade wall-clock for resources; ``continuous`` +
    ``days_per_increment``/``max_increments``/``checkpoint_dir`` run the
    campaign as resumable (day-slice × domain-shard) increments against
    an on-disk checkpoint. The finished dataset is value-equal under
    every combination (the headline guarantees of PRs 1-4); only the
    continuous partitioning joins the cache key, so checkpoints never
    alias one-shot cache entries. ``answer_cache`` arms the worlds'
    layered answer fast path (rendered answers, zone-body reuse, wire
    bytes — default on); like the other knobs it never changes the
    dataset, so it stays out of ``StudySpec.cache_tag()``.
    """

    workers: int = 1
    batch: bool = False
    snapshot_dir: Optional[str] = None
    executor: str = "process"
    # "auto" leaves collection to the targeted pauses inside the
    # machinery (world build, snapshot load, batch loops); "pause"
    # additionally suspends cyclic GC for the whole run — fastest on
    # hosts with memory to spare, since full-heap passes over a built
    # World dominate small-campaign timings.
    gc_policy: str = "auto"
    cache_dir: str = _DEFAULT_CACHE_DIR
    continuous: bool = False
    checkpoint_dir: Optional[str] = None
    days_per_increment: int = 7
    max_increments: Optional[int] = None
    release_dir: str = "releases"
    answer_cache: bool = True

    def __post_init__(self):
        # Clamp like the runner/collector always have (workers=0 ran
        # serially on the old surface; keep that contract). The
        # continuous knobs are coerced to int so an env-var string can
        # never fork the cache/checkpoint key (str:'3' vs int:3).
        object.__setattr__(self, "workers", max(1, int(self.workers)))
        object.__setattr__(self, "days_per_increment", int(self.days_per_increment))
        if self.max_increments is not None:
            object.__setattr__(self, "max_increments", int(self.max_increments))
        if self.executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.gc_policy not in ("auto", "pause"):
            raise ValueError(f"unknown gc_policy {self.gc_policy!r}")
        if self.days_per_increment < 1:
            raise ValueError("need at least one scan day per increment")
        if self.max_increments is not None and self.max_increments < 0:
            raise ValueError("max_increments must be >= 0")
        if not self.continuous:
            stray = [
                name for name, given in (
                    ("checkpoint_dir", self.checkpoint_dir is not None),
                    ("days_per_increment", self.days_per_increment != 7),
                    ("max_increments", self.max_increments is not None),
                ) if given
            ]
            if stray:
                # Silently dropping these would lose the resumable /
                # bounded-increment contract the caller asked for.
                raise ValueError(f"{', '.join(stray)} require continuous=True")

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None, **overrides) -> "ExecutionPlan":
        """A plan absorbing the ``REPRO_*`` bench knobs.

        Reads ``REPRO_WORKERS``, ``REPRO_BATCH``, ``REPRO_SNAPSHOT``
        (world snapshots under ``<cache_dir>/worlds``),
        ``REPRO_CONTINUOUS``, ``REPRO_ANSWER_CACHE`` (default on —
        unlike the other flags, absence keeps the cache armed), and
        ``REPRO_GC``; explicit *overrides* win over the environment.
        """
        env = os.environ if environ is None else environ
        kwargs: Dict[str, object] = {}
        workers = env.get("REPRO_WORKERS")
        if workers:
            kwargs["workers"] = int(workers)
        kwargs["batch"] = _env_flag(env, "REPRO_BATCH")
        kwargs["continuous"] = _env_flag(env, "REPRO_CONTINUOUS")
        kwargs["answer_cache"] = (
            str(env.get("REPRO_ANSWER_CACHE", "1")).lower() in ("1", "true", "yes", "on")
        )
        gc_policy = env.get("REPRO_GC")
        if gc_policy:
            kwargs["gc_policy"] = gc_policy
        kwargs.update(overrides)
        if _env_flag(env, "REPRO_SNAPSHOT") and "snapshot_dir" not in kwargs:
            cache_dir = kwargs.get("cache_dir", _DEFAULT_CACHE_DIR)
            kwargs["snapshot_dir"] = os.path.join(str(cache_dir), "worlds")
        return cls(**kwargs)


def _env_flag(env: Mapping[str, str], name: str) -> bool:
    return str(env.get(name, "0")).lower() in ("1", "true", "yes", "on")


class Study:
    """A compiled measurement-study session.

    Construction is cheap (no worlds are built, no checkpoint is
    touched); the first ``run()``/``resume()`` materialises whatever the
    plan needs. The worker pool (and, for continuous plans, the
    collector with its warm per-process world registries) persists
    across calls until :meth:`close` — interrupt-and-resume loops reuse
    it instead of paying spin-up per attempt.
    """

    def __init__(self, spec: StudySpec, plan: Optional[ExecutionPlan] = None):
        if not isinstance(spec, StudySpec):
            raise TypeError(f"spec must be a StudySpec, got {spec!r}")
        if plan is not None and not isinstance(plan, ExecutionPlan):
            raise TypeError(f"plan must be an ExecutionPlan, got {plan!r}")
        self.spec = spec
        self.plan = plan if plan is not None else ExecutionPlan()
        self.schedule = spec.build_schedule()
        self._dataset: Optional[Dataset] = None
        self._runner: Optional[ParallelCampaignRunner] = None
        self._collector: Optional[ContinuousCollector] = None

    # -- identity ----------------------------------------------------------

    @property
    def cache_tag(self) -> str:
        """The dataset cache key: the spec's tag, plus the continuous
        partitioning when the plan collects incrementally (a checkpoint
        must never alias a one-shot cache entry)."""
        extra = None
        if self.plan.continuous:
            extra = {
                "continuous": True,
                "days_per_increment": self.plan.days_per_increment,
            }
        return self.spec.cache_tag(extra)

    @property
    def cache_path(self) -> str:
        config = self.spec.config
        return cache_path(
            self.plan.cache_dir, config.population, config.seed,
            self.spec.day_step, tag=self.cache_tag,
        )

    @property
    def checkpoint_dir(self) -> Optional[str]:
        """The continuous-collection checkpoint directory (None for
        one-shot plans)."""
        if not self.plan.continuous:
            return None
        if self.plan.checkpoint_dir is not None:
            return self.plan.checkpoint_dir
        config = self.spec.config
        return checkpoint_dir_path(
            self.plan.cache_dir, config.population, config.seed,
            self.spec.day_step, tag=self.cache_tag,
        )

    # -- running -----------------------------------------------------------

    def run(self, progress: Optional[Callable[[str], None]] = None) -> Dataset:
        """Return the study's dataset: a cache hit when one exists,
        otherwise a (possibly checkpoint-resuming) campaign execution.

        Continuous plans honour ``plan.max_increments`` — the run raises
        :class:`~repro.scanner.collector.CollectionInterrupted` once the
        budget is spent, with the checkpoint holding everything
        completed so far (:meth:`resume` finishes the job)."""
        return self._run_to(self.plan.max_increments, progress)

    def resume(
        self,
        progress: Optional[Callable[[str], None]] = None,
        max_increments: Optional[int] = None,
    ) -> Dataset:
        """Continue an interrupted collection to completion (or pass
        *max_increments* to spend another bounded budget). Identical to
        :meth:`run` except the plan's increment budget is ignored, so a
        ``run()``/``resume()`` pair expresses "collect a bit now, finish
        later" without rebuilding the session."""
        return self._run_to(max_increments, progress)

    def dataset(self) -> Dataset:
        """The study's dataset without running anything: the in-memory
        result of an earlier ``run()``, else the cache file, else — for
        continuous plans — the checkpoint's merged (possibly partial)
        longitudinal fold. Raises :class:`StudyError` when the study has
        not collected anything yet, and
        :class:`~repro.scanner.collector.CheckpointError` when the
        checkpoint belongs to a different study (same identity check a
        run would apply — a foreign fold is never silently returned)."""
        if self._dataset is not None:
            return self._dataset
        cached = self._load_cached()
        if cached is not None:
            self._dataset = cached
            return cached
        if self.plan.continuous and has_checkpoint(self.checkpoint_dir):
            # Through the collector's store, not a bare file read: the
            # checkpoint identity is validated (CheckpointError on a
            # mismatched world/schedule/partitioning) and a corrupt
            # merged fold warns instead of silently reading as absent.
            # The has_checkpoint guard keeps this probe read-only — a
            # never-run study must not lay down an identity header that
            # a later (possibly upgraded) run() would trip over.
            partial = self._collector_session().store.load_merged()
            if partial is not None:
                self._dataset = partial
                return partial
        raise StudyError(
            "study has no dataset yet (no cache entry"
            + (", no checkpoint fold" if self.plan.continuous else "")
            + "); call run() first"
        )

    # -- outputs -----------------------------------------------------------

    def export(self, directory: str) -> List[str]:
        """Write every figure's underlying CSV/JSON under *directory*
        (see :func:`~repro.reporting.export.export_figure_data`)."""
        from .reporting.export import export_figure_data

        return export_figure_data(self.dataset(), directory)

    def release(self, tag: str, require_complete: bool = True) -> str:
        """Cut release *tag*: snapshot the dataset and figure CSVs under
        ``<plan.release_dir>/<tag>/`` with a QA manifest; returns the
        release directory.

        The manifest records coverage QA — scan days missing against the
        spec's schedule and cadence gaps
        (:func:`~repro.scanner.incremental.coverage_gaps`) — plus
        per-file SHA-256 digests for :func:`validate_release`. With
        *require_complete* (the default) an incomplete collection
        refuses to release; pass ``False`` to snapshot a partial
        checkpoint fold anyway (the manifest says so)."""
        if not tag or os.sep in tag or "/" in tag or tag in (".", ".."):
            raise ValueError(f"invalid release tag {tag!r}")
        dataset = self.dataset()
        missing = sorted(set(self.schedule.scan_days) - set(dataset.snapshots))
        if missing and require_complete:
            raise StudyError(
                f"cannot release {tag!r}: collection is missing "
                f"{len(missing)} scheduled scan day(s) "
                f"({missing[0]}..{missing[-1]}); resume() it to completion "
                "or pass require_complete=False"
            )
        directory = os.path.join(self.plan.release_dir, tag)
        manifest_path = os.path.join(directory, _MANIFEST)
        if os.path.exists(manifest_path):
            raise StudyError(f"release {tag!r} already exists under {directory}")
        os.makedirs(directory, exist_ok=True)
        dataset_path = os.path.join(directory, _RELEASE_DATASET)
        dataset.save(dataset_path)
        from .reporting.export import export_figure_data

        figure_paths = export_figure_data(
            dataset, os.path.join(directory, _FIGURES_SUBDIR)
        )
        files = {
            os.path.relpath(path, directory).replace(os.sep, "/"): _sha256(path)
            for path in [dataset_path] + list(figure_paths)
        }
        config = self.spec.config
        manifest = {
            "magic": _RELEASE_MAGIC,
            "version": RELEASE_VERSION,
            "tag": tag,
            "study": {
                "population": config.population,
                "seed": config.seed,
                "day_step": self.spec.day_step,
                "cache_tag": self.cache_tag,
            },
            "scan_days": {
                "count": len(dataset.snapshots),
                "first": min(dataset.snapshots).isoformat() if dataset.snapshots else None,
                "last": max(dataset.snapshots).isoformat() if dataset.snapshots else None,
            },
            "complete": not missing,
            "missing_days": [d.isoformat() for d in missing],
            "coverage_gaps": [
                d.isoformat()
                for d in coverage_gaps(dataset, expected_step=self.spec.day_step)
            ],
            "ech_observations": len(dataset.ech_observations),
            "dnssec_snapshot_date": (
                None
                if dataset.dnssec_snapshot_date is None
                else dataset.dnssec_snapshot_date.isoformat()
            ),
            "files": files,
        }
        tmp = f"{manifest_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, manifest_path)
        return directory

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the worker pools (idempotent); the session can run
        again afterwards (pools are rebuilt lazily)."""
        if self._collector is not None:
            self._collector.close()
            self._collector = None
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def __enter__(self) -> "Study":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _run_to(self, max_increments, progress) -> Dataset:
        # A one-shot session's in-memory dataset is always complete, so
        # repeat run() calls skip re-unpickling the cache file. (A
        # continuous session's may be a partial checkpoint fold picked
        # up by dataset(), so those re-check the disk state.)
        if self._dataset is not None and not self.plan.continuous:
            return self._dataset
        cached = self._load_cached()
        if cached is not None:
            self._dataset = cached
            return cached
        gc_window = paused_gc() if self.plan.gc_policy == "pause" else contextlib.nullcontext()
        with gc_window:
            dataset = self._execute(max_increments, progress)
        self._dataset = dataset
        try:
            dataset.save(self.cache_path)
        except OSError:  # pragma: no cover - cache dir not writable
            pass
        return dataset

    def _execute(self, max_increments, progress) -> Dataset:
        if self.plan.continuous:
            return self._collector_session().collect(
                progress=progress, max_increments=max_increments
            )
        # The runner owns every one-shot path, including workers == 1
        # (inline serial execution, through the snapshot registry when
        # plan.snapshot_dir is set) — one warm-up implementation, not a
        # fork of it here.
        return self._runner_session().run_schedule(self.schedule, progress=progress)

    def _runner_session(self) -> ParallelCampaignRunner:
        if self._runner is None:
            self._runner = ParallelCampaignRunner(
                self.spec.config,
                workers=self.plan.workers,
                executor=self.plan.executor,
                batch=self.plan.batch,
                snapshot_dir=self.plan.snapshot_dir,
                schedule=self.schedule,
                keep_alive=True,
                scenario=self.spec.scenario,
                answer_cache=self.plan.answer_cache,
            )
        return self._runner

    def _collector_session(self) -> ContinuousCollector:
        if self._collector is None:
            self._collector = ContinuousCollector(
                self.spec.config,
                self.checkpoint_dir,
                workers=self.plan.workers,
                day_step=self.spec.day_step,
                days_per_increment=self.plan.days_per_increment,
                batch=self.plan.batch,
                snapshot_dir=self.plan.snapshot_dir,
                executor=self.plan.executor,
                keep_alive=True,
                scenario=self.spec.scenario,
                answer_cache=self.plan.answer_cache,
                **self.spec.schedule_overrides(),
            )
        return self._collector

    def _load_cached(self) -> Optional[Dataset]:
        path = self.cache_path
        try:
            return Dataset.load(path)
        except FileNotFoundError:
            return None
        except (OSError, EOFError, TypeError) as exc:
            # A cache file that exists but will not load is worth a word
            # before the silent (expensive) rebuild overwrites it.
            warnings.warn(
                f"ignoring unreadable dataset cache {path}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None


# ---------------------------------------------------------------------------
# release validation
# ---------------------------------------------------------------------------


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def validate_release(directory: str) -> Dict:
    """Check a release directory against its manifest and return the
    manifest: every listed file must exist with a matching SHA-256
    digest, and the dataset snapshot must load and agree with the
    manifest's identity/coverage numbers. Raises :class:`StudyError` on
    any mismatch."""
    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StudyError(f"unreadable release manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != _RELEASE_MAGIC:
        raise StudyError(f"{directory} is not a study release")
    if manifest.get("version") != RELEASE_VERSION:
        raise StudyError(
            f"release version {manifest.get('version')!r} != {RELEASE_VERSION} "
            f"under {directory}"
        )
    files = manifest.get("files")
    if not isinstance(files, dict) or _RELEASE_DATASET not in files:
        raise StudyError(f"release under {directory} lists no dataset snapshot")
    for rel, expected in sorted(files.items()):
        path = os.path.join(directory, rel.replace("/", os.sep))
        if not os.path.exists(path):
            raise StudyError(f"release file missing: {path}")
        actual = _sha256(path)
        if actual != expected:
            raise StudyError(
                f"release file corrupt: {path} (sha256 {actual} != manifest {expected})"
            )
    dataset = Dataset.load(os.path.join(directory, _RELEASE_DATASET))
    study_meta = manifest.get("study", {})
    if (dataset.population, dataset.seed) != (
        study_meta.get("population"), study_meta.get("seed"),
    ):
        raise StudyError(
            f"release dataset world {(dataset.population, dataset.seed)} does not "
            f"match the manifest under {directory}"
        )
    if len(dataset.snapshots) != manifest.get("scan_days", {}).get("count"):
        raise StudyError(
            f"release dataset holds {len(dataset.snapshots)} scan days but the "
            f"manifest under {directory} claims "
            f"{manifest.get('scan_days', {}).get('count')}"
        )
    return manifest
