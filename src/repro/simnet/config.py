"""Simulation configuration.

The defaults run a 1/50-scale Internet (20k domains vs Tranco's 1M).
All cohort sizes are *fractions of the population*, so ratios reproduce
at any scale; `noncf_boost` oversamples the tiny non-Cloudflare adopter
cohort so Table 3 / Figure 3 stay statistically meaningful at small
scale (analyses report both raw and scale-corrected shares).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimConfig:
    """Knobs for the simulated Internet."""

    population: int = 20_000
    seed: str = "imc2024-dnshttps"
    # Bump when cohort/provider modelling changes so cached datasets are
    # invalidated (the cache key hashes the whole config).
    model_version: int = 2

    # -- Tranco list structure -------------------------------------------------
    stable_fraction: float = 0.58  # always-listed share of the population
    source_change_exit_fraction: float = 0.10  # stable domains leaving on Aug 1
    churn_presence_min: float = 0.35  # tail domains' daily presence prob
    churn_presence_max: float = 0.95

    # -- HTTPS adoption ----------------------------------------------------------
    stable_adoption: float = 0.245  # stable (overlapping) domains with HTTPS
    churn_adoption: float = 0.33  # tail domains that (eventually) adopt
    churn_adoption_spread_days: int = 500  # adoption_start spread → rising trend
    stable_deactivation_hazard: float = 0.0006  # per-day post-Aug-1 decline
    www_coverage: float = 0.95  # adopters whose www also has the record
    www_only_fraction: float = 0.015  # adopters with record only on www

    # -- provider mix --------------------------------------------------------------
    noncf_adopter_fraction: float = 0.0013  # paper: 0.11-0.13% of adopters
    noncf_boost: float = 20.0  # oversampling factor at small scale
    cfns_fraction: float = 0.004  # Cloudflare China network share of CF adopters

    # -- Cloudflare config cohorts (fractions of CF adopters) -----------------------
    custom_config_stable: float = 0.28  # Table 4 overlapping: 27.63% customized
    custom_config_churn: float = 0.20  # Table 4 dynamic: 20.04% customized
    free_plan_fraction: float = 0.88  # auto-ECH before Oct 5 (→ ~70% ECH share)
    www_ech_gap: float = 0.10  # free-plan domains whose www record omits ech

    # -- intermittency cohorts (fractions of adopters) --------------------------------
    proxied_toggle_fraction: float = 0.0116  # 2,673 / ~230k
    mixed_provider_fraction: float = 0.0069  # 1,593 / ~230k
    # The NS-change and no-NS cohorts are oversampled x6 (paper: 236 and
    # 20 per 230k adopters) so they remain visible at 1/167 scale;
    # analyses report raw counts with a scale note.
    ns_change_fraction: float = 0.0060
    no_ns_fraction: float = 0.0008

    # -- IP hints ----------------------------------------------------------------------
    hint_mismatch_prefix_fraction: float = 0.02  # pre-Jun-19 mismatch share
    hint_mismatch_post_fraction: float = 0.002  # post-Jun-19 episodic share
    ipv6hint_fraction: float = 0.90  # CF-default domains publishing ipv6hint

    # -- DNSSEC -------------------------------------------------------------------------
    signed_fraction_adopters: float = 0.073  # 16,849 / ~230k
    signed_fraction_others: float = 0.061  # 46,850 / ~770k
    ds_upload_given_cf: float = 0.505  # Table 9: CF-hosted signed HTTPS secure
    ds_upload_given_noncf: float = 0.859
    ds_upload_given_no_https: float = 0.762
    signed_growth_days: int = 240  # overlapping signed share grows (Fig 5b)

    # -- ECH -------------------------------------------------------------------------------
    ech_rotation_hours: float = 1.26  # §4.4.2: mean observed duration
    noncf_ech_fraction: float = 0.33  # non-CF adopters with ech → Cloudflare

    # -- scan mechanics -----------------------------------------------------------------------
    default_ttl: int = 300
    # Negative/SERVFAIL cache TTL of the public resolvers (RFC 2308
    # fallback when no SOA caps it); exposed for negative-cache ablations.
    negative_ttl: int = 60
    wire_mode: bool = False  # route every DNS message through the wire codec

    @classmethod
    def from_env(cls) -> "SimConfig":
        """Honour REPRO_POPULATION / REPRO_SEED environment overrides."""
        kwargs = {}
        population = os.environ.get("REPRO_POPULATION") or os.environ.get("POPULATION")
        if population:
            kwargs["population"] = int(population)
        seed = os.environ.get("REPRO_SEED")
        if seed:
            kwargs["seed"] = seed
        return cls(**kwargs)

    def scaled(self, count_at_1m: float) -> int:
        """Translate an absolute count from the paper (Tranco 1M) to this
        population's scale."""
        return max(1, round(count_at_1m * self.population / 1_000_000))
