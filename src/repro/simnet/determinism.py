"""Deterministic pseudo-randomness for the simulated Internet.

Every stochastic property of the world (cohort membership, churn, toggle
days, IP allocation) is a pure function of (global seed, entity name,
salt) so that any two runs — and any two modules looking at the same
domain — agree without shared mutable state.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Sequence, Tuple, TypeVar

T = TypeVar("T")


def digest(seed: str, *parts: object) -> bytes:
    material = "|".join([seed] + [str(part) for part in parts])
    return hashlib.sha256(material.encode()).digest()


def unit_float(seed: str, *parts: object) -> float:
    """Uniform float in [0, 1)."""
    value = struct.unpack("!Q", digest(seed, *parts)[:8])[0]
    return value / 2**64


def integer(seed: str, *parts: object, bound: int) -> int:
    """Uniform integer in [0, bound)."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    return struct.unpack("!Q", digest(seed, *parts)[:8])[0] % bound


def choice(seed: str, *parts: object, options: Sequence[T]) -> T:
    return options[integer(seed, *parts, bound=len(options))]


def weighted_choice(seed: str, *parts: object, options: Sequence[Tuple[T, float]]) -> T:
    """Pick from (value, weight) pairs."""
    total = sum(weight for _, weight in options)
    roll = unit_float(seed, *parts) * total
    accumulated = 0.0
    for value, weight in options:
        accumulated += weight
        if roll < accumulated:
            return value
    return options[-1][0]
