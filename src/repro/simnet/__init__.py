"""The simulated Internet: population, providers, timeline, world.

A :class:`World` is a deterministic function of :class:`SimConfig` —
profiles, zones, DNSSEC signatures, ECH keys, and Tranco membership all
derive from the config's seed — so built worlds are cacheable artifacts.
:mod:`~repro.simnet.snapshot` exploits that with two layers:

* an **on-disk snapshot** (versioned, integrity-checked pickle of a
  pristine world, keyed by the canonical config tag) that pipeline
  worker *processes* load instead of rebuilding and re-signing; and
* an **in-process registry** (:class:`~repro.simnet.snapshot.WorldRegistry`)
  with exclusive checkout/checkin, through which thread-mode pipeline
  tasks and sequential runs reuse one world per config tag —
  :meth:`World.reset` rewinds the clock and flushes the time-stamped
  caches so a reused world answers bit-for-bit like a fresh build.
"""

from . import timeline
from .cohorts import DomainProfile, ECH_TEST_DOMAINS, SPECIAL_DOMAINS, make_profile
from .config import SimConfig
from .faults import FaultInjector, FaultSchedule, FaultSpec
from .providers import PROVIDERS, ProviderSpec
from .snapshot import (
    SnapshotError,
    WorldRegistry,
    checkin_world,
    checkout_world,
    ensure_world_snapshot,
    load_world_snapshot,
    save_world_snapshot,
    snapshot_path,
    world_registry,
    world_tag,
)
from .world import ECH_PUBLIC_NAME, World

__all__ = [
    "timeline",
    "DomainProfile",
    "ECH_TEST_DOMAINS",
    "SPECIAL_DOMAINS",
    "make_profile",
    "SimConfig",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "PROVIDERS",
    "ProviderSpec",
    "ECH_PUBLIC_NAME",
    "World",
    "SnapshotError",
    "WorldRegistry",
    "checkin_world",
    "checkout_world",
    "ensure_world_snapshot",
    "load_world_snapshot",
    "save_world_snapshot",
    "snapshot_path",
    "world_registry",
    "world_tag",
]
