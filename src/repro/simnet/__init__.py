"""The simulated Internet: population, providers, timeline, world."""

from . import timeline
from .cohorts import DomainProfile, ECH_TEST_DOMAINS, SPECIAL_DOMAINS, make_profile
from .config import SimConfig
from .providers import PROVIDERS, ProviderSpec
from .world import ECH_PUBLIC_NAME, World

__all__ = [
    "timeline",
    "DomainProfile",
    "ECH_TEST_DOMAINS",
    "SPECIAL_DOMAINS",
    "make_profile",
    "SimConfig",
    "PROVIDERS",
    "ProviderSpec",
    "ECH_PUBLIC_NAME",
    "World",
]
