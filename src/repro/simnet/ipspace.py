"""Deterministic IP address allocation for the simulated Internet.

Each provider owns recognizable address blocks (used by the WHOIS
registry for attribution, §4.2.2) and Cloudflare-proxied zones resolve to
anycast addresses, mirroring the real deployment the paper measures.
"""

from __future__ import annotations

from .determinism import integer

# Anycast blocks for proxied zones.
CLOUDFLARE_V4_PREFIXES = ("104.16", "104.17", "104.18")
CLOUDFLARE_V6_PREFIX = "2606:4700"
CFNS_V4_PREFIX = "162.159"  # Cloudflare China network (cf-ns.*)

# Root / TLD infrastructure.
ROOT_SERVER_IP = "198.41.0.4"
TLD_SERVER_IP = "192.5.6.30"
GOOGLE_RESOLVER_IP = "8.8.8.8"
CLOUDFLARE_RESOLVER_IP = "1.1.1.1"


def _octets(seed: str, *parts: object) -> tuple:
    a = integer(seed, "octet-a", *parts, bound=254) + 1
    b = integer(seed, "octet-b", *parts, bound=254) + 1
    return a, b


def cloudflare_anycast_v4(seed: str, domain: str, index: int = 0) -> str:
    prefix = CLOUDFLARE_V4_PREFIXES[index % len(CLOUDFLARE_V4_PREFIXES)]
    a, b = _octets(seed, "cf-anycast", domain, index)
    return f"{prefix}.{a}.{b}"


def cloudflare_anycast_v6(seed: str, domain: str, index: int = 0) -> str:
    a, b = _octets(seed, "cf-anycast6", domain, index)
    return f"{CLOUDFLARE_V6_PREFIX}:3{index:03x}::{a:x}{b:02x}"


def cfns_anycast_v4(seed: str, domain: str, index: int = 0) -> str:
    a, b = _octets(seed, "cfns-anycast", domain, index)
    return f"{CFNS_V4_PREFIX}.{a}.{b}"


def origin_v4(seed: str, domain: str, generation: int = 0) -> str:
    """The 'real' origin server address of a domain (non-proxied)."""
    a, b = _octets(seed, "origin", domain, generation)
    c = integer(seed, "origin-c", domain, generation, bound=254) + 1
    return f"203.{a % 254 + 1}.{b}.{c}"


def origin_v6(seed: str, domain: str, generation: int = 0) -> str:
    a, b = _octets(seed, "origin6", domain, generation)
    return f"2001:db8:{a:x}::{b:x}"
