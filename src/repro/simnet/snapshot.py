"""World snapshot cache: built-and-signed worlds, reusable across
processes and tasks.

A :class:`~repro.simnet.world.World` is a deterministic function of its
:class:`~repro.simnet.config.SimConfig` (population profiles, provider
catalogue, zone tree, DNSSEC keysets and signatures, ECH key schedule,
Tranco membership), so building it is pure warm-up cost — and the
sharded pipeline (:mod:`~repro.scanner.pipeline`) pays it once per
worker task. This module removes that redundancy at two levels:

* **On-disk snapshots** — :func:`save_world_snapshot` pickles a
  *pristine* world (reset to the study start) into a versioned,
  integrity-checked file keyed by the same canonical config tag the
  campaign dataset cache uses (``repr(dataclasses.astuple(config))``,
  hashed). :func:`load_world_snapshot` verifies magic, format version,
  config tag, and a SHA-256 payload digest before unpickling; any
  mismatch raises :class:`SnapshotError` and the caller rebuilds (and
  rewrites) — a stale or corrupt snapshot can never serve quietly.

* **An in-process registry** — :class:`WorldRegistry` keeps a small
  pool of idle worlds per config tag with checkout/checkin semantics.
  A checked-in world is :meth:`~repro.simnet.world.World.reset` (clock
  rewound, time-stamped caches flushed) so the next checkout behaves
  bit-for-bit like a fresh build. Thread-mode pipeline tasks and the
  pipeline's sequential post-merge stages draw from this pool instead
  of deserializing (or rebuilding) per task; checkout is exclusive, so
  concurrent tasks never share a world object.

Construction and deserialization both run under a cyclic-GC pause
(:mod:`repro.gcutils`): the world is an immortal object graph, and
full-heap collection passes triggered by its allocation churn dominate
warm-up timings otherwise.

Equivalence guarantee: snapshots are written only in the pristine state,
the pickled graph contains no wall-clock, filesystem, or RNG handles,
and every derived cache inside it is a pure function of (config, time)
— so a loaded (or reused) world produces datasets value-equal to a
freshly built one. ``tests/test_snapshot.py`` locks this in for the
daily, NS, ECH, and DNSSEC stages. Equality holds *across
interpreters*, not just forked pool workers: per-process state (e.g.
the str-hash seed behind a ``Name``'s cached hash) must never cross the
pickle boundary, so a snapshot written by one session answers
identically when a resumed collection loads it in a fresh process
(``tests/test_names.py::TestPickling`` guards the one bug we hit).

Snapshots do not survive code changes: the header records a fingerprint
of the ``repro`` package source alongside :data:`SNAPSHOT_VERSION`, so
a snapshot written by different code — even a change that unpickles
cleanly but would generate a different world — is rejected and rebuilt
(worlds rebuild in well under a second; staleness is never worth it).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import threading
from typing import Dict, List, Optional

from ..gcutils import paused_gc
from .config import SimConfig
from .world import World

# Bump whenever the on-disk layout (this header) or the pickled object
# graph changes shape; readers reject other versions.
SNAPSHOT_VERSION = 1

_MAGIC = b"repro-world-snapshot"
_PICKLE_PROTOCOL = 4


class SnapshotError(Exception):
    """A snapshot file is missing, stale, corrupt, or mismatched."""


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Fingerprint of the ``repro`` package source (cached per process).

    Folded into every snapshot header so snapshots written by different
    code are rejected outright — the config tag cannot see code changes
    that alter world generation without touching ``SimConfig``. Returns
    ``""`` (matching everything) when the source is unreadable, e.g. a
    zipped install."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        try:
            for dirpath, dirnames, filenames in os.walk(package_root):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    digest.update(os.path.relpath(path, package_root).encode())
                    with open(path, "rb") as handle:
                        digest.update(handle.read())
            _CODE_FINGERPRINT = digest.hexdigest()[:16]
        except OSError:  # pragma: no cover - unreadable source tree
            _CODE_FINGERPRINT = ""
    return _CODE_FINGERPRINT


def world_tag(config: SimConfig) -> str:
    """Canonical cache tag for *config* — the config component of the
    campaign dataset cache key (every field participates, so any knob
    change keys a different snapshot)."""
    blob = repr(dataclasses.astuple(config)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def snapshot_path(snapshot_dir: str, config: SimConfig) -> str:
    return os.path.join(
        snapshot_dir, f"world_{config.population}_{world_tag(config)}.snap"
    )


def save_world_snapshot(world: World, snapshot_dir: str) -> str:
    """Write *world* as a snapshot (resetting it to pristine first) and
    return the path. The write is atomic (temp file + rename), so a
    concurrent reader sees either the old snapshot or the new one."""
    world.reset()
    payload = pickle.dumps(world, protocol=_PICKLE_PROTOCOL)
    record = {
        "magic": _MAGIC,
        "version": SNAPSHOT_VERSION,
        "code": code_fingerprint(),
        "tag": world_tag(world.config),
        "digest": hashlib.sha256(payload).hexdigest(),
        "payload": payload,
    }
    path = snapshot_path(snapshot_dir, world.config)
    os.makedirs(snapshot_dir, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(record, handle, protocol=_PICKLE_PROTOCOL)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - failed mid-write
            os.unlink(tmp)
    return path


def load_world_snapshot(config: SimConfig, snapshot_dir: str) -> World:
    """Load the snapshot for *config*, verifying version, tag, and
    payload integrity. Raises :class:`SnapshotError` on any problem —
    callers fall back to building (and rewriting) a fresh world."""
    path = snapshot_path(snapshot_dir, config)
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}") from None
    except Exception as exc:  # truncated/garbled header or payload
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(record, dict) or record.get("magic") != _MAGIC:
        raise SnapshotError(f"{path} is not a world snapshot")
    if record.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} has snapshot version {record.get('version')!r}, "
            f"expected {SNAPSHOT_VERSION}"
        )
    if record.get("code") != code_fingerprint():
        raise SnapshotError(f"{path} was written by different repro code (stale)")
    if record.get("tag") != world_tag(config):
        raise SnapshotError(f"{path} was built for a different config")
    payload = record.get("payload")
    if not isinstance(payload, bytes) or (
        hashlib.sha256(payload).hexdigest() != record.get("digest")
    ):
        raise SnapshotError(f"{path} failed its integrity check")
    try:
        with paused_gc():
            world = pickle.loads(payload)
    except Exception as exc:  # payload from incompatible code
        raise SnapshotError(f"cannot deserialize {path}: {exc}") from exc
    if not isinstance(world, World):
        raise SnapshotError(f"{path} does not contain a World")
    return world


class WorldRegistry:
    """In-process pool of reusable worlds, keyed by config tag.

    ``checkout`` hands out an *exclusively owned* world: an idle pooled
    one when available (already reset), else a snapshot load from
    *snapshot_dir*, else a fresh build (which is then snapshotted so
    sibling processes hit the disk cache). ``checkin`` resets the world
    and parks it for the next checkout. Thread-safe; the pool never
    hands the same object to two concurrent holders.

    Pooled worlds live until process exit (or :meth:`clear`), capped at
    ``max_idle_per_tag`` per config. Callers that do not want a world
    pinned — one-shot sequential runs — should build a throwaway
    :class:`World` directly instead of going through the registry.
    """

    def __init__(self, max_idle_per_tag: int = 8):
        self.max_idle_per_tag = max_idle_per_tag
        self._lock = threading.Lock()
        self._idle: Dict[str, List[World]] = {}
        self.built = 0
        self.loaded = 0
        self.reused = 0
        self.saved = 0

    def checkout(self, config: SimConfig, snapshot_dir: Optional[str] = None) -> World:
        tag = world_tag(config)
        with self._lock:
            idle = self._idle.get(tag)
            if idle:
                self.reused += 1
                return idle.pop()
        if snapshot_dir is not None:
            try:
                world = load_world_snapshot(config, snapshot_dir)
            except SnapshotError:
                pass
            else:
                with self._lock:
                    self.loaded += 1
                return world
        world = World(config)  # construction pauses the GC itself
        with self._lock:
            self.built += 1
        if snapshot_dir is not None:
            try:
                save_world_snapshot(world, snapshot_dir)
            except OSError:  # pragma: no cover - snapshot dir unwritable
                pass
            else:
                with self._lock:
                    self.saved += 1
        return world

    def checkin(self, world: World) -> None:
        world.reset()
        tag = world_tag(world.config)
        with self._lock:
            idle = self._idle.setdefault(tag, [])
            if len(idle) < self.max_idle_per_tag:
                idle.append(world)

    def idle_count(self, config: SimConfig) -> int:
        with self._lock:
            return len(self._idle.get(world_tag(config), ()))

    def clear(self) -> None:
        with self._lock:
            self._idle.clear()
            self.built = self.loaded = self.reused = self.saved = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "built": self.built,
                "loaded": self.loaded,
                "reused": self.reused,
                "saved": self.saved,
            }


# One registry per process: pipeline worker processes each get their own
# (fed by the on-disk snapshot), thread-mode tasks all share this one.
_REGISTRY = WorldRegistry()


def world_registry() -> WorldRegistry:
    return _REGISTRY


def checkout_world(config: SimConfig, snapshot_dir: Optional[str] = None) -> World:
    """Acquire an exclusively owned world for *config* from the default
    registry (pooled → snapshot → fresh build, in that order)."""
    return _REGISTRY.checkout(config, snapshot_dir)


def checkin_world(world: World) -> None:
    """Release a world back to the default registry for reuse."""
    _REGISTRY.checkin(world)


def ensure_world_snapshot(config: SimConfig, snapshot_dir: str) -> str:
    """Make sure a valid snapshot for *config* exists under
    *snapshot_dir* (building one if needed) and return its path.

    The pipeline parent calls this before spawning workers so the world
    is built and signed exactly once; process workers then deserialize
    and thread workers draw on the registry pool. The world that seeded
    (or validated) the snapshot is parked in the in-process registry,
    so the parent's own stages reuse it too. An unwritable snapshot
    directory is tolerated — workers fall back to building, exactly as
    if no snapshot had been requested."""
    try:
        # A full validating load, not a mere existence check: a stale or
        # corrupt file left on disk would otherwise be "ready" here and
        # then rejected by every worker, which would each rebuild.
        world = load_world_snapshot(config, snapshot_dir)
    except SnapshotError:
        world = checkout_world(config)  # pooled or fresh, no disk read
        try:
            save_world_snapshot(world, snapshot_dir)
        except OSError:  # pragma: no cover - snapshot dir unwritable
            pass
    checkin_world(world)
    return snapshot_path(snapshot_dir, config)
