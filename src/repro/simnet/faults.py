"""Chaos scenario engine: declarative, deterministic fault schedules.

The scanner measures a world that normally only fails by accident. This
module turns every failure mode the paper observes in the wild —
server outages, lame delegations, packet loss, DNSSEC breakage, ECH key
desync, stale HTTPS hints — into a *scheduled, reproducible* workload:
a :class:`FaultSchedule` rides on :class:`~repro.study.StudySpec` (and
therefore on the cache tag), is compiled by
:meth:`~repro.simnet.world.World.install_faults` into clock-driven
network and zone hooks, and leaves a queryable ledger that
:mod:`repro.analysis.attribution` joins against the observed dataset.

Scenario DSL
------------

A scenario is a :class:`FaultSchedule`: a name plus an ordered tuple of
frozen :class:`FaultSpec` entries. Each spec has:

``kind``
    One of the ``KIND_*`` constants below.
``start`` / ``end``
    Inclusive calendar dates bounding the fault window. ``None`` leaves
    that side open. Windows are **date-granular** on purpose: zone and
    DS caches are keyed per day, so a fault that flipped mid-day would
    make observed state depend on scan order.
``domain``
    Apex domain the fault targets (required for zone-level kinds,
    optional scope for transport kinds). Subdomains are covered.
``ip`` / ``provider`` / ``port``
    Transport scope: an explicit server IP, or a provider key from
    :data:`~repro.simnet.providers.PROVIDERS` (its authoritative server
    IP). ``port`` narrows an outage to one service (e.g. 53 kills DNS
    while 443 stays up) via the per-port reachability added to
    :class:`~repro.resolver.network.Network`.
``rate``
    For ``packet_loss``: per-delivery-attempt drop probability in
    (0, 1]. ``timeout`` is the deterministic profile (every matching
    attempt times out; rate is ignored).
``salt``
    Extra entropy namespace so two otherwise-identical loss specs
    produce independent drop patterns.

Kinds and their compiled effect:

``server_outage``
    While active, the targeted IP (or ``(ip, port)`` pair) is
    unreachable; applied/lifted by the world clock
    (:meth:`FaultInjector.on_time`) on every ``set_time``.
``lame_delegation``
    Authoritative servers answer REFUSED for every name under
    ``domain`` (the parent keeps delegating — the child stops serving),
    the classic lame delegation the resolver must route around.
``packet_loss`` / ``timeout``
    Matching deliveries raise
    :class:`~repro.resolver.network.QueryTimeout`; the resolver retries
    with deterministic backoff (see ``resolver/recursive.py``).
``dnssec_expired_rrsig``
    The domain's zone is signed with an already-expired validity
    window: validating resolvers go BOGUS → SERVFAIL.
``dnssec_missing_ds``
    The parent TLD stops serving the domain's DS (the §4.5.1 "signed
    but never uploaded DS" failure): the chain degrades to INSECURE.
``ech_key_desync``
    The domain's zone publishes the *previous* ECH key generation's
    config while the client-facing server has rotated on — the stale
    ECHConfig mismatch behind Table 7's failover rows. (Visible only
    once the first rotation has happened.)
``stale_https_hint``
    The HTTPS record's ipv4/ipv6 hints point at a retired address
    generation that no longer serves TLS, injecting the §4.3.5
    hint/A-record mismatch.

Determinism contract (DET01)
----------------------------

Every stochastic choice is a pure function through
:mod:`repro.simnet.determinism` of (config seed, spec salt, query
coordinates, delivery attempt); nothing reads wall clocks or ambient
randomness. Same seed + same schedule ⇒ value-equal datasets across
serial, batched, sharded, and continuous execution — drop decisions key
on the delivery *attempt* carried by
:class:`~repro.resolver.recursive.UpstreamQuery`, so batch coalescing
(which changes how many duplicate sends hit the wire) cannot change any
outcome.

Worlds are never snapshotted with faults armed:
:meth:`~repro.simnet.world.World.reset` — called by the snapshot
registry on checkin and before pickling — clears the injector, so
cached pristine worlds stay scenario-free and each run re-installs its
own schedule after checkout.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
from typing import Dict, List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from ..resolver.network import DNS_PORT, QueryTimeout
from . import determinism, domains, ipspace, timeline
from .cohorts import DomainProfile
from .config import SimConfig
from .providers import PROVIDERS

KIND_SERVER_OUTAGE = "server_outage"
KIND_LAME_DELEGATION = "lame_delegation"
KIND_PACKET_LOSS = "packet_loss"
KIND_TIMEOUT = "timeout"
KIND_DNSSEC_EXPIRED_RRSIG = "dnssec_expired_rrsig"
KIND_DNSSEC_MISSING_DS = "dnssec_missing_ds"
KIND_ECH_KEY_DESYNC = "ech_key_desync"
KIND_STALE_HTTPS_HINT = "stale_https_hint"

KINDS = (
    KIND_SERVER_OUTAGE,
    KIND_LAME_DELEGATION,
    KIND_PACKET_LOSS,
    KIND_TIMEOUT,
    KIND_DNSSEC_EXPIRED_RRSIG,
    KIND_DNSSEC_MISSING_DS,
    KIND_ECH_KEY_DESYNC,
    KIND_STALE_HTTPS_HINT,
)

# Kinds whose compiled effect lives in the served zone contents.
_ZONE_KINDS = (
    KIND_DNSSEC_EXPIRED_RRSIG,
    KIND_DNSSEC_MISSING_DS,
    KIND_ECH_KEY_DESYNC,
    KIND_STALE_HTTPS_HINT,
)

# Retired address generations for stale hints: generations 0/1 are the
# live A/mismatched-hint pair and 7 is the self-hosted NS host, so 2
# (anycast) and 3 (origin) are guaranteed unused by any live service.
_STALE_ANYCAST_GENERATION = 2
_STALE_ORIGIN_GENERATION = 3


def _parse_date(value: object) -> Optional[datetime.date]:
    if value is None or isinstance(value, datetime.date):
        return value
    return datetime.date.fromisoformat(str(value))


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault. See the module docstring for field semantics."""

    kind: str
    start: Optional[datetime.date] = None
    end: Optional[datetime.date] = None
    domain: Optional[str] = None
    ip: Optional[str] = None
    provider: Optional[str] = None
    port: Optional[int] = None
    rate: float = 1.0
    salt: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {KINDS})")
        object.__setattr__(self, "start", _parse_date(self.start))
        object.__setattr__(self, "end", _parse_date(self.end))
        if self.start is not None and self.end is not None and self.end < self.start:
            raise ValueError(f"fault window ends before it starts: {self}")
        if self.kind == KIND_SERVER_OUTAGE:
            if (self.ip is None) == (self.provider is None):
                raise ValueError("server_outage needs exactly one of ip/provider")
            if self.provider is not None and self.provider not in PROVIDERS:
                raise ValueError(f"unknown provider {self.provider!r}")
        elif self.kind in (KIND_PACKET_LOSS, KIND_TIMEOUT):
            if self.domain is None and self.ip is None:
                raise ValueError(f"{self.kind} needs a domain and/or ip scope")
            if not 0.0 < self.rate <= 1.0:
                raise ValueError("rate must be in (0, 1]")
        else:
            if self.domain is None:
                raise ValueError(f"{self.kind} needs a target domain")

    def active(self, date: datetime.date) -> bool:
        if self.start is not None and date < self.start:
            return False
        if self.end is not None and date > self.end:
            return False
        return True

    def overlaps(self, start: datetime.date, end: datetime.date) -> bool:
        """Does the fault window intersect the closed range [start, end]?"""
        if self.start is not None and self.start > end:
            return False
        if self.end is not None and self.end < start:
            return False
        return True

    def canonical_tag(self) -> str:
        """Stable primitive encoding for cache-tag membership."""
        return (
            f"{self.kind}[{self.start or ''}..{self.end or ''}]"
            f"(domain={self.domain or ''},ip={self.ip or ''},"
            f"provider={self.provider or ''},port={self.port if self.port is not None else ''},"
            f"rate={self.rate!r},salt={self.salt})"
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        if self.start is not None:
            out["start"] = self.start.isoformat()
        if self.end is not None:
            out["end"] = self.end.isoformat()
        for field in ("domain", "ip", "provider", "port", "salt"):
            value = getattr(self, field)
            if value not in (None, ""):
                out[field] = value
        if self.rate != 1.0:
            out["rate"] = self.rate
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        allowed = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A named, ordered set of :class:`FaultSpec` entries."""

    name: str = "scenario"
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def active_specs(self, date: datetime.date) -> List[FaultSpec]:
        return [spec for spec in self.specs if spec.active(date)]

    def canonical_tag(self) -> str:
        body = ";".join(spec.canonical_tag() for spec in self.specs)
        return f"{self.name}{{{body}}}"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "faults": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        if not isinstance(data, dict):
            raise ValueError("scenario must be a JSON object")
        unknown = set(data) - {"name", "faults"}
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        specs = tuple(FaultSpec.from_dict(entry) for entry in data.get("faults", ()))
        return cls(name=str(data.get("name", "scenario")), specs=specs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


@dataclasses.dataclass(frozen=True)
class ZoneOverlay:
    """Per-(profile, date) zone mutations compiled from active faults;
    consumed duck-typed by :func:`repro.simnet.domains.build_zone` (which
    must not import this module)."""

    expired_rrsig: bool = False
    hint_v4: Optional[str] = None
    hint_v6: Optional[str] = None


def stale_hint_addresses(
    profile: DomainProfile, config: SimConfig, date: datetime.date
) -> Tuple[str, str]:
    """Hint addresses from a retired generation: syntactically plausible
    for the domain's provider, served by nothing (so
    ``World.tls_reachable`` is False for them)."""
    seed = config.seed
    if profile.is_cloudflare and domains.proxied_active(profile, config, date):
        alloc4 = (
            ipspace.cfns_anycast_v4
            if profile.provider_key == "cfns"
            else ipspace.cloudflare_anycast_v4
        )
        return (
            alloc4(seed, profile.name, _STALE_ANYCAST_GENERATION),
            ipspace.cloudflare_anycast_v6(seed, profile.name, _STALE_ANYCAST_GENERATION),
        )
    return (
        ipspace.origin_v4(seed, profile.name, generation=_STALE_ORIGIN_GENERATION),
        ipspace.origin_v6(seed, profile.name, generation=_STALE_ORIGIN_GENERATION),
    )


def _domain_name(spec: FaultSpec) -> Optional[Name]:
    if spec.domain is None:
        return None
    text = spec.domain if spec.domain.endswith(".") else spec.domain + "."
    return Name.from_text(text)


def spec_affects(
    spec: FaultSpec, profile: DomainProfile, config: SimConfig, date: datetime.date
) -> bool:
    """Could *spec*, if active on *date*, perturb observations of this
    domain? The attribution ledger's membership predicate."""
    if not spec.active(date):
        return False
    target = _domain_name(spec)
    if target is not None:
        return profile.apex == target or profile.apex.is_subdomain_of(target)
    keys = domains.current_provider_keys(profile, config, date)
    if spec.provider is not None:
        return spec.provider in keys
    if spec.ip is not None:
        for key in keys:
            if key == "selfhosted":
                ns_ip = ipspace.origin_v4(config.seed, profile.name, generation=7)
                if spec.ip == ns_ip:
                    return True
            elif PROVIDERS[key].server_ip == spec.ip:
                return True
        if spec.ip in domains.serving_addresses(profile, config, date):
            return True
    return False


class FaultInjector:
    """A :class:`FaultSchedule` compiled against one world.

    Installed by :meth:`World.install_faults`; acts as the network's
    ``dns_fault_hook`` (transport kinds), drives scheduled outages from
    :meth:`on_time`, and answers the world's zone-construction queries
    (:meth:`zone_overlay`, :meth:`ech_wire_for`, :meth:`ds_suppressed`)
    for the zone kinds.
    """

    def __init__(self, world, schedule: FaultSchedule):
        self.world = world
        self.schedule = schedule
        self._domain_names: Dict[int, Optional[Name]] = {
            index: _domain_name(spec) for index, spec in enumerate(schedule.specs)
        }
        self._applied_outages: set = set()
        self._infra_ips = frozenset(
            {
                ipspace.ROOT_SERVER_IP,
                ipspace.TLD_SERVER_IP,
                ipspace.GOOGLE_RESOLVER_IP,
                ipspace.CLOUDFLARE_RESOLVER_IP,
            }
        )

    # -- lifecycle ---------------------------------------------------------

    def arm(self) -> None:
        self.world.network.dns_fault_hook = self
        self.on_time(self.world.current_date, self.world.current_hour)

    def disarm(self) -> None:
        if self.world.network.dns_fault_hook is self:
            self.world.network.dns_fault_hook = None
        for ip, port in sorted(self._applied_outages, key=str):
            self.world.network.set_unreachable(ip, False, port=port)
        self._applied_outages.clear()

    # -- clock hook --------------------------------------------------------

    def on_time(self, date: datetime.date, hour: float) -> None:
        """Synchronize scheduled outages with the world clock."""
        desired = set()
        for spec in self.schedule.specs:
            if spec.kind != KIND_SERVER_OUTAGE or not spec.active(date):
                continue
            for ip in self._outage_ips(spec):
                desired.add((ip, spec.port))
        for ip, port in sorted(self._applied_outages - desired, key=str):
            self.world.network.set_unreachable(ip, False, port=port)
        for ip, port in sorted(desired - self._applied_outages, key=str):
            self.world.network.set_unreachable(ip, True, port=port)
        self._applied_outages = desired

    @staticmethod
    def _outage_ips(spec: FaultSpec) -> Tuple[str, ...]:
        if spec.ip is not None:
            return (spec.ip,)
        provider = PROVIDERS.get(spec.provider)
        if provider is not None and provider.server_ip:
            return (provider.server_ip,)
        return ()

    # -- transport hook (Network.dns_fault_hook) ---------------------------

    def __call__(self, ip: str, query: Message, attempt: int):
        if not query.questions:
            return None
        question = query.questions[0]
        qname = question.name
        date = self.world.current_date
        day = timeline.day_index(date)
        seed = self.world.config.seed
        for index, spec in enumerate(self.schedule.specs):
            if not spec.active(date):
                continue
            if spec.kind == KIND_LAME_DELEGATION:
                if ip in self._infra_ips:
                    continue  # parent keeps delegating; only the child is lame
                target = self._domain_names[index]
                if not qname.is_subdomain_of(target):
                    continue
                reply = query.make_response()
                reply.rcode = rdtypes.REFUSED
                return reply
            if spec.kind in (KIND_PACKET_LOSS, KIND_TIMEOUT):
                if spec.ip is not None:
                    if ip != spec.ip:
                        continue
                elif ip in self._infra_ips:
                    continue
                target = self._domain_names[index]
                if target is not None and not qname.is_subdomain_of(target):
                    continue
                if spec.kind == KIND_TIMEOUT or determinism.unit_float(
                    seed,
                    "fault-drop",
                    spec.salt,
                    ip,
                    qname.to_text().lower(),
                    question.rdtype,
                    day,
                    attempt,
                ) < spec.rate:
                    return QueryTimeout(
                        f"{spec.kind} fault dropped query to {ip} "
                        f"for {qname.to_text()} (attempt {attempt})"
                    )
        return None

    # -- zone hooks --------------------------------------------------------

    def _zone_specs(self, profile: DomainProfile, date: datetime.date):
        for index, spec in enumerate(self.schedule.specs):
            if spec.kind not in _ZONE_KINDS or not spec.active(date):
                continue
            target = self._domain_names[index]
            if profile.apex == target or profile.apex.is_subdomain_of(target):
                yield spec

    def zone_overlay(
        self, profile: DomainProfile, date: datetime.date
    ) -> Optional[ZoneOverlay]:
        expired = False
        hint_v4 = hint_v6 = None
        for spec in self._zone_specs(profile, date):
            if spec.kind == KIND_DNSSEC_EXPIRED_RRSIG:
                expired = True
            elif spec.kind == KIND_STALE_HTTPS_HINT:
                hint_v4, hint_v6 = stale_hint_addresses(profile, self.world.config, date)
        if expired or hint_v4 is not None:
            return ZoneOverlay(expired_rrsig=expired, hint_v4=hint_v4, hint_v6=hint_v6)
        return None

    def ech_wire_for(
        self,
        profile: DomainProfile,
        date: datetime.date,
        wire: Optional[bytes],
        absolute_hour: int,
    ) -> Optional[bytes]:
        if wire is None:
            return None
        for spec in self._zone_specs(profile, date):
            if spec.kind == KIND_ECH_KEY_DESYNC:
                stale_hour = max(0, absolute_hour - self.world.config.ech_rotation_hours)
                return self.world.ech_manager.published_wire(stale_hour)
        return wire

    def ds_suppressed(self, child: Name, date: datetime.date) -> bool:
        for index, spec in enumerate(self.schedule.specs):
            if spec.kind != KIND_DNSSEC_MISSING_DS or not spec.active(date):
                continue
            target = self._domain_names[index]
            if child == target or child.is_subdomain_of(target):
                return True
        return False
