"""The study calendar.

All dates the paper keys events to, plus helpers to convert between
calendar dates, day indices (0 = first scan day), and simulated epoch
seconds used by the resolver clock and RRSIG validity windows.
"""

from __future__ import annotations

import datetime
from typing import List

# Measurement window (paper §4.1, Table 1).
STUDY_START = datetime.date(2023, 5, 8)
STUDY_END = datetime.date(2024, 3, 31)

# Dataset sub-windows (Table 1).
SOA_NS_SCAN_START = datetime.date(2023, 8, 16)
NS_IP_WHOIS_SCAN_START = datetime.date(2023, 10, 11)
NS_MEASUREMENT_END = datetime.date(2024, 3, 31)
CONNECTIVITY_SCAN_START = datetime.date(2024, 1, 24)

# Ecosystem events.
H3_29_RETIREMENT = datetime.date(2023, 5, 31)  # Cloudflare drops h3-29 from alpn
HINT_SYNC_FIX = datetime.date(2023, 6, 19)  # IP-hint/A matching jumps to >99.8%
TRANCO_SOURCE_CHANGE = datetime.date(2023, 8, 1)  # Alexa phased out
ECH_DISABLE = datetime.date(2023, 10, 5)  # Cloudflare disables ECH globally
GOOGLE_QUIC_APPEARANCE = datetime.date(2024, 2, 11)  # Q043/Q046/Q050 alpn shows up
DNSSEC_SNAPSHOT = datetime.date(2024, 1, 2)  # Table 9 validation snapshot

# Hourly ECH rotation scan window (§4.4.2).
ECH_HOURLY_SCAN_START = datetime.date(2023, 7, 21)
ECH_HOURLY_SCAN_END = datetime.date(2023, 7, 27)

# Simulated epoch: day 0 starts at this many seconds.
_EPOCH_BASE = 1_000_000_000
SECONDS_PER_DAY = 86_400


def day_index(date: datetime.date) -> int:
    """0-based index of *date* within the study window."""
    return (date - STUDY_START).days


def date_of(index: int) -> datetime.date:
    return STUDY_START + datetime.timedelta(days=index)


def epoch_seconds(date: datetime.date, hour: float = 0.0) -> int:
    """Simulated clock value at *date* + *hour*."""
    return int(_EPOCH_BASE + day_index(date) * SECONDS_PER_DAY + hour * 3600)


def total_days() -> int:
    return day_index(STUDY_END) + 1


def study_days(step: int = 1, start: datetime.date = None, end: datetime.date = None) -> List[datetime.date]:
    """Scan days between *start* and *end* inclusive, every *step* days."""
    start = start or STUDY_START
    end = end or STUDY_END
    days = []
    current = start
    while current <= end:
        days.append(current)
        current += datetime.timedelta(days=step)
    return days


def phase_of(date: datetime.date) -> int:
    """1 = before the Tranco source change, 2 = after (paper splits all
    longitudinal analyses at this boundary)."""
    return 1 if date < TRANCO_SOURCE_CHANGE else 2
