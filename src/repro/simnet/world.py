"""The simulated Internet.

Wires the domain population, provider catalogue, DNS infrastructure
(root → TLD → authoritative), public resolvers, ECH client-facing
server, and web-server reachability into one coherent world that the
scanner and the browser testbed interrogate exactly like the paper's
framework interrogated the real Internet.

Time moves forward only: call :meth:`World.set_time` with increasing
(date, hour); zone contents, ECH keys, Tranco membership, and signatures
all follow the clock.

**Answer fast path.** The world owns the shared
:class:`~repro.resolver.authoritative.AnswerCache` (tier 1: rendered
answers; tier 3: wire bytes — see :mod:`repro.resolver.authoritative`)
and the tier-2 zone-body store (:meth:`World.zone_of`): when a domain's
:func:`~repro.simnet.domains.zone_body_fingerprint` is unchanged since
the zone was last built, the built body is reused and only the SOA
serial is rolled (plus a re-sign on date change) instead of rebuilding
from scratch. All tiers arm together via :meth:`World.set_answer_cache`
and default off, so a bare ``World()`` behaves exactly as before.
Invalidation is paired with the per-day zone cache: every site that
clears ``_zone_cache`` (day/ECH-generation rollover in ``set_time``,
``install_faults``/``clear_faults``, ``reset``) also invalidates the
answer cache — codelint rule ``INV01`` enforces the pairing.
"""

from __future__ import annotations

import datetime
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..gcutils import paused_gc

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import ARdata, DSRdata, NSRdata, RRSIGRdata
from ..dnscore.rrset import RRset
from ..dnssec.keys import ZoneKeySet
from ..dnssec.signing import sign_rrset
from ..dnssec.validation import ChainValidator
from ..ech.keys import ECHKeyManager
from ..resolver.authoritative import AnswerCache, AuthoritativeServer
from ..resolver.clock import SimClock
from ..resolver.network import Network
from ..resolver.recursive import RecursiveResolver
from ..resolver.stub import ResolverFrontend, StubResolver
from ..zones.zone import Zone
from . import domains, faults, ipspace, timeline
from .cohorts import DomainProfile, make_profile
from .config import SimConfig
from .providers import PROVIDERS, ProviderSpec

_LONG_VALIDITY = 420 * 86400  # root/TLD signatures cover the whole study

# Synthesized-DS entries kept per TLD zone (LRU: hot delegations survive
# eviction; entries are keyed per day, so a long campaign cycles them).
_DS_CACHE_CAPACITY = 50_000

ECH_PUBLIC_NAME = "cloudflare-ech.com"


class _ProviderTree:
    """Duck-typed ZoneTree serving a provider's infra zone plus whichever
    domain zones are assigned to that provider *today*."""

    def __init__(self, world: "World", provider: ProviderSpec):
        self.world = world
        self.provider = provider
        self.infra_zone: Optional[Zone] = None

    def zone_for(self, name: Name) -> Optional[Zone]:
        profile = self.world.profile_of(name)
        if profile is not None:
            keys = domains.current_provider_keys(
                profile, self.world.config, self.world.current_date
            )
            if self.provider.key in keys:
                return self.world.zone_of(profile)
            # Not served here (any more) — fall through to infra check.
        if self.infra_zone is not None and name.is_subdomain_of(self.infra_zone.apex):
            return self.infra_zone
        return None


class DynamicTldZone(Zone):
    """A TLD zone whose delegations/DS/glue are synthesized on demand
    from the world's domain registry."""

    def __init__(self, world: "World", apex: Name):
        super().__init__(apex, default_ttl=300)
        self.world = world
        self._ds_cache: "OrderedDict[Tuple[Name, int], Tuple[Optional[RRset], List[RRSIGRdata]]]" = OrderedDict()

    # -- answer-cache freshness ----------------------------------------------
    #
    # Unlike a plain zone, delegation/DS/glue answers here are synthesized
    # from world state that moves with the simulation date (provider
    # switches, DNSSEC adoption windows, per-date fault activation), so a
    # cached rendering carries a guard instead of relying on `version`
    # alone. DS answers re-sign with a per-day inception and are scoped
    # to their day outright; everything else pins the delegation facts it
    # was rendered from and revalidates them on the first hit of each new
    # day (a cheap token compare against a full synthesis + wire pass).

    def answer_guard(self, name: Name, rdtype: int):
        day = timeline.day_index(self.world.current_date)
        if rdtype == rdtypes.DS:
            return ["day", day]
        return ["tld", day, self._referral_token(name)]

    def validate_guard(self, guard, name: Name, rdtype: int) -> bool:
        day = timeline.day_index(self.world.current_date)
        if guard[1] == day:
            return True
        if guard[0] == "day":
            return False
        if guard[2] == self._referral_token(name):
            guard[1] = day  # facts unchanged: free hits for the rest of today
            return True
        return False

    def _referral_token(self, name: Name):
        """The delegation facts a non-DS answer for *name* depends on."""
        child = self._child_apex(name)
        if child is None:
            return None
        return (child, tuple(self._delegation_ns_names(child)))

    # -- dynamic lookups -----------------------------------------------------

    def _child_apex(self, name: Name) -> Optional[Name]:
        profile = self.world.profile_of(name)
        if profile is not None and profile.apex.is_subdomain_of(self.apex) and profile.apex != self.apex:
            return profile.apex
        infra = self.world.infra_apex_of(name)
        if infra is not None and infra.is_subdomain_of(self.apex) and infra != self.apex:
            return infra
        return None

    def is_delegation(self, name: Name) -> Optional[Name]:
        if name == self.apex:
            return None
        child = self._child_apex(name)
        if child is None:
            return None
        # A domain in its no-NS phase has no delegation at all.
        if self.world.profile_of(child) is not None:
            if not self._delegation_ns_names(child):
                return None
        return child

    def _delegation_ns_names(self, child: Name) -> List[Name]:
        profile = self.world.profile_of(child)
        if profile is not None:
            keys = domains.current_provider_keys(
                profile, self.world.config, self.world.current_date
            )
            names: List[Name] = []
            for key in keys:
                if key == "selfhosted":
                    names.extend([child.prepend("ns1"), child.prepend("ns2")])
                else:
                    names.extend(PROVIDERS[key].ns_hostnames(self.world.config.seed, profile.name))
            return names
        provider = self.world.infra_provider_of(child)
        if provider is not None:
            return provider.all_ns_hostnames()[:2]
        return []

    def get_rrset(self, name: Name, rdtype: int) -> Optional[RRset]:
        static = super().get_rrset(name, rdtype)
        if static is not None:
            return static
        if rdtype == rdtypes.NS:
            child = self._child_apex(name)
            if child == name:
                ns_names = self._delegation_ns_names(child)
                if ns_names:
                    return RRset(name, rdtypes.NS, self.default_ttl, [NSRdata(n) for n in ns_names])
            return None
        if rdtype == rdtypes.DS:
            rrset, _sigs = self.ds_with_sigs(name)
            return rrset
        if rdtype == rdtypes.A:
            ip = self.world.glue_ip_of(name)
            if ip is not None:
                return RRset(name, rdtypes.A, self.default_ttl, [ARdata(ip)])
        return None

    def get_rrsigs(self, name: Name, rdtype: int) -> List[RRSIGRdata]:
        static = super().get_rrsigs(name, rdtype)
        if static:
            return static
        if rdtype == rdtypes.DS:
            _rrset, sigs = self.ds_with_sigs(name)
            return sigs
        return []

    def ds_with_sigs(self, child: Name) -> Tuple[Optional[RRset], List[RRSIGRdata]]:
        """Synthesize (and sign) the DS RRset for a child domain, if the
        domain is signed AND actually uploaded its DS (the step §4.5.1
        finds missing for half the signed HTTPS domains)."""
        profile = self.world.profile_of(child)
        if profile is None or profile.apex != child:
            return None, []
        config = self.world.config
        date = self.world.current_date
        if not (profile.ds_uploaded and domains.dnssec_active(profile, config, date)):
            return None, []
        injector = self.world.fault_injector
        if injector is not None and injector.ds_suppressed(child, date):
            # Injected §4.5.1 failure: the DS upload "never happened"
            # while the fault is active (checked before the per-day
            # cache so the suppressed answer is never memoized).
            return None, []
        cache_key = (child, timeline.day_index(date))
        cached = self._ds_cache.get(cache_key)
        if cached is not None:
            self._ds_cache.move_to_end(cache_key)
            return cached
        keyset = ZoneKeySet(child)
        rrset = RRset(child, rdtypes.DS, self.default_ttl, [keyset.ksk.ds_record(child)])
        sigs: List[RRSIGRdata] = []
        if self.keyset is not None:
            inception = timeline.epoch_seconds(date) - 3600
            sigs = [sign_rrset(rrset, self.apex, self.keyset.zsk, inception)]
        self._ds_cache[cache_key] = (rrset, sigs)
        while len(self._ds_cache) > _DS_CACHE_CAPACITY:
            self._ds_cache.popitem(last=False)
        return rrset, sigs

    def has_name(self, name: Name) -> bool:
        if super().has_name(name):
            return True
        return self._child_apex(name) is not None or self.world.glue_ip_of(name) is not None


class _TldTree:
    """Duck-typed ZoneTree for the TLD server (hosts every TLD zone)."""

    def __init__(self, world: "World"):
        self.world = world

    def zone_for(self, name: Name) -> Optional[Zone]:
        return self.world.tld_zone_containing(name)


class _GodsEyeSource:
    """RecordSource over the whole world for DNSSEC validation.

    A real validating resolver assembles this view by querying; giving the
    validator direct access is a simulation shortcut with identical
    validation outcomes (the records are the same either way).
    """

    def __init__(self, world: "World"):
        self.world = world

    def fetch_with_sigs(self, name: Name, rdtype: int):
        world = self.world
        if rdtype == rdtypes.DS:
            if name in world.tld_zones:
                zone = world.root_zone
                return zone.get_rrset(name, rdtype), zone.get_rrsigs(name, rdtype)
            tld = world.tld_zone_containing(name)
            if tld is not None and isinstance(tld, DynamicTldZone):
                return tld.ds_with_sigs(name)
            return None, []
        zone = world.authoritative_zone_for(name)
        if zone is None:
            return None, []
        return zone.get_rrset(name, rdtype), zone.get_rrsigs(name, rdtype)

    def zone_apex_of(self, name: Name) -> Optional[Name]:
        zone = self.world.authoritative_zone_for(name)
        return zone.apex if zone is not None else None

    def parent_zone_of(self, apex: Name) -> Optional[Name]:
        if apex == Name.root():
            return None
        if apex in self.world.tld_zones:
            return Name.root()
        tld = self.world.tld_zone_containing(apex)
        if tld is not None:
            return tld.apex
        return Name.root()


class World:
    """The simulated Internet under one :class:`SimConfig`."""

    def __init__(self, config: Optional[SimConfig] = None):
        # Construction allocates the bulk of an immortal object graph
        # (profiles, zones, signatures); pause the cyclic GC so the
        # allocation churn cannot trigger full-heap passes mid-build
        # (same rationale as the per-batch pause in resolver/batch.py).
        with paused_gc():
            self._build(config)

    def _build(self, config: Optional[SimConfig]) -> None:
        self.config = config if config is not None else SimConfig()
        self.profiles: List[DomainProfile] = [
            make_profile(self.config, i) for i in range(self.config.population)
        ]
        self._by_apex: Dict[Name, DomainProfile] = {p.apex: p for p in self.profiles}

        self.current_date: datetime.date = timeline.STUDY_START
        self.current_hour: float = 0.0
        self.clock = SimClock(timeline.epoch_seconds(timeline.STUDY_START))
        self.network = Network(wire_mode=self.config.wire_mode)
        self.ech_manager = ECHKeyManager(
            ECH_PUBLIC_NAME,
            seed=self.config.seed.encode(),
            rotation_hours=self.config.ech_rotation_hours,
        )

        self._zone_cache: Dict[int, Zone] = {}
        self._zone_cache_stamp: Tuple[datetime.date, int] = (self.current_date, 0)
        self._fault_injector: Optional[faults.FaultInjector] = None

        # Layered answer fast path: one cache shared by every
        # authoritative server and the network's wire path; starts
        # disarmed (set_answer_cache arms it). Tier-2 zone-body reuse
        # state lives beside it.
        self.answer_cache = AnswerCache()
        self.network.answer_cache = self.answer_cache
        self._zone_bodies: Dict[int, Tuple[tuple, Zone]] = {}
        self.zone_builds = 0
        self.zone_body_reuses = 0

        self._build_infrastructure()
        self._build_resolvers()

    def reset(self) -> None:
        """Return the world to its just-built state so it can be reused.

        Rewinds the clock to the study start and flushes every cache
        whose entries are stamped with (or derived from) the current
        time: the per-day zone cache and both resolvers' record and
        delegation caches. Deterministic time-keyed memos — the TLD DS
        cache (keyed per day) and the ECH key-generation table — are
        kept: their entries are pure functions of (config, date/hour).
        A reset world answers every query bit-for-bit like a freshly
        built one, which is what lets the snapshot registry
        (:mod:`~repro.simnet.snapshot`) hand one world to a sequence of
        pipeline tasks instead of rebuilding per task.

        Installed fault schedules are cleared too: snapshots and
        registry checkins must stay scenario-free, so every run
        re-installs its own schedule after checkout."""
        self.clear_faults()
        self.current_date = timeline.STUDY_START
        self.current_hour = 0.0
        self.clock.rewind(timeline.epoch_seconds(timeline.STUDY_START))
        self._zone_cache.clear()
        self._zone_cache_stamp = (self.current_date, 0)
        # Back to the just-built state: disarmed, empty, counters zeroed
        # — a checked-in pooled world (or a snapshot about to be
        # pickled) must not leak armed or stale fast-path state.
        self.answer_cache.reset()
        self._zone_bodies.clear()
        self.zone_builds = 0
        self.zone_body_reuses = 0
        for resolver in (self.google_resolver, self.cloudflare_resolver):
            resolver.reset()
        # Drop the batch scheduler (it holds per-run coalescing counters)
        # and zero the transport counters so RunStats.of_world reports
        # only the next run's work.
        self.stub.batch = None
        self.network.dns_query_count = 0
        self.network.tcp_connect_count = 0

    # ------------------------------------------------------------------
    # infrastructure
    # ------------------------------------------------------------------

    def _build_infrastructure(self) -> None:
        now = timeline.epoch_seconds(timeline.STUDY_START) - 86400
        expiration = now + _LONG_VALIDITY

        # Infra (provider nameserver) zones + glue map.
        self._infra_zones: Dict[Name, Zone] = {}
        self._infra_provider: Dict[Name, ProviderSpec] = {}
        self._glue: Dict[Name, str] = {}
        for provider in PROVIDERS.values():
            if not provider.ns_domain:
                continue
            apex = Name.from_text(provider.ns_domain + ".")
            if self.profile_of(apex) is not None:
                # e.g. cf-ns.com is both a measured domain and an NS suffix;
                # the domain zone carries the NS-host A records instead.
                for host in provider.all_ns_hostnames():
                    self._glue[host] = provider.server_ip
                self._infra_provider[apex] = provider
                continue
            zone = Zone(apex, default_ttl=300)
            zone.ensure_soa()
            hostnames = provider.all_ns_hostnames()
            zone.add_rrset(
                RRset(apex, rdtypes.NS, 300, [NSRdata(h) for h in hostnames[:2]])
            )
            for host in hostnames:
                zone.add_rrset(RRset(host, rdtypes.A, 300, [ARdata(provider.server_ip)]))
                self._glue[host] = provider.server_ip
            self._infra_zones[apex] = zone
            self._infra_provider[apex] = provider
        for profile in self.profiles:
            if profile.provider_key == "selfhosted":
                ns_ip = ipspace.origin_v4(self.config.seed, profile.name, generation=7)
                self._glue[profile.apex.prepend("ns1")] = ns_ip
                self._glue[profile.apex.prepend("ns2")] = ns_ip

        # TLD zones.
        tld_names = sorted(
            {p.apex.labels[-2].decode() for p in self.profiles}
            | {apex.labels[-2].decode() for apex in self._infra_zones}
        )
        self.tld_zones: Dict[Name, DynamicTldZone] = {}
        for tld in tld_names:
            apex = Name.from_text(tld + ".")
            zone = DynamicTldZone(self, apex)
            zone.ensure_soa(Name.from_text(f"a.nic.{tld}."))
            zone.add_rrset(
                RRset(apex, rdtypes.NS, 300, [NSRdata(Name.from_text(f"a.nic.{tld}."))])
            )
            zone.add_rrset(
                RRset(Name.from_text(f"a.nic.{tld}."), rdtypes.A, 300, [ARdata(ipspace.TLD_SERVER_IP)])
            )
            zone.sign(now, expiration=expiration)
            self.tld_zones[apex] = zone

        # Root zone.
        root = Zone(Name.root(), default_ttl=300)
        root.ensure_soa(Name.from_text("a.root-servers.net."))
        root.add_rrset(
            RRset(Name.root(), rdtypes.NS, 300, [NSRdata(Name.from_text("a.root-servers.net."))])
        )
        root.add_rrset(
            RRset(Name.from_text("a.root-servers.net."), rdtypes.A, 300, [ARdata(ipspace.ROOT_SERVER_IP)])
        )
        for apex in self.tld_zones:
            root.delegate(apex, [Name.from_text(f"a.nic.{apex.to_text(omit_final_dot=True)}.")])
            root.add_rrset(
                RRset(
                    Name.from_text(f"a.nic.{apex.to_text(omit_final_dot=True)}."),
                    rdtypes.A,
                    300,
                    [ARdata(ipspace.TLD_SERVER_IP)],
                )
            )
        root.sign(now, expiration=expiration)
        # Upload each TLD's DS into the root (all TLDs are secure).
        for apex, zone in self.tld_zones.items():
            ds_rrset = RRset(apex, rdtypes.DS, 300, zone.ds_rdatas())
            root._records[(apex, rdtypes.DS)] = ds_rrset
            root._rrsigs[(apex, rdtypes.DS)] = [
                sign_rrset(ds_rrset, Name.root(), root.keyset.zsk, now, expiration)
            ]
        self.root_zone = root

        # Servers.
        root_server = AuthoritativeServer("root", answer_cache=self.answer_cache)
        root_server.tree.add_zone(root)
        self.network.register_dns(ipspace.ROOT_SERVER_IP, root_server)

        tld_server = AuthoritativeServer("tld", answer_cache=self.answer_cache)
        tld_server.tree = _TldTree(self)
        self.network.register_dns(ipspace.TLD_SERVER_IP, tld_server)

        self.provider_servers: Dict[str, AuthoritativeServer] = {}
        for provider in PROVIDERS.values():
            if not provider.server_ip:
                continue
            server = AuthoritativeServer(provider.key, answer_cache=self.answer_cache)
            server.tree = _ProviderTree(self, provider)
            server.tree.infra_zone = self._infra_zones.get(
                Name.from_text(provider.ns_domain + ".") if provider.ns_domain else None
            )
            if not provider.supports_https:
                server.unsupported_rdtypes = {rdtypes.HTTPS, rdtypes.SVCB}
            self.network.register_dns(provider.server_ip, server)
            self.provider_servers[provider.key] = server

        # Self-hosted domains run their own authoritative servers.
        for profile in self.profiles:
            if profile.provider_key == "selfhosted":
                server = AuthoritativeServer(
                    f"selfhosted:{profile.name}", answer_cache=self.answer_cache
                )
                server.tree = _ProviderTree(self, PROVIDERS["selfhosted"])
                ns_ip = ipspace.origin_v4(self.config.seed, profile.name, generation=7)
                self.network.register_dns(ns_ip, server)

        self.validator_source = _GodsEyeSource(self)

    def _build_resolvers(self) -> None:
        self.google_resolver = RecursiveResolver(
            "google-public-dns",
            self.network,
            [ipspace.ROOT_SERVER_IP],
            self.clock,
            validator=ChainValidator(self.validator_source),
            negative_ttl=self.config.negative_ttl,
        )
        self.cloudflare_resolver = RecursiveResolver(
            "cloudflare-public-dns",
            self.network,
            [ipspace.ROOT_SERVER_IP],
            self.clock,
            validator=ChainValidator(self.validator_source),
            negative_ttl=self.config.negative_ttl,
        )
        self.network.register_dns(ipspace.GOOGLE_RESOLVER_IP, ResolverFrontend(self.google_resolver))
        self.network.register_dns(
            ipspace.CLOUDFLARE_RESOLVER_IP, ResolverFrontend(self.cloudflare_resolver)
        )
        self.stub = StubResolver([self.google_resolver, self.cloudflare_resolver])

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def set_time(self, date: datetime.date, hour: float = 0.0) -> None:
        """Advance the world to *date* + *hour* (monotonic)."""
        target = timeline.epoch_seconds(date, hour)
        if target < self.clock.now:
            raise ValueError("world time must move forward")
        self.clock.set(target)
        self.current_date = date
        self.current_hour = hour
        generation = self.ech_manager.generation_for_hour(self.absolute_hour())
        stamp = (date, generation)
        if stamp != self._zone_cache_stamp:
            # The answer cache deliberately survives this flush: its keys
            # and per-entry guards already encode everything a stamp
            # change can alter. A zone rebuilt after the flush gets a
            # fresh uid (old entries can never alias it), a body-reused
            # zone keeps uid+version with SOA-bearing entries
            # serial-guarded, and DynamicTldZone entries revalidate
            # their delegation facts across day boundaries. Cross-day
            # survival of the surviving entries is the fast path's main
            # win (most of a campaign's questions repeat across days).
            self._zone_cache.clear()  # codelint: disable=INV01
            self._zone_cache_stamp = stamp
        if self._fault_injector is not None:
            self._fault_injector.on_time(date, hour)

    # ------------------------------------------------------------------
    # fault schedules (chaos scenarios)
    # ------------------------------------------------------------------

    @property
    def fault_injector(self) -> Optional["faults.FaultInjector"]:
        return self._fault_injector

    def install_faults(self, schedule: Optional["faults.FaultSchedule"]) -> None:
        """Compile *schedule* into this world's network/zone hooks.

        Replaces any previously installed schedule; ``None`` (or an
        empty schedule) just clears. The per-day zone cache is flushed
        both ways so zone-level faults appear/disappear immediately."""
        self.clear_faults()
        if schedule is None or not schedule.specs:
            return
        self._fault_injector = faults.FaultInjector(self, schedule)
        self._fault_injector.arm()
        self._zone_cache.clear()
        self.answer_cache.invalidate()

    def clear_faults(self) -> None:
        if self._fault_injector is None:
            return
        self._fault_injector.disarm()
        self._fault_injector = None
        self._zone_cache.clear()
        self.answer_cache.invalidate()

    def absolute_hour(self) -> int:
        return timeline.day_index(self.current_date) * 24 + int(self.current_hour)

    # ------------------------------------------------------------------
    # answer fast path
    # ------------------------------------------------------------------

    def set_answer_cache(self, enabled: bool) -> None:
        """Arm (or disarm) the layered answer fast path — all tiers.

        Campaign drivers arm it for the duration of a run and disarm in
        their cleanup path; counters survive disarming so
        ``RunStats.of_world`` can report them after the run."""
        self.answer_cache.set_enabled(enabled)
        if not enabled:
            self._zone_bodies.clear()

    # ------------------------------------------------------------------
    # registry lookups
    # ------------------------------------------------------------------

    def profile_of(self, name: Name) -> Optional[DomainProfile]:
        """The domain profile owning *name* (itself or an ancestor)."""
        probe = name
        while probe.split_depth() >= 2:
            profile = self._by_apex.get(probe)
            if profile is not None:
                return profile
            probe = probe.parent()
        return None

    def profile_by_name(self, text: str) -> Optional[DomainProfile]:
        return self._by_apex.get(Name.from_text(text if text.endswith(".") else text + "."))

    def infra_apex_of(self, name: Name) -> Optional[Name]:
        probe = name
        while probe.split_depth() >= 2:
            if probe in self._infra_zones or probe in self._infra_provider:
                return probe
            probe = probe.parent()
        return None

    def infra_provider_of(self, apex: Name) -> Optional[ProviderSpec]:
        return self._infra_provider.get(apex)

    def glue_ip_of(self, name: Name) -> Optional[str]:
        return self._glue.get(name)

    def tld_zone_containing(self, name: Name) -> Optional[DynamicTldZone]:
        if name.split_depth() < 1:
            return None
        tld_apex = Name((name.labels[-2], b""))
        return self.tld_zones.get(tld_apex)

    def authoritative_zone_for(self, name: Name) -> Optional[Zone]:
        """God's-eye: the zone authoritative for *name* today."""
        if name == Name.root() or name.split_depth() == 0:
            return self.root_zone
        profile = self.profile_of(name)
        if profile is not None:
            keys = domains.current_provider_keys(profile, self.config, self.current_date)
            if keys:
                return self.zone_of(profile)
            return None  # no-NS phase: nothing authoritative
        infra = self.infra_apex_of(name)
        if infra is not None and infra in self._infra_zones:
            return self._infra_zones[infra]
        tld = self.tld_zone_containing(name)
        if tld is not None:
            return tld
        if name.split_depth() == 1 and name in self.tld_zones:
            return self.tld_zones[name]
        return self.root_zone

    # ------------------------------------------------------------------
    # zones
    # ------------------------------------------------------------------

    def zone_of(self, profile: DomainProfile) -> Zone:
        """Build (or fetch from the per-day cache) the domain's zone.

        Tier-2 zone-body reuse: when the fast path is armed and the
        domain's :func:`~repro.simnet.domains.zone_body_fingerprint` is
        unchanged since the zone was last built, the stored body is
        advanced to today (SOA serial roll + re-sign on date change;
        nothing at all within the same day) instead of rebuilding.
        Faulted builds (a live zone overlay) are never stored or reused
        — their content is not a pure function of the fingerprint."""
        zone = self._zone_cache.get(profile.index)
        if zone is None:
            ech_wire = self.ech_manager.published_wire(self.absolute_hour())
            overlay = None
            if self._fault_injector is not None:
                overlay = self._fault_injector.zone_overlay(profile, self.current_date)
                ech_wire = self._fault_injector.ech_wire_for(
                    profile, self.current_date, ech_wire, self.absolute_hour()
                )
            reusable = overlay is None and self.answer_cache.enabled
            fingerprint: Optional[tuple] = None
            if reusable:
                fingerprint = domains.zone_body_fingerprint(
                    profile, self.config, self.current_date, ech_wire
                )
                stored = self._zone_bodies.get(profile.index)
                if stored is not None and stored[0] == fingerprint:
                    zone = stored[1]
                    serial = timeline.day_index(self.current_date) + 1
                    if zone.soa is not None and zone.soa[0].serial != serial:
                        zone.roll_soa_serial(serial)
                        if zone.signed:
                            zone.sign(timeline.epoch_seconds(self.current_date) - 3600)
                    self.zone_body_reuses += 1
                    self._zone_cache[profile.index] = zone
                    return zone
            zone = domains.build_zone(
                profile, self.config, self.current_date, ech_wire, self.current_hour,
                overlay=overlay,
            )
            self.zone_builds += 1
            if self._infra_provider.get(profile.apex) is not None:
                # Domain doubles as an NS suffix (cf-ns.com): host the
                # provider's NS-host A records inside the domain zone.
                provider = self._infra_provider[profile.apex]
                for host in provider.all_ns_hostnames():
                    zone.add_rrset(RRset(host, rdtypes.A, 300, [ARdata(provider.server_ip)]))
            if reusable:
                self._zone_bodies[profile.index] = (fingerprint, zone)
            self._zone_cache[profile.index] = zone
        return zone

    # ------------------------------------------------------------------
    # Tranco
    # ------------------------------------------------------------------

    def tranco_list(self, date: Optional[datetime.date] = None) -> List[str]:
        """The ranked daily list (rank 1 first)."""
        date = date or self.current_date
        present = [
            p for p in self.profiles if domains.is_listed(p, self.config, date)
        ]
        present.sort(key=lambda p: domains.daily_rank_key(p, self.config, date))
        return [p.name for p in present]

    def listed_profiles(self, date: Optional[datetime.date] = None) -> List[DomainProfile]:
        date = date or self.current_date
        return [p for p in self.profiles if domains.is_listed(p, self.config, date)]

    # ------------------------------------------------------------------
    # connectivity (TLS reachability for §4.3.5)
    # ------------------------------------------------------------------

    def tls_reachable(self, profile: DomainProfile, ip: str, date: Optional[datetime.date] = None) -> bool:
        """Would a TLS handshake to *ip* for this domain succeed today?"""
        date = date or self.current_date
        if not self.network.is_reachable(ip, 443):
            return False  # scheduled outage of the web endpoint
        a_v4, a_v6, hint_v4, hint_v6 = domains.serving_addresses(profile, self.config, date)
        if not domains.hint_mismatch_active(profile, self.config, date):
            return ip in (a_v4, a_v6, hint_v4, hint_v6)
        reach = domains.mismatch_reachability(profile, self.config)
        if reach == domains.REACH_BOTH:
            return ip in (a_v4, a_v6, hint_v4, hint_v6)
        if reach == domains.REACH_HINT_ONLY:
            return ip in (hint_v4, hint_v6)
        if reach == domains.REACH_A_ONLY:
            return ip in (a_v4, a_v6)
        return False


