"""Domain profiles: the deterministic 'genome' of every simulated domain.

A profile fixes which behavioural cohorts a domain belongs to — HTTPS
adoption and timing, provider assignment, Cloudflare plan/proxy state,
intermittency mechanism, hint-mismatch behaviour, DNSSEC posture — all
derived as pure functions of (seed, domain index) so any module can
recompute them without shared state.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..dnscore.names import Name
from . import timeline
from .config import SimConfig
from .determinism import choice, integer, unit_float, weighted_choice
from .providers import (
    NON_HTTPS_PROVIDER_KEYS,
    NONCF_HTTPS_WEIGHTS,
    PROVIDERS,
    REGISTRARS,
)

_TLDS = (
    ("com", 0.52), ("net", 0.10), ("org", 0.09), ("io", 0.05), ("co", 0.04),
    ("de", 0.04), ("cn", 0.03), ("ru", 0.03), ("uk", 0.02), ("fr", 0.02),
    ("jp", 0.02), ("br", 0.02), ("ee", 0.01), ("pk", 0.005), ("other", 0.005),
)

_WORDS = (
    "alpha", "breeze", "cedar", "delta", "ember", "flux", "grove", "harbor",
    "iris", "juniper", "krill", "lumen", "maple", "nimbus", "opal", "pine",
    "quartz", "raven", "sage", "tidal", "umbra", "vertex", "willow", "xenon",
    "yarrow", "zephyr", "atlas", "basil", "comet", "dune",
)

# Intermittency mechanisms (§4.2.3).
INTERMIT_NONE = "none"
INTERMIT_PROXY_TOGGLE = "proxy-toggle"  # Cloudflare proxied option on/off
INTERMIT_MIXED_PROVIDERS = "mixed-providers"  # not all providers serve HTTPS
INTERMIT_NS_CHANGE = "ns-change"  # moved off Cloudflare mid-study
INTERMIT_NO_NS = "no-ns"  # NS records vanish on deactivation

# Hint-mismatch behaviours (§4.3.5 / Appendix E.3).
HINTS_CLEAN = "clean"
HINTS_PRE_FIX = "pre-fix"  # mismatch episodes only before Jun 19
HINTS_EPISODIC = "episodic"  # occasional short mismatches all period
HINTS_PERSISTENT = "persistent"  # cf-ns domains, whole period

# Non-Cloudflare record shapes (Table 5 / Appendix E.1).
SHAPE_SERVICE_SELF = "service-self"  # "1 ." (maybe empty SvcParams)
SHAPE_SERVICE_ALPN = "service-alpn"  # "1 . alpn=..."
SHAPE_ALIAS_ENDPOINT = "alias-endpoint"  # "0 cdn.example."
SHAPE_ALIAS_SELF = "alias-self"  # "0 ." (broken alias, 19-22 domains)
SHAPE_ALIAS_WWW = "alias-www"  # err.ee style
SHAPE_MULTI_PRIORITY = "multi-priority"  # nexuspipe geo-routing
SHAPE_HTTP11 = "http11-only"  # jpberlin etc.
SHAPE_DRAFT_H3 = "draft-h3"  # gentoo.org: h3-27 + h3-29
SHAPE_IP_TARGET = "ip-target"  # TargetName is an IP address literal
SHAPE_URL_TARGET = "url-target"  # TargetName is an https:// URL
SHAPE_EMPTY_SERVICE = "service-empty"  # ServiceMode, no SvcParams


@dataclass(frozen=True)
class DomainProfile:
    """Everything fixed about one simulated domain."""

    index: int
    name: str  # presentation apex name without trailing dot
    tld: str
    base_rank: float  # 0 = most popular
    is_stable: bool  # always in the daily Tranco list (modulo source change)
    exits_at_source_change: bool
    enters_at_source_change: bool
    churn_presence: float  # daily presence probability for tail domains

    adopter: bool
    adoption_start_day: int  # day index; may be negative (adopted pre-study)
    deactivation_day: Optional[int]
    www_has_record: bool
    www_only: bool

    provider_key: str
    secondary_provider_key: Optional[str]  # mixed-provider cohort
    intermittency: str
    ns_change_day: Optional[int]
    is_cloudflare: bool
    custom_config: bool  # Cloudflare: customized vs default record
    free_plan: bool  # Cloudflare: auto-ECH cohort
    noncf_shape: str  # record shape for non-CF adopters
    noncf_has_ech: bool
    google_owned: bool

    hint_behaviour: str
    ipv6_hints: bool

    dnssec_signed: bool
    ds_uploaded: bool
    dnssec_sign_day: int  # when the zone became signed (Fig 5b growth)
    registrar: str

    @property
    def apex(self) -> Name:
        # Name.from_text memoizes, so this stays cheap in hot loops.
        return Name.from_text(self.name + ".")

    @property
    def www(self) -> Name:
        return Name.from_text("www." + self.name + ".")


# Domains the paper names; planted at fixed indices for tests/examples.
SPECIAL_DOMAINS: Tuple[Tuple[str, str], ...] = (
    # (name, special behaviour key)
    ("cf-ns.com", "persistent-mismatch"),
    ("cf-ns.net", "persistent-mismatch"),
    ("canva-apps.cn", "persistent-mismatch"),
    ("cloudflare-cn.com", "persistent-mismatch"),
    ("polestar.cn", "persistent-mismatch"),
    ("err.ee", "google-alias-www"),
    ("gentoo.org", "selfhosted-draft-h3"),
    ("newlinesmag.com", "cf-alias-self"),
    ("unze.com.pk", "cf-ip-target"),
    ("idaillinois.org", "cf-ip-target"),
    ("pokemon-arena.net", "cf-ip-target"),
    ("gachoiphungluan.com", "cf-url-target"),
    ("host-ir.com", "weird-priority-443"),
    ("pionerfm.ru", "weird-priority-1800"),
    ("cloudflare-ech.com", "cf-ech-test"),
    ("cloudflareresearch.com", "cf-ech-test"),
    # Appendix E.1: the geo-routing.nexuspipe.com multi-priority scheme
    # (14 domains at full scale) and the HTTP/1.1-only jpberlin cohort.
    ("nexclient-shop.com", "nexuspipe-geo"),
    ("nexclient-media.net", "nexuspipe-geo"),
    ("mailhost-berlin.de", "http11-only"),
)

# Domains Cloudflare kept ECH-enabled after the Oct 5 global disable; the
# paper excludes them from daily ECH counts (§4.4.1 footnote 10).
ECH_TEST_DOMAINS = ("cloudflare-ech.com", "cloudflareresearch.com")


def special_behaviour_of(index: int) -> Optional[Tuple[str, str]]:
    if index < len(SPECIAL_DOMAINS):
        return SPECIAL_DOMAINS[index]
    return None


def _domain_name(seed: str, index: int) -> Tuple[str, str]:
    special = special_behaviour_of(index)
    if special is not None:
        name = special[0]
        return name, name.rsplit(".", 1)[1]
    tld = weighted_choice(seed, "tld", index, options=_TLDS)
    if tld == "other":
        tld = choice(seed, "tld-other", index, options=("se", "nl", "it", "es", "pl"))
    word_a = choice(seed, "word-a", index, options=_WORDS)
    word_b = choice(seed, "word-b", index, options=_WORDS)
    return f"{word_a}-{word_b}-{index:05d}.{tld}", tld


def _pick_noncf_provider(seed: str, index: int) -> str:
    return weighted_choice(seed, "noncf-provider", index, options=NONCF_HTTPS_WEIGHTS)


def make_profile(config: SimConfig, index: int) -> DomainProfile:
    """Derive the full profile of domain *index* under *config*."""
    seed = config.seed
    name, tld = _domain_name(seed, index)
    special = special_behaviour_of(index)
    special_kind = special[1] if special else None

    # -- popularity & presence ------------------------------------------------
    # Interleave stability with rank: stable domains cluster at high ranks
    # (Fig 8) but with overlap.
    stable_roll = unit_float(seed, "stable", index)
    rank_noise = unit_float(seed, "rank-noise", index)
    is_stable = stable_roll < config.stable_fraction or special_kind is not None
    if is_stable:
        base_rank = 0.65 * unit_float(seed, "rank", index) + 0.15 * rank_noise
    else:
        base_rank = 0.35 + 0.65 * unit_float(seed, "rank", index)
    exits = (
        is_stable
        and special_kind is None
        and unit_float(seed, "exit", index) < config.source_change_exit_fraction
    )
    enters = (
        not is_stable
        and unit_float(seed, "enter", index) < 0.12
    )
    churn_presence = config.churn_presence_min + (
        config.churn_presence_max - config.churn_presence_min
    ) * (1.0 - base_rank)

    # -- adoption ----------------------------------------------------------------
    if special_kind is not None:
        adopter = True
    elif is_stable:
        adopter = unit_float(seed, "adopt", index) < config.stable_adoption
    else:
        adopter = unit_float(seed, "adopt", index) < config.churn_adoption
    if is_stable:
        # Mostly adopted before the study; a thin tail adopts during it.
        if unit_float(seed, "adopt-when", index) < 0.88:
            adoption_start_day = -integer(seed, "adopt-day", index, bound=400) - 1
        else:
            adoption_start_day = integer(seed, "adopt-day", index, bound=timeline.total_days())
    else:
        adoption_start_day = (
            integer(seed, "adopt-day", index, bound=config.churn_adoption_spread_days)
            - config.churn_adoption_spread_days // 3
        )
    deactivation_day: Optional[int] = None
    if adopter and is_stable and special_kind is None:
        hazard_window = timeline.total_days() - timeline.day_index(timeline.TRANCO_SOURCE_CHANGE)
        if unit_float(seed, "deact", index) < config.stable_deactivation_hazard * hazard_window:
            deactivation_day = timeline.day_index(timeline.TRANCO_SOURCE_CHANGE) + integer(
                seed, "deact-day", index, bound=hazard_window
            )

    www_only = adopter and unit_float(seed, "www-only", index) < config.www_only_fraction
    www_has_record = adopter and (
        www_only or unit_float(seed, "www", index) < config.www_coverage
    )

    # -- provider & cohorts ----------------------------------------------------------
    noncf_share = config.noncf_adopter_fraction * config.noncf_boost
    provider_key = "cloudflare"
    secondary: Optional[str] = None
    intermittency = INTERMIT_NONE
    ns_change_day: Optional[int] = None
    custom_config = False
    free_plan = False
    noncf_shape = SHAPE_SERVICE_SELF
    noncf_has_ech = False
    google_owned = False

    if special_kind == "cf-ech-test":
        provider_key = "cloudflare"
        free_plan = True
    elif special_kind == "nexuspipe-geo":
        provider_key = "nexuspipe"
        noncf_shape = SHAPE_MULTI_PRIORITY
    elif special_kind == "http11-only":
        provider_key = "jpberlin"
        noncf_shape = SHAPE_HTTP11
    elif special_kind in ("persistent-mismatch",):
        provider_key = "cfns"
    elif special_kind == "google-alias-www":
        provider_key = "google"
        noncf_shape = SHAPE_ALIAS_WWW
    elif special_kind == "selfhosted-draft-h3":
        provider_key = "selfhosted"
        noncf_shape = SHAPE_DRAFT_H3
    elif special_kind in ("cf-alias-self", "cf-ip-target", "cf-url-target",
                          "weird-priority-443", "weird-priority-1800"):
        provider_key = "cloudflare"
        custom_config = True
        noncf_shape = {
            "cf-alias-self": SHAPE_ALIAS_SELF,
            "cf-ip-target": SHAPE_IP_TARGET,
            "cf-url-target": SHAPE_URL_TARGET,
            "weird-priority-443": SHAPE_MULTI_PRIORITY,
            "weird-priority-1800": SHAPE_MULTI_PRIORITY,
        }[special_kind]
    elif adopter:
        roll = unit_float(seed, "provider", index)
        if roll < noncf_share:
            provider_key = _pick_noncf_provider(seed, index)
            shape_roll = unit_float(seed, "shape", index)
            if provider_key == "google":
                google_owned = unit_float(seed, "google-owned", index) < 0.94
                if shape_roll < 0.95:
                    noncf_shape = SHAPE_EMPTY_SERVICE
                else:
                    noncf_shape = SHAPE_SERVICE_ALPN
            elif provider_key == "godaddy":
                noncf_shape = SHAPE_ALIAS_ENDPOINT if shape_roll < 0.992 else SHAPE_SERVICE_ALPN
            elif provider_key == "nexuspipe":
                noncf_shape = SHAPE_MULTI_PRIORITY
            elif provider_key == "jpberlin":
                noncf_shape = SHAPE_HTTP11
            else:
                # The long tail mostly publishes "1 ." with an alpn
                # (§4.3.4: only 8.44% of non-CF domains omit alpn — the
                # omitters are dominated by Google/GoDaddy shapes).
                if shape_roll < 0.94:
                    noncf_shape = SHAPE_SERVICE_SELF if shape_roll < 0.84 else SHAPE_SERVICE_ALPN
                elif shape_roll < 0.97:
                    noncf_shape = SHAPE_EMPTY_SERVICE
                elif shape_roll < 0.993:
                    noncf_shape = SHAPE_ALIAS_ENDPOINT
                else:
                    noncf_shape = SHAPE_ALIAS_SELF
            noncf_has_ech = (
                provider_key in ("ubmdns", "domainactive", "informadns")
                or unit_float(seed, "noncf-ech", index) < config.noncf_ech_fraction * 0.3
            )
        else:
            if unit_float(seed, "cfns", index) < config.cfns_fraction:
                provider_key = "cfns"
            custom_limit = (
                config.custom_config_stable if is_stable else config.custom_config_churn
            )
            custom_config = unit_float(seed, "custom", index) < custom_limit
            free_plan = unit_float(seed, "plan", index) < config.free_plan_fraction
            # Intermittency cohorts.
            iroll = unit_float(seed, "intermit", index)
            if iroll < config.proxied_toggle_fraction:
                intermittency = INTERMIT_PROXY_TOGGLE
            elif iroll < config.proxied_toggle_fraction + config.mixed_provider_fraction:
                intermittency = INTERMIT_MIXED_PROVIDERS
                secondary = choice(
                    seed, "secondary", index, options=tuple(NON_HTTPS_PROVIDER_KEYS)
                )
            elif iroll < (
                config.proxied_toggle_fraction
                + config.mixed_provider_fraction
                + config.ns_change_fraction
            ):
                intermittency = INTERMIT_NS_CHANGE
                window = timeline.total_days()
                ns_change_day = integer(seed, "ns-change-day", index, bound=window - 40) + 20
            elif iroll < (
                config.proxied_toggle_fraction
                + config.mixed_provider_fraction
                + config.ns_change_fraction
                + config.no_ns_fraction
            ):
                intermittency = INTERMIT_NO_NS
    else:
        provider_key = choice(seed, "plain-provider", index, options=tuple(NON_HTTPS_PROVIDER_KEYS))

    # -- hints -------------------------------------------------------------------------
    hint_behaviour = HINTS_CLEAN
    ipv6_hints = unit_float(seed, "v6hint", index) < config.ipv6hint_fraction
    if special_kind == "persistent-mismatch":
        hint_behaviour = HINTS_PERSISTENT
    elif adopter and provider_key in ("cloudflare", "cfns") and not custom_config:
        hroll = unit_float(seed, "hints", index)
        if hroll < config.hint_mismatch_prefix_fraction:
            hint_behaviour = HINTS_PRE_FIX
        elif hroll < config.hint_mismatch_prefix_fraction + config.hint_mismatch_post_fraction:
            hint_behaviour = HINTS_EPISODIC

    # -- DNSSEC --------------------------------------------------------------------------
    if adopter:
        # Newly-listed (churny) adopters sign far less — this is what drives
        # the decreasing dynamic-list trend of Fig 5a while Fig 5b grows.
        signed_fraction = config.signed_fraction_adopters * (1.0 if is_stable else 0.20)
        dnssec_signed = unit_float(seed, "signed", index) < signed_fraction
        ds_prob = (
            config.ds_upload_given_cf
            if provider_key in ("cloudflare", "cfns")
            else config.ds_upload_given_noncf
        )
    else:
        dnssec_signed = unit_float(seed, "signed", index) < config.signed_fraction_others
        ds_prob = config.ds_upload_given_no_https
    ds_uploaded = dnssec_signed and unit_float(seed, "ds", index) < ds_prob
    # Overlapping domains' signed share grows through the study (Fig 5b):
    # a slice of signed stable adopters sign mid-study.
    if dnssec_signed and is_stable and unit_float(seed, "sign-when", index) < 0.22:
        dnssec_sign_day = integer(seed, "sign-day", index, bound=config.signed_growth_days)
    else:
        dnssec_sign_day = -1
    provider = PROVIDERS[provider_key]
    if provider.registrar_names and unit_float(seed, "registrar", index) < 0.26:
        registrar = provider.registrar_names[0]
    else:
        registrar = choice(seed, "registrar-pick", index, options=REGISTRARS)

    return DomainProfile(
        index=index,
        name=name,
        tld=tld,
        base_rank=base_rank,
        is_stable=is_stable,
        exits_at_source_change=exits,
        enters_at_source_change=enters,
        churn_presence=churn_presence,
        adopter=adopter,
        adoption_start_day=adoption_start_day,
        deactivation_day=deactivation_day,
        www_has_record=www_has_record,
        www_only=www_only,
        provider_key=provider_key,
        secondary_provider_key=secondary,
        intermittency=intermittency,
        ns_change_day=ns_change_day,
        is_cloudflare=provider_key in ("cloudflare", "cfns"),
        custom_config=custom_config,
        free_plan=free_plan,
        noncf_shape=noncf_shape,
        noncf_has_ech=noncf_has_ech,
        google_owned=google_owned,
        hint_behaviour=hint_behaviour,
        ipv6_hints=ipv6_hints,
        dnssec_signed=dnssec_signed,
        ds_uploaded=ds_uploaded,
        dnssec_sign_day=dnssec_sign_day,
        registrar=registrar,
    )
