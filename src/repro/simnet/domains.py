"""Per-day domain state and DNS record synthesis.

Pure functions from (profile, config, date) to the domain's observable
state: Tranco presence, HTTPS activation, provider set, IP-hint
consistency, and the actual zone contents a provider would serve that
day. Everything is deterministic, so scanners, validators, and analyses
agree without shared mutable state.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..dnscore.rdata import AAAARdata, ARdata, CNAMERdata, HTTPSRdata, NSRdata
from ..dnscore.rrset import RRset
from ..svcb.params import (
    ALPN_H2,
    ALPN_H3,
    ALPN_H3_27,
    ALPN_H3_29,
    ALPN_HTTP11,
    GOOGLE_QUIC_VERSIONS,
    Alpn,
    Ech,
    Ipv4Hint,
    Ipv6Hint,
    Port,
    SvcParams,
)
from ..zones.zone import Zone
from . import cohorts, ipspace, timeline
from .cohorts import (
    DomainProfile,
    HINTS_EPISODIC,
    HINTS_PERSISTENT,
    HINTS_PRE_FIX,
    INTERMIT_MIXED_PROVIDERS,
    INTERMIT_NO_NS,
    INTERMIT_NS_CHANGE,
    INTERMIT_PROXY_TOGGLE,
    SHAPE_ALIAS_ENDPOINT,
    SHAPE_ALIAS_SELF,
    SHAPE_ALIAS_WWW,
    SHAPE_DRAFT_H3,
    SHAPE_EMPTY_SERVICE,
    SHAPE_HTTP11,
    SHAPE_IP_TARGET,
    SHAPE_MULTI_PRIORITY,
    SHAPE_SERVICE_ALPN,
    SHAPE_SERVICE_SELF,
    SHAPE_URL_TARGET,
)
from .config import SimConfig
from .determinism import choice, integer, unit_float
from .providers import PROVIDERS, NON_HTTPS_PROVIDER_KEYS

ROOT_NAME = Name.root()


# ---------------------------------------------------------------------------
# Tranco presence
# ---------------------------------------------------------------------------

def is_listed(profile: DomainProfile, config: SimConfig, date: datetime.date) -> bool:
    """Is the domain in the daily Tranco list on *date*?"""
    day = timeline.day_index(date)
    after_change = date >= timeline.TRANCO_SOURCE_CHANGE
    if profile.is_stable:
        if profile.exits_at_source_change and after_change:
            return False
        return True
    if profile.enters_at_source_change and not after_change:
        return False
    return unit_float(config.seed, "present", profile.index, day) < profile.churn_presence


def daily_rank_key(profile: DomainProfile, config: SimConfig, date: datetime.date) -> float:
    """Sort key for the daily ranking (lower = more popular)."""
    jitter = (unit_float(config.seed, "rank-jitter", profile.index, timeline.day_index(date)) - 0.5) * 0.03
    return profile.base_rank + jitter


# ---------------------------------------------------------------------------
# HTTPS activation state
# ---------------------------------------------------------------------------

def _toggle_active(profile: DomainProfile, config: SimConfig, day: int) -> bool:
    """On/off cycle for the proxied-toggle and no-NS cohorts."""
    period = 25 + integer(config.seed, "toggle-period", profile.index, bound=45)
    offset = integer(config.seed, "toggle-offset", profile.index, bound=period)
    duty = 0.65 + 0.25 * unit_float(config.seed, "toggle-duty", profile.index)
    return ((day + offset) % period) < duty * period


def proxied_active(profile: DomainProfile, config: SimConfig, date: datetime.date) -> bool:
    """Cloudflare 'proxied' feature state (drives the default HTTPS RR)."""
    if not profile.is_cloudflare:
        return False
    if profile.intermittency == INTERMIT_PROXY_TOGGLE:
        return _toggle_active(profile, config, timeline.day_index(date))
    return True


def current_provider_keys(
    profile: DomainProfile, config: SimConfig, date: datetime.date
) -> List[str]:
    """DNS providers serving the domain on *date* (NS set)."""
    day = timeline.day_index(date)
    if profile.intermittency == INTERMIT_NS_CHANGE and profile.ns_change_day is not None:
        if day >= profile.ns_change_day:
            new_key = choice(
                config.seed, "ns-change-target", profile.index,
                options=tuple(NON_HTTPS_PROVIDER_KEYS),
            )
            return [new_key]
        return [profile.provider_key]
    if profile.intermittency == INTERMIT_MIXED_PROVIDERS and profile.secondary_provider_key:
        return [profile.provider_key, profile.secondary_provider_key]
    if profile.intermittency == INTERMIT_NO_NS:
        if not _toggle_active(profile, config, day):
            return []  # NS records vanish during the off phase
        return [profile.provider_key]
    return [profile.provider_key]


def https_configured(profile: DomainProfile, config: SimConfig, date: datetime.date) -> bool:
    """Does the domain owner's zone carry an HTTPS RRset on *date*?

    This is the *zone-level* truth; what a resolver observes additionally
    depends on which name server it picks (mixed-provider cohort).
    """
    if not profile.adopter:
        return False
    day = timeline.day_index(date)
    if day < profile.adoption_start_day:
        return False
    if profile.deactivation_day is not None and day >= profile.deactivation_day:
        return False
    if profile.intermittency == INTERMIT_NS_CHANGE and profile.ns_change_day is not None:
        if day >= profile.ns_change_day:
            return False
    if profile.intermittency == INTERMIT_NO_NS and not _toggle_active(profile, config, day):
        return False
    if profile.is_cloudflare and not profile.custom_config and profile.noncf_shape == SHAPE_SERVICE_SELF:
        # Default Cloudflare record exists only while proxied.
        return proxied_active(profile, config, date)
    return True


# ---------------------------------------------------------------------------
# IP hints & addresses
# ---------------------------------------------------------------------------

def hint_mismatch_active(profile: DomainProfile, config: SimConfig, date: datetime.date) -> bool:
    """Are the HTTPS IP hints out of sync with the A/AAAA records today?"""
    behaviour = profile.hint_behaviour
    if behaviour == HINTS_PERSISTENT:
        return True
    day = timeline.day_index(date)
    if behaviour == HINTS_PRE_FIX:
        # Until Cloudflare's June 19 sync fix, this cohort's hints lag
        # behind anycast reassignments most of the time (~98% daily match
        # rate overall, Fig 11).
        if date >= timeline.HINT_SYNC_FIX:
            return False
        period = 12 + integer(config.seed, "mm-period", profile.index, bound=25)
        offset = integer(config.seed, "mm-offset", profile.index, bound=period)
        duration = max(1, int(period * 0.7))
        return ((day + offset) % period) < duration
    if behaviour == HINTS_EPISODIC:
        period = 60 + integer(config.seed, "mm-period", profile.index, bound=90)
        offset = integer(config.seed, "mm-offset", profile.index, bound=period)
        duration = 1 + integer(config.seed, "mm-dur", profile.index, bound=5)
        return ((day + offset) % period) < duration
    return False


def serving_addresses(
    profile: DomainProfile, config: SimConfig, date: datetime.date
) -> Tuple[str, str, str, str]:
    """(a_v4, a_v6, hint_v4, hint_v6) for the apex on *date*."""
    seed = config.seed
    if profile.is_cloudflare and proxied_active(profile, config, date):
        alloc4 = ipspace.cfns_anycast_v4 if profile.provider_key == "cfns" else ipspace.cloudflare_anycast_v4
        a_v4 = alloc4(seed, profile.name, 0)
        a_v6 = ipspace.cloudflare_anycast_v6(seed, profile.name, 0)
        if hint_mismatch_active(profile, config, date):
            hint_v4 = alloc4(seed, profile.name, 1)
            hint_v6 = ipspace.cloudflare_anycast_v6(seed, profile.name, 1)
        else:
            hint_v4, hint_v6 = a_v4, a_v6
        return a_v4, a_v6, hint_v4, hint_v6
    a_v4 = ipspace.origin_v4(seed, profile.name)
    a_v6 = ipspace.origin_v6(seed, profile.name)
    return a_v4, a_v6, a_v4, a_v6


# Reachability cohorts for the §4.3.5 connectivity experiment.
REACH_BOTH = "both"
REACH_HINT_ONLY = "hint-only"  # A-record address is dead
REACH_A_ONLY = "a-only"  # hinted address is dead
REACH_NEITHER = "neither"

_REACH_WEIGHTS = ((REACH_BOTH, 0.811), (REACH_HINT_ONLY, 0.115), (REACH_A_ONLY, 0.058), (REACH_NEITHER, 0.016))


def mismatch_reachability(profile: DomainProfile, config: SimConfig) -> str:
    """Which of the (mismatched) addresses accept TLS connections."""
    roll = unit_float(config.seed, "reach", profile.index)
    accumulated = 0.0
    for kind, weight in _REACH_WEIGHTS:
        accumulated += weight
        if roll < accumulated:
            return kind
    return REACH_BOTH


# ---------------------------------------------------------------------------
# HTTPS record synthesis
# ---------------------------------------------------------------------------

def _cf_alpn(profile: DomainProfile, config: SimConfig, date: datetime.date) -> Tuple[str, ...]:
    protocols: List[str] = [ALPN_H2, ALPN_H3]
    if date < timeline.H3_29_RETIREMENT:
        protocols.append(ALPN_H3_29)
    if date >= timeline.GOOGLE_QUIC_APPEARANCE and unit_float(
        config.seed, "gquic", profile.index
    ) < 0.003:
        protocols.extend(GOOGLE_QUIC_VERSIONS)
    return tuple(protocols)


def ech_enabled(
    profile: DomainProfile, config: SimConfig, date: datetime.date, is_www: bool = False
) -> bool:
    """Does the HTTPS record carry an ech SvcParam on *date*?"""
    if profile.name in cohorts.ECH_TEST_DOMAINS:
        return True
    if date >= timeline.ECH_DISABLE:
        return False
    if is_www and unit_float(config.seed, "www-ech-gap", profile.index) < config.www_ech_gap:
        # The paper observes a lower ECH share on www subdomains (~63%
        # vs ~70% on apexes, §4.4.1).
        return False
    if profile.is_cloudflare:
        return profile.free_plan and proxied_active(profile, config, date)
    return profile.noncf_has_ech


def build_https_rdatas(
    profile: DomainProfile,
    config: SimConfig,
    date: datetime.date,
    is_www: bool,
    ech_wire: Optional[bytes],
    overlay: Optional[object] = None,
) -> List[HTTPSRdata]:
    """The HTTPS RRset contents for the apex (or www) on *date*.

    *ech_wire* is the ECHConfigList published by the shared client-facing
    server at this instant; pass None to omit the ech parameter.

    *overlay* (duck-typed :class:`~repro.simnet.faults.ZoneOverlay`)
    carries injected-fault mutations; ``hint_v4``/``hint_v6`` replace
    the synthesized IP hints with stale addresses when set.
    """
    seed = config.seed
    a_v4, a_v6, hint_v4, hint_v6 = serving_addresses(profile, config, date)
    if overlay is not None and overlay.hint_v4 is not None:
        hint_v4, hint_v6 = overlay.hint_v4, overlay.hint_v6
    include_ech = ech_wire is not None and ech_enabled(profile, config, date, is_www)

    # Cloudflare default config: the well-known proxied record.
    if profile.is_cloudflare and not profile.custom_config:
        params: List = [Alpn(_cf_alpn(profile, config, date))]
        params.append(Ipv4Hint([hint_v4]))
        if profile.ipv6_hints:
            params.append(Ipv6Hint([hint_v6]))
        if include_ech:
            params.append(Ech(ech_wire))
        return [HTTPSRdata(1, ROOT_NAME, SvcParams(params))]

    shape = profile.noncf_shape
    if profile.is_cloudflare and profile.custom_config:
        if shape == SHAPE_ALIAS_SELF:
            return [HTTPSRdata(0, ROOT_NAME)]
        if shape == SHAPE_IP_TARGET:
            # Nonstandard: an IP-address literal as TargetName.
            return [HTTPSRdata(1, Name.from_text(a_v4.replace(".", "\\.") + "."), SvcParams())]
        if shape == SHAPE_URL_TARGET:
            return [
                HTTPSRdata(
                    1,
                    Name.from_text("https://" + profile.name.replace(".", "\\.") + "."),
                    SvcParams(),
                )
            ]
        if shape == SHAPE_MULTI_PRIORITY:
            priority = 443 if profile.name == "host-ir.com" else 1800
            return [HTTPSRdata(priority, ROOT_NAME, SvcParams([Alpn([ALPN_H2])]))]
        # Generic customized Cloudflare config: h2, usually no hints.
        roll = unit_float(seed, "cf-custom-shape", profile.index)
        if roll < 0.0113:
            params = []
        elif roll < 0.0141:
            params = [Alpn([ALPN_H2, ALPN_H3])]
        else:
            params = [Alpn([ALPN_H2])]
        if unit_float(seed, "cf-custom-hints", profile.index) < 0.93 and params:
            params.append(Ipv4Hint([hint_v4]))
            if profile.ipv6_hints:
                params.append(Ipv6Hint([hint_v6]))
        if include_ech and unit_float(seed, "cf-custom-ech", profile.index) < 0.3:
            params.append(Ech(ech_wire))
        if roll < 0.002:
            return [HTTPSRdata(0, Name.from_text(f"cdn-{profile.index % 97}.cf-endpoints.net."))]
        return [HTTPSRdata(1, ROOT_NAME, SvcParams(params))]

    # Non-Cloudflare providers.
    if shape == SHAPE_ALIAS_WWW:
        if is_www:
            return [HTTPSRdata(1, ROOT_NAME, SvcParams([Alpn([ALPN_H2])]))]
        return [HTTPSRdata(0, Name.from_text("www." + profile.name + "."))]
    if shape == SHAPE_ALIAS_ENDPOINT:
        target = Name.from_text(f"redirect-{profile.index % 251}.godaddysites.example.")
        return [HTTPSRdata(0, target)]
    if shape == SHAPE_ALIAS_SELF:
        return [HTTPSRdata(0, ROOT_NAME)]
    if shape == SHAPE_EMPTY_SERVICE:
        return [HTTPSRdata(1, ROOT_NAME, SvcParams())]
    if shape == SHAPE_MULTI_PRIORITY:
        target = Name.from_text("geo-routing.nexuspipe.com.")
        return [
            HTTPSRdata(p, target, SvcParams([Alpn([ALPN_H2]), Port(3440 + p)]))
            for p in range(1, 13)
        ]
    if shape == SHAPE_HTTP11:
        return [HTTPSRdata(1, ROOT_NAME, SvcParams([Alpn([ALPN_HTTP11])]))]
    if shape == SHAPE_DRAFT_H3:
        params = SvcParams([Alpn([ALPN_H2, ALPN_H3_27, ALPN_H3_29])])
        return [HTTPSRdata(1, ROOT_NAME, params)]
    if shape == SHAPE_SERVICE_ALPN:
        protocols = [ALPN_H2]
        if unit_float(seed, "noncf-h3", profile.index) < 0.35:
            protocols.append(ALPN_H3)
        params = [Alpn(protocols)]
        if unit_float(seed, "noncf-hints", profile.index) < 0.30:
            params.append(Ipv4Hint([hint_v4]))
            params.append(Ipv6Hint([hint_v6]))
        if ech_wire is not None and include_ech:
            params.append(Ech(ech_wire))
        return [HTTPSRdata(1, ROOT_NAME, SvcParams(params))]
    # SHAPE_SERVICE_SELF default for non-CF.
    params = []
    if unit_float(seed, "noncf-self-alpn", profile.index) < 0.97:
        protocols = [ALPN_H2]
        if unit_float(seed, "noncf-h3", profile.index) < 0.40:
            protocols.append(ALPN_H3)
        params.append(Alpn(protocols))
    if ech_wire is not None and include_ech:
        params.append(Ech(ech_wire))
    return [HTTPSRdata(1, ROOT_NAME, SvcParams(params))]


# ---------------------------------------------------------------------------
# Zone synthesis
# ---------------------------------------------------------------------------

def build_zone(
    profile: DomainProfile,
    config: SimConfig,
    date: datetime.date,
    ech_wire: Optional[bytes],
    hour: float = 0.0,
    overlay: Optional[object] = None,
) -> Zone:
    """The domain's full zone as served on *date* (+*hour* for ECH scans).

    *overlay* (duck-typed :class:`~repro.simnet.faults.ZoneOverlay`)
    applies injected-fault mutations: stale IP hints in the HTTPS RRset
    and/or signing with an already-expired RRSIG validity window.
    """
    apex = profile.apex
    www = profile.www
    zone = Zone(apex, allow_apex_cname=profile.www_only, default_ttl=config.default_ttl)
    zone.ensure_soa(serial=timeline.day_index(date) + 1)

    provider_keys = current_provider_keys(profile, config, date)
    ns_names: List[Name] = []
    for key in provider_keys:
        provider = PROVIDERS[key]
        if key == "selfhosted":
            ns_names.extend([apex.prepend("ns1"), apex.prepend("ns2")])
        else:
            ns_names.extend(provider.ns_hostnames(config.seed, profile.name))
    if ns_names:
        zone.add_rrset(RRset(apex, rdtypes.NS, config.default_ttl, [NSRdata(n) for n in ns_names]))

    a_v4, a_v6, _hint4, _hint6 = serving_addresses(profile, config, date)
    has_https = https_configured(profile, config, date)

    if profile.www_only and profile.adopter:
        # Misconfigured apex CNAME → www; HTTPS lives on the www name.
        zone.add_rrset(RRset(apex, rdtypes.CNAME, config.default_ttl, [CNAMERdata(www)]))
    else:
        zone.add_rrset(RRset(apex, rdtypes.A, config.default_ttl, [ARdata(a_v4)]))
        zone.add_rrset(RRset(apex, rdtypes.AAAA, config.default_ttl, [AAAARdata(a_v6)]))
        if has_https and not profile.www_only:
            rdatas = build_https_rdatas(profile, config, date, False, ech_wire, overlay)
            zone.add_rrset(RRset(apex, rdtypes.HTTPS, config.default_ttl, rdatas))

    # www branch.
    zone.add_rrset(RRset(www, rdtypes.A, config.default_ttl, [ARdata(a_v4)]))
    zone.add_rrset(RRset(www, rdtypes.AAAA, config.default_ttl, [AAAARdata(a_v6)]))
    if has_https and profile.www_has_record:
        rdatas = build_https_rdatas(profile, config, date, True, ech_wire, overlay)
        zone.add_rrset(RRset(www, rdtypes.HTTPS, config.default_ttl, rdatas))

    if profile.provider_key == "selfhosted":
        ns_ip = ipspace.origin_v4(config.seed, profile.name, generation=7)
        zone.add_rrset(RRset(apex.prepend("ns1"), rdtypes.A, config.default_ttl, [ARdata(ns_ip)]))
        zone.add_rrset(RRset(apex.prepend("ns2"), rdtypes.A, config.default_ttl, [ARdata(ns_ip)]))

    if dnssec_active(profile, config, date):
        inception = timeline.epoch_seconds(date) - 3600
        if overlay is not None and overlay.expired_rrsig:
            # Injected DNSSEC breakage: the validity window closed an
            # hour before today began, so validators go BOGUS.
            zone.sign(inception - 30 * 86400, expiration=inception)
        else:
            zone.sign(inception)
    return zone


def dnssec_active(profile: DomainProfile, config: SimConfig, date: datetime.date) -> bool:
    if not profile.dnssec_signed:
        return False
    if profile.dnssec_sign_day < 0:
        return True
    return timeline.day_index(date) >= profile.dnssec_sign_day


def zone_body_fingerprint(
    profile: DomainProfile,
    config: SimConfig,
    date: datetime.date,
    ech_wire: Optional[bytes],
) -> tuple:
    """Every date-dependent input of :func:`build_zone` *except* the SOA
    serial and the RRSIG inception time.

    Two dates with equal fingerprints produce zones whose bodies differ
    only in SOA serial and signature timestamps, so the world's tier-2
    zone-body reuse (:meth:`~repro.simnet.world.World.zone_of`) can roll
    the serial and re-sign instead of rebuilding from scratch. Static
    profile attributes (shapes, cohorts, seeds) need no entry: the
    fingerprint only ever compares one profile against itself. The ECH
    wire bytes join the fingerprint only when either the apex or the www
    record would actually carry them — an hourly key rotation must not
    invalidate a zone that never published ECH.
    """
    ech_apex = ech_enabled(profile, config, date, is_www=False)
    ech_www = ech_enabled(profile, config, date, is_www=True)
    return (
        tuple(current_provider_keys(profile, config, date)),
        serving_addresses(profile, config, date),
        https_configured(profile, config, date),
        proxied_active(profile, config, date),
        ech_apex,
        ech_www,
        date < timeline.H3_29_RETIREMENT,
        date >= timeline.GOOGLE_QUIC_APPEARANCE,
        dnssec_active(profile, config, date),
        ech_wire if (ech_apex or ech_www) else None,
    )
