"""DNS provider catalogue.

Each provider spec captures what the paper's attribution pipeline
recovers: nameserver hostnames, the address block WHOIS maps to the
operator org, and whether the provider serves HTTPS RRs at all
(§4.2.2-4.2.3, Tables 2-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dnscore.names import Name
from .determinism import integer

_NS_HOSTNAME_CACHE: Dict[tuple, tuple] = {}

# Cloudflare assigns each zone a pair of themed nameserver hostnames.
_CLOUDFLARE_NS_WORDS = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "henry",
    "irena", "jim", "kate", "leo", "mona", "ned", "olga", "pete",
)


@dataclass(frozen=True)
class ProviderSpec:
    """A DNS hosting provider."""

    key: str
    org: str  # WHOIS organisation string for its NS address block
    ns_domain: str  # suffix of its nameserver hostnames
    ip_prefix: str  # /16-ish prefix of its NS address block ("a.b.c")
    server_ip: str  # where its authoritative server listens
    supports_https: bool = False
    ns_host_count: int = 4
    is_cloudflare: bool = False
    registrar_names: Tuple[str, ...] = ()

    def ns_hostnames(self, seed: str, domain: str) -> List[Name]:
        """The two NS hostnames this provider assigns to *domain*
        (memoized; called in the per-day zone-build hot path)."""
        cache_key = (self.key, seed, domain)
        cached = _NS_HOSTNAME_CACHE.get(cache_key)
        if cached is not None:
            return list(cached)
        result = self._ns_hostnames_uncached(seed, domain)
        if len(_NS_HOSTNAME_CACHE) > 200_000:
            _NS_HOSTNAME_CACHE.clear()
        _NS_HOSTNAME_CACHE[cache_key] = tuple(result)
        return result

    def _ns_hostnames_uncached(self, seed: str, domain: str) -> List[Name]:
        if self.is_cloudflare and self.key == "cloudflare":
            first = integer(seed, "cf-ns1", domain, bound=len(_CLOUDFLARE_NS_WORDS))
            second = (first + 1 + integer(seed, "cf-ns2", domain, bound=len(_CLOUDFLARE_NS_WORDS) - 1)) % len(
                _CLOUDFLARE_NS_WORDS
            )
            return [
                Name.from_text(f"{_CLOUDFLARE_NS_WORDS[first]}.{self.ns_domain}."),
                Name.from_text(f"{_CLOUDFLARE_NS_WORDS[second]}.{self.ns_domain}."),
            ]
        first = integer(seed, "ns-a", self.key, domain, bound=self.ns_host_count) + 1
        second = first % self.ns_host_count + 1
        return [
            Name.from_text(f"ns{first}.{self.ns_domain}."),
            Name.from_text(f"ns{second}.{self.ns_domain}."),
        ]

    def all_ns_hostnames(self) -> List[Name]:
        if self.is_cloudflare and self.key == "cloudflare":
            return [Name.from_text(f"{word}.{self.ns_domain}.") for word in _CLOUDFLARE_NS_WORDS]
        return [Name.from_text(f"ns{i}.{self.ns_domain}.") for i in range(1, self.ns_host_count + 1)]


# The catalogue. Address prefixes are synthetic but provider-distinct so
# WHOIS attribution works exactly like the paper's ipwhois pipeline.
PROVIDERS: Dict[str, ProviderSpec] = {
    spec.key: spec
    for spec in [
        ProviderSpec(
            "cloudflare", "Cloudflare, Inc.", "ns.cloudflare.com", "173.245.58",
            server_ip="173.245.58.1", supports_https=True, is_cloudflare=True,
            registrar_names=("Cloudflare, Inc.",),
        ),
        ProviderSpec(
            "cfns", "Cloudflare China Network (CAPG)", "cf-ns.com", "162.159.1",
            server_ip="162.159.1.1", supports_https=True, is_cloudflare=True,
            registrar_names=("Beijing Capital Online",),
        ),
        ProviderSpec(
            "google", "Google LLC", "googledomains.com", "216.239.32",
            server_ip="216.239.32.10", supports_https=True,
            registrar_names=("Google LLC", "Squarespace Domains"),
        ),
        ProviderSpec(
            "godaddy", "GoDaddy.com, LLC", "domaincontrol.com", "97.74.100",
            server_ip="97.74.100.10", supports_https=True,
            registrar_names=("GoDaddy.com, LLC",),
        ),
        ProviderSpec(
            "ename", "eName Technology Co., Ltd.", "ename.net", "1.8.100",
            server_ip="1.8.100.10", supports_https=True,
            registrar_names=("eName Technology",),
        ),
        ProviderSpec(
            "nsone", "NSONE Inc", "nsone.net", "198.51.44",
            server_ip="198.51.44.10", supports_https=True,
            registrar_names=("NSONE Inc",),
        ),
        ProviderSpec(
            "domeneshop", "Domeneshop AS", "hyp.net", "194.63.248",
            server_ip="194.63.248.10", supports_https=True,
            registrar_names=("Domeneshop AS",),
        ),
        ProviderSpec(
            "hover", "Hover (Tucows)", "hover.com", "216.40.47",
            server_ip="216.40.47.10", supports_https=True,
            registrar_names=("Tucows Domains Inc.",),
        ),
        ProviderSpec(
            "ubmdns", "UBM DNS Services", "ubmdns.com", "185.21.100",
            server_ip="185.21.100.10", supports_https=True,
        ),
        ProviderSpec(
            "domainactive", "DomainActive Ltd", "domainactive.org", "185.22.100",
            server_ip="185.22.100.10", supports_https=True,
        ),
        ProviderSpec(
            "informadns", "Informa DNS", "informadns.com", "185.23.100",
            server_ip="185.23.100.10", supports_https=True,
        ),
        ProviderSpec(
            "nexuspipe", "Nexuspipe Ltd", "sone.net", "185.24.100",
            server_ip="185.24.100.10", supports_https=True,
        ),
        ProviderSpec(
            "jpberlin", "JPBerlin / Heinlein", "jpberlin.de", "185.25.100",
            server_ip="185.25.100.10", supports_https=True,
        ),
        ProviderSpec(
            "akamai", "Akamai Technologies", "akam.net", "193.108.91",
            server_ip="193.108.91.10", supports_https=False,
        ),
        ProviderSpec(
            "route53", "Amazon.com, Inc.", "awsdns.example-aws.net", "205.251.192",
            server_ip="205.251.192.10", supports_https=False,
            registrar_names=("Amazon Registrar",),
        ),
        ProviderSpec(
            "namecheap", "Namecheap, Inc.", "registrar-servers.com", "156.154.130",
            server_ip="156.154.130.10", supports_https=False,
            registrar_names=("NameCheap, Inc.",),
        ),
        ProviderSpec(
            "gandi", "Gandi SAS", "gandi.net", "217.70.184",
            server_ip="217.70.184.10", supports_https=True,
            registrar_names=("Gandi SAS",),
        ),
        ProviderSpec(
            "selfhosted", "Self-hosted", "", "", server_ip="",
            supports_https=True, ns_host_count=2,
        ),
    ]
}

# Generic tail of providers without HTTPS RR support (the long tail of
# the hosting market). Gives the non-adopter majority realistic NS churn.
GENERIC_PROVIDER_COUNT = 24


def _generic_spec(index: int) -> ProviderSpec:
    return ProviderSpec(
        key=f"generic{index:02d}",
        org=f"Generic Hosting {index:02d} LLC",
        ns_domain=f"dns{index:02d}.generic-host.net",
        ip_prefix=f"192.0.{index + 2}",
        server_ip=f"192.0.{index + 2}.10",
        supports_https=False,
    )


for _i in range(GENERIC_PROVIDER_COUNT):
    _spec = _generic_spec(_i)
    PROVIDERS[_spec.key] = _spec

# Extra small providers WITH HTTPS RR support: the long tail of §4.3.3's
# 2,884 non-Cloudflare domains (244 distinct providers at full scale).
EXTRA_HTTPS_PROVIDER_COUNT = 24


def _extra_https_spec(index: int) -> ProviderSpec:
    return ProviderSpec(
        key=f"smallhttps{index:02d}",
        org=f"Boutique DNS {index:02d}",
        ns_domain=f"ns.boutique{index:02d}.net",
        ip_prefix=f"192.1.{index + 2}",
        server_ip=f"192.1.{index + 2}.10",
        supports_https=True,
    )


for _i in range(EXTRA_HTTPS_PROVIDER_COUNT):
    _spec = _extra_https_spec(_i)
    PROVIDERS[_spec.key] = _spec


CLOUDFLARE = PROVIDERS["cloudflare"]
CFNS = PROVIDERS["cfns"]

# Ranked non-Cloudflare HTTPS providers with Table 3 weights (dynamic
# Tranco column): relative share of non-CF adopter domains.
NONCF_HTTPS_WEIGHTS: List[Tuple[str, float]] = [
    ("ename", 185.0),
    ("google", 159.0),
    ("godaddy", 105.0),
    ("nsone", 79.0),
    ("domeneshop", 16.0),
    ("hover", 11.0),
    ("gandi", 6.0),
    ("jpberlin", 4.0),
    ("ubmdns", 3.0),
    ("domainactive", 3.0),
    ("informadns", 3.0),
    ("nexuspipe", 2.0),
] + [(f"smallhttps{i:02d}", 28.0) for i in range(EXTRA_HTTPS_PROVIDER_COUNT)]
# Trade-off note: the real tail is ~2,300 domains over 230+ providers, which
# would put Google+GoDaddy at ~9% of non-CF adopters. At 1/167 scale the
# named providers must stay oversampled for Table 3/5 to be statistically
# meaningful, which inflates the non-CF "no alpn" share (Table 8 note).

# Providers a non-adopter domain may use.
NON_HTTPS_PROVIDER_KEYS: List[str] = (
    ["route53", "namecheap", "akamai"] + [f"generic{i:02d}" for i in range(GENERIC_PROVIDER_COUNT)]
)

# Registrar list for the congruence study (§4.5.1 / Appendix G).
REGISTRARS = (
    "Cloudflare, Inc.",
    "GoDaddy.com, LLC",
    "NameCheap, Inc.",
    "Google LLC",
    "Tucows Domains Inc.",
    "Gandi SAS",
    "Amazon Registrar",
    "eName Technology",
    "Domeneshop AS",
    "PublicDomainRegistry",
)
