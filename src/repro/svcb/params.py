"""RFC 9460 SvcParams: typed key/value parameters for SVCB/HTTPS records.

Every parameter class implements both the wire format (section 2.2) and the
presentation format (appendix A), plus value-level validation. The registry
maps numeric keys to classes so unknown keys round-trip as opaque blobs
(``keyNNNNN`` presentation syntax).
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Dict, List, Optional, Sequence, Tuple, Type

# IANA SvcParamKey numbers (RFC 9460 section 14.3.2, RFC 9461).
KEY_MANDATORY = 0
KEY_ALPN = 1
KEY_NO_DEFAULT_ALPN = 2
KEY_PORT = 3
KEY_IPV4HINT = 4
KEY_ECH = 5
KEY_IPV6HINT = 6
KEY_DOHPATH = 7

_KEY_NAMES = {
    KEY_MANDATORY: "mandatory",
    KEY_ALPN: "alpn",
    KEY_NO_DEFAULT_ALPN: "no-default-alpn",
    KEY_PORT: "port",
    KEY_IPV4HINT: "ipv4hint",
    KEY_ECH: "ech",
    KEY_IPV6HINT: "ipv6hint",
    KEY_DOHPATH: "dohpath",
}
_NAME_KEYS = {name: key for key, name in _KEY_NAMES.items()}

# Well-known ALPN protocol ids seen in the study (Table 8).
ALPN_HTTP11 = "http/1.1"
ALPN_H2 = "h2"
ALPN_H3 = "h3"
ALPN_H3_29 = "h3-29"
ALPN_H3_27 = "h3-27"
GOOGLE_QUIC_VERSIONS = ("Q043", "Q046", "Q050")


class SvcParamError(ValueError):
    """Malformed or invalid SvcParam."""


def key_to_name(key: int) -> str:
    if key in _KEY_NAMES:
        return _KEY_NAMES[key]
    return f"key{key}"


def name_to_key(name: str) -> int:
    if name in _NAME_KEYS:
        return _NAME_KEYS[name]
    if name.startswith("key"):
        try:
            key = int(name[3:])
        except ValueError as exc:
            raise SvcParamError(f"bad key name {name!r}") from exc
        if not 0 <= key <= 0xFFFF:
            raise SvcParamError(f"key number {key} out of range")
        return key
    raise SvcParamError(f"unknown SvcParamKey name {name!r}")


class SvcParam:
    """Base class. Subclasses set ``key`` and implement the codecs."""

    key: int = -1

    def to_wire_value(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_wire_value(cls, data: bytes) -> "SvcParam":
        raise NotImplementedError

    def value_to_text(self) -> str:
        raise NotImplementedError

    @classmethod
    def from_text_value(cls, text: str) -> "SvcParam":
        raise NotImplementedError

    def to_text(self) -> str:
        value = self.value_to_text()
        name = key_to_name(self.key)
        if value == "":
            return name
        return f"{name}={value}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SvcParam):
            return NotImplemented
        return self.key == other.key and self.to_wire_value() == other.to_wire_value()

    def __hash__(self) -> int:
        return hash((self.key, self.to_wire_value()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value_to_text()!r})"


def _split_comma_list(text: str) -> List[str]:
    """Split a comma-separated value-list, honouring ``\\,`` escapes."""
    items: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            current.append(text[i + 1])
            i += 2
            continue
        if ch == ",":
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    items.append("".join(current))
    return items


class Mandatory(SvcParam):
    """``mandatory``: keys the client must understand (RFC 9460 section 8)."""

    key = KEY_MANDATORY

    def __init__(self, keys: Sequence[int]):
        keys = tuple(keys)
        if not keys:
            raise SvcParamError("mandatory list must not be empty")
        if KEY_MANDATORY in keys:
            raise SvcParamError("mandatory must not include itself")
        if list(keys) != sorted(set(keys)):
            raise SvcParamError("mandatory keys must be sorted and unique")
        self.keys = keys

    def to_wire_value(self) -> bytes:
        return b"".join(struct.pack("!H", key) for key in self.keys)

    @classmethod
    def from_wire_value(cls, data: bytes) -> "Mandatory":
        if len(data) % 2 or not data:
            raise SvcParamError("mandatory value must be a non-empty list of u16")
        keys = struct.unpack(f"!{len(data) // 2}H", data)
        return cls(keys)

    def value_to_text(self) -> str:
        return ",".join(key_to_name(key) for key in self.keys)

    @classmethod
    def from_text_value(cls, text: str) -> "Mandatory":
        return cls(sorted(name_to_key(item) for item in _split_comma_list(text)))


class Alpn(SvcParam):
    """``alpn``: ALPN protocol ids supported in addition to the default."""

    key = KEY_ALPN

    def __init__(self, protocols: Sequence[str]):
        protocols = tuple(protocols)
        if not protocols:
            raise SvcParamError("alpn list must not be empty")
        for proto in protocols:
            if not proto or len(proto.encode()) > 255:
                raise SvcParamError(f"bad alpn id {proto!r}")
        self.protocols = protocols

    def to_wire_value(self) -> bytes:
        out = bytearray()
        for proto in self.protocols:
            encoded = proto.encode()
            out.append(len(encoded))
            out.extend(encoded)
        return bytes(out)

    @classmethod
    def from_wire_value(cls, data: bytes) -> "Alpn":
        protocols = []
        pos = 0
        while pos < len(data):
            length = data[pos]
            pos += 1
            if length == 0 or pos + length > len(data):
                raise SvcParamError("malformed alpn value list")
            protocols.append(data[pos : pos + length].decode("utf-8", "replace"))
            pos += length
        return cls(protocols)

    def value_to_text(self) -> str:
        return ",".join(proto.replace("\\", "\\\\").replace(",", "\\,") for proto in self.protocols)

    @classmethod
    def from_text_value(cls, text: str) -> "Alpn":
        return cls(_split_comma_list(text))


class NoDefaultAlpn(SvcParam):
    """``no-default-alpn``: endpoint does not support the default protocol."""

    key = KEY_NO_DEFAULT_ALPN

    def to_wire_value(self) -> bytes:
        return b""

    @classmethod
    def from_wire_value(cls, data: bytes) -> "NoDefaultAlpn":
        if data:
            raise SvcParamError("no-default-alpn must have empty value")
        return cls()

    def value_to_text(self) -> str:
        return ""

    @classmethod
    def from_text_value(cls, text: str) -> "NoDefaultAlpn":
        if text:
            raise SvcParamError("no-default-alpn takes no value")
        return cls()


class Port(SvcParam):
    """``port``: alternative TCP/UDP port for the endpoint."""

    key = KEY_PORT

    def __init__(self, port: int):
        if not 0 <= port <= 0xFFFF:
            raise SvcParamError(f"port {port} out of range")
        self.port = port

    def to_wire_value(self) -> bytes:
        return struct.pack("!H", self.port)

    @classmethod
    def from_wire_value(cls, data: bytes) -> "Port":
        if len(data) != 2:
            raise SvcParamError("port value must be exactly 2 octets")
        return cls(struct.unpack("!H", data)[0])

    def value_to_text(self) -> str:
        return str(self.port)

    @classmethod
    def from_text_value(cls, text: str) -> "Port":
        try:
            return cls(int(text))
        except ValueError as exc:
            raise SvcParamError(f"bad port {text!r}") from exc


class Ipv4Hint(SvcParam):
    """``ipv4hint``: IPv4 addresses the client may use to reach the endpoint."""

    key = KEY_IPV4HINT

    def __init__(self, addresses: Sequence[str]):
        if not addresses:
            raise SvcParamError("ipv4hint must not be empty")
        self.addresses = tuple(str(ipaddress.IPv4Address(addr)) for addr in addresses)

    def to_wire_value(self) -> bytes:
        return b"".join(ipaddress.IPv4Address(addr).packed for addr in self.addresses)

    @classmethod
    def from_wire_value(cls, data: bytes) -> "Ipv4Hint":
        if len(data) % 4 or not data:
            raise SvcParamError("ipv4hint must be a non-empty multiple of 4 octets")
        addrs = [str(ipaddress.IPv4Address(data[i : i + 4])) for i in range(0, len(data), 4)]
        return cls(addrs)

    def value_to_text(self) -> str:
        return ",".join(self.addresses)

    @classmethod
    def from_text_value(cls, text: str) -> "Ipv4Hint":
        return cls(_split_comma_list(text))


class Ipv6Hint(SvcParam):
    """``ipv6hint``: IPv6 addresses the client may use to reach the endpoint."""

    key = KEY_IPV6HINT

    def __init__(self, addresses: Sequence[str]):
        if not addresses:
            raise SvcParamError("ipv6hint must not be empty")
        self.addresses = tuple(str(ipaddress.IPv6Address(addr)) for addr in addresses)

    def to_wire_value(self) -> bytes:
        return b"".join(ipaddress.IPv6Address(addr).packed for addr in self.addresses)

    @classmethod
    def from_wire_value(cls, data: bytes) -> "Ipv6Hint":
        if len(data) % 16 or not data:
            raise SvcParamError("ipv6hint must be a non-empty multiple of 16 octets")
        addrs = [str(ipaddress.IPv6Address(data[i : i + 16])) for i in range(0, len(data), 16)]
        return cls(addrs)

    def value_to_text(self) -> str:
        return ",".join(self.addresses)

    @classmethod
    def from_text_value(cls, text: str) -> "Ipv6Hint":
        return cls(_split_comma_list(text))


class Ech(SvcParam):
    """``ech``: base64 ECHConfigList (draft-ietf-tls-svcb-ech)."""

    key = KEY_ECH

    def __init__(self, config_list: bytes):
        if not config_list:
            raise SvcParamError("ech value must not be empty")
        self.config_list = bytes(config_list)

    def to_wire_value(self) -> bytes:
        return self.config_list

    @classmethod
    def from_wire_value(cls, data: bytes) -> "Ech":
        return cls(data)

    def value_to_text(self) -> str:
        import base64

        return base64.b64encode(self.config_list).decode()

    @classmethod
    def from_text_value(cls, text: str) -> "Ech":
        import base64

        try:
            return cls(base64.b64decode(text, validate=True))
        except Exception as exc:
            raise SvcParamError(f"bad base64 in ech value: {exc}") from exc


class DohPath(SvcParam):
    """``dohpath`` (RFC 9461): URI template for a DoH service discovered
    via an ``_dns`` SVCB record. Must be relative and contain ``{?dns}``."""

    key = KEY_DOHPATH

    def __init__(self, template: str):
        if not template.startswith("/"):
            raise SvcParamError("dohpath must be a relative URI template")
        if "{?dns}" not in template:
            raise SvcParamError("dohpath must contain the {?dns} variable")
        self.template = template

    def to_wire_value(self) -> bytes:
        return self.template.encode("utf-8")

    @classmethod
    def from_wire_value(cls, data: bytes) -> "DohPath":
        try:
            return cls(data.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise SvcParamError(f"dohpath is not valid UTF-8: {exc}") from exc

    def value_to_text(self) -> str:
        return self.template

    @classmethod
    def from_text_value(cls, text: str) -> "DohPath":
        return cls(text)

    def resolved_path(self) -> str:
        """The GET path prefix with the template variable stripped
        (``/dns-query{?dns}`` → ``/dns-query``)."""
        return self.template.replace("{?dns}", "")


class OpaqueParam(SvcParam):
    """An unrecognized key; value round-trips as raw bytes."""

    def __init__(self, key: int, value: bytes):
        if not 0 <= key <= 0xFFFF:
            raise SvcParamError(f"key {key} out of range")
        self.key = key
        self.value = bytes(value)

    def to_wire_value(self) -> bytes:
        return self.value

    @classmethod
    def from_wire_value(cls, data: bytes) -> "OpaqueParam":  # pragma: no cover - via registry
        raise NotImplementedError("construct OpaqueParam with an explicit key")

    def value_to_text(self) -> str:
        return "".join(f"\\{byte:03d}" if not 0x21 <= byte <= 0x7E or byte in b'",\\' else chr(byte) for byte in self.value)

    @classmethod
    def from_text_value(cls, text: str) -> "OpaqueParam":  # pragma: no cover - via registry
        raise NotImplementedError


_REGISTRY: Dict[int, Type[SvcParam]] = {
    KEY_MANDATORY: Mandatory,
    KEY_ALPN: Alpn,
    KEY_NO_DEFAULT_ALPN: NoDefaultAlpn,
    KEY_PORT: Port,
    KEY_IPV4HINT: Ipv4Hint,
    KEY_ECH: Ech,
    KEY_IPV6HINT: Ipv6Hint,
    KEY_DOHPATH: DohPath,
}


def param_from_wire(key: int, value: bytes) -> SvcParam:
    cls = _REGISTRY.get(key)
    if cls is None:
        return OpaqueParam(key, value)
    return cls.from_wire_value(value)


def param_from_text(name: str, value: str) -> SvcParam:
    key = name_to_key(name)
    cls = _REGISTRY.get(key)
    if cls is None:
        # keyNNNNN=... opaque syntax; value is taken literally.
        return OpaqueParam(key, value.encode())
    return cls.from_text_value(value)


class SvcParams:
    """An ordered-by-key set of SvcParams with RFC 9460 validation."""

    def __init__(self, params: Sequence[SvcParam] = ()):
        by_key: Dict[int, SvcParam] = {}
        for param in params:
            if param.key in by_key:
                raise SvcParamError(f"duplicate SvcParamKey {key_to_name(param.key)}")
            by_key[param.key] = param
        self._params: Dict[int, SvcParam] = dict(sorted(by_key.items()))
        self._validate_mandatory()

    def _validate_mandatory(self) -> None:
        mandatory = self._params.get(KEY_MANDATORY)
        if mandatory is None:
            return
        assert isinstance(mandatory, Mandatory)
        for key in mandatory.keys:
            if key not in self._params:
                raise SvcParamError(
                    f"mandatory key {key_to_name(key)} is not present in SvcParams"
                )

    # -- mapping-ish ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self):
        return iter(self._params.values())

    def __contains__(self, key: int) -> bool:
        return key in self._params

    def get(self, key: int) -> Optional[SvcParam]:
        return self._params.get(key)

    def keys(self) -> Tuple[int, ...]:
        return tuple(self._params.keys())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SvcParams):
            return NotImplemented
        return list(self) == list(other)

    def __hash__(self) -> int:
        return hash(tuple(self._params.items()))

    def __repr__(self) -> str:
        return f"SvcParams({list(self._params.values())!r})"

    # -- convenience accessors ---------------------------------------------

    @property
    def alpn(self) -> Optional[Tuple[str, ...]]:
        param = self._params.get(KEY_ALPN)
        return param.protocols if isinstance(param, Alpn) else None

    @property
    def port(self) -> Optional[int]:
        param = self._params.get(KEY_PORT)
        return param.port if isinstance(param, Port) else None

    @property
    def ipv4hint(self) -> Tuple[str, ...]:
        param = self._params.get(KEY_IPV4HINT)
        return param.addresses if isinstance(param, Ipv4Hint) else ()

    @property
    def ipv6hint(self) -> Tuple[str, ...]:
        param = self._params.get(KEY_IPV6HINT)
        return param.addresses if isinstance(param, Ipv6Hint) else ()

    @property
    def ech(self) -> Optional[bytes]:
        param = self._params.get(KEY_ECH)
        return param.config_list if isinstance(param, Ech) else None

    @property
    def mandatory_keys(self) -> Tuple[int, ...]:
        param = self._params.get(KEY_MANDATORY)
        return param.keys if isinstance(param, Mandatory) else ()

    @property
    def dohpath(self) -> Optional[str]:
        param = self._params.get(KEY_DOHPATH)
        return param.template if isinstance(param, DohPath) else None

    def effective_alpn(self) -> Tuple[str, ...]:
        """The ALPN set a client should offer: the listed protocols plus
        the default (http/1.1) unless ``no-default-alpn`` is present."""
        protocols = list(self.alpn or ())
        if KEY_NO_DEFAULT_ALPN not in self._params and ALPN_HTTP11 not in protocols:
            protocols.append(ALPN_HTTP11)
        return tuple(protocols)

    # -- codecs -------------------------------------------------------------

    def to_wire(self) -> bytes:
        out = bytearray()
        for key, param in self._params.items():
            value = param.to_wire_value()
            out.extend(struct.pack("!HH", key, len(value)))
            out.extend(value)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes) -> "SvcParams":
        params = []
        pos = 0
        previous_key = -1
        while pos < len(data):
            if len(data) - pos < 4:
                raise SvcParamError("truncated SvcParam header")
            key, length = struct.unpack_from("!HH", data, pos)
            pos += 4
            if key <= previous_key:
                raise SvcParamError("SvcParamKeys must be in strictly increasing order")
            previous_key = key
            if len(data) - pos < length:
                raise SvcParamError("truncated SvcParam value")
            params.append(param_from_wire(key, data[pos : pos + length]))
            pos += length
        return cls(params)

    def to_text(self) -> str:
        return " ".join(param.to_text() for param in self._params.values())

    @classmethod
    def from_text(cls, text: str) -> "SvcParams":
        params = []
        for token in _tokenize(text):
            if "=" in token:
                name, _, value = token.partition("=")
                if value.startswith('"') and value.endswith('"') and len(value) >= 2:
                    value = value[1:-1]
            else:
                name, value = token, ""
            params.append(param_from_text(name, value))
        return cls(params)


def _tokenize(text: str) -> List[str]:
    """Split on whitespace, keeping double-quoted spans intact."""
    tokens: List[str] = []
    current: List[str] = []
    in_quotes = False
    for ch in text:
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
        elif ch.isspace() and not in_quotes:
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if in_quotes:
        raise SvcParamError("unterminated quote in SvcParams text")
    if current:
        tokens.append("".join(current))
    return tokens
