"""The scanning engine: the paper's measurement methodology (§4.1).

For every domain in the daily list the engine

1. sends an HTTPS query to the primary public resolver (Google), falling
   back to Cloudflare on SERVFAIL;
2. follows a CNAME response by re-examining the chain for an HTTPS RRset
   at the canonical name;
3. records RRSIG presence and the AD bit from the response;
4. when an HTTPS record exists, issues follow-up A/AAAA/SOA/NS queries;
5. in the NS window, resolves every seen name server to addresses and
   attributes them via WHOIS;
6. in the connectivity window, TLS-probes every address of domains whose
   IP hints disagree with their A records.

Every scan comes in two value-equivalent flavours: per-name methods
(``scan_name``, ``scan_nameserver``, ``scan_ech``) that query serially,
and batched counterparts (``scan_names``, ``scan_nameservers``,
``scan_ech_many``) that resolve a whole name list as one interleaved
batch through :meth:`~repro.resolver.stub.StubResolver.query_batch`.
"""

from __future__ import annotations

import datetime
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from ..dnscore.rdata import HTTPSRdata
from ..ech.config import try_parse_config_list
from ..simnet import domains as domain_state
from ..simnet.cohorts import DomainProfile
from ..simnet.world import World
from ..whois.registry import WhoisClient, build_default_registry
from .records import (
    ConnectivityProbe,
    DomainObservation,
    EchObservation,
    HttpsRecordView,
    NameServerObservation,
)

_ALPN_INTERN: Dict[Tuple[str, ...], Tuple[str, ...]] = {}


def _intern_alpn(alpn: Optional[Tuple[str, ...]]) -> Optional[Tuple[str, ...]]:
    if alpn is None:
        return None
    return _ALPN_INTERN.setdefault(alpn, alpn)


def parse_https_rdata(rdata: HTTPSRdata) -> HttpsRecordView:
    """Flatten an HTTPS rdata into the scanner's view."""
    params = rdata.params
    ech_digest = None
    public_name = None
    config_id = 0
    has_ech = params.ech is not None
    if has_ech:
        ech_digest = hashlib.sha256(params.ech).digest()[:8]
        config_list = try_parse_config_list(params.ech)
        if config_list is not None:
            public_name = config_list.primary().public_name
            config_id = config_list.primary().config_id
    return HttpsRecordView(
        priority=rdata.priority,
        target=rdata.target.to_text(),
        alpn=_intern_alpn(params.alpn),
        port=params.port,
        ipv4hints=params.ipv4hint,
        ipv6hints=params.ipv6hint,
        has_ech=has_ech,
        ech_digest=ech_digest,
        ech_public_name=public_name,
        ech_config_id=config_id,
        has_mandatory=bool(params.mandatory_keys),
    )


class ScanEngine:
    """Executes scans against a :class:`~repro.simnet.world.World`."""

    def __init__(self, world: World):
        self.world = world
        self.whois = WhoisClient(build_default_registry())

    # -- single-name scan -------------------------------------------------

    def scan_name(self, name: Name, kind: str, follow_up: bool = True) -> DomainObservation:
        """Scan one name per the §4.1 methodology."""
        stub = self.world.stub
        response = stub.query(name, rdtypes.HTTPS)
        https_views: List[HttpsRecordView] = []
        via_cname: Optional[str] = None
        rrsig_present = False

        https_rrset = response.get_answer(name, rdtypes.HTTPS)
        owner = name
        if https_rrset is None:
            # CNAME chase: find the chain's terminal owner.
            cname_target = self._terminal_cname(response, name)
            if cname_target is not None:
                via_cname = cname_target.to_text()
                https_rrset = response.get_answer(cname_target, rdtypes.HTTPS)
                if https_rrset is None:
                    # Re-query at the canonical name, like the paper does.
                    chased = stub.query(cname_target, rdtypes.HTTPS)
                    https_rrset = chased.get_answer(cname_target, rdtypes.HTTPS)
                    if https_rrset is not None:
                        response = chased
                owner = cname_target
        if https_rrset is not None:
            https_views = [
                parse_https_rdata(rd) for rd in https_rrset if isinstance(rd, HTTPSRdata)
            ]
            rrsig_present = response.get_answer(owner, rdtypes.RRSIG) is not None

        observation = DomainObservation(
            name=name.to_text(omit_final_dot=True),
            kind=kind,
            rcode=response.rcode,
            https_records=tuple(https_views),
            via_cname=via_cname,
            rrsig_present=rrsig_present,
            ad_flag=response.authenticated_data,
        )
        if follow_up and https_views:
            self._follow_up_queries(observation, name)
        return observation

    # -- batched multi-name scan ------------------------------------------

    # Names per resolution batch. Sequential chunks keep the live set of
    # in-flight responses bounded (a whole day's responses held at once
    # makes every cyclic-GC pass scan them repeatedly); resolver caches
    # persist across chunks, so the answers are unaffected.
    _SCAN_CHUNK = 128

    def scan_names(
        self, items: Sequence[Tuple[Name, str]], follow_up: bool = True
    ) -> List[DomainObservation]:
        """Batched counterpart of :meth:`scan_name`: scan every (name,
        kind) with the same §4.1 methodology, resolving each phase's
        queries (HTTPS, CNAME re-queries, follow-ups) as interleaved
        batches. Observations come back in input order, value-equal to
        per-name ``scan_name`` calls."""
        if len(items) > self._SCAN_CHUNK:
            observations: List[DomainObservation] = []
            for offset in range(0, len(items), self._SCAN_CHUNK):
                observations.extend(
                    self._scan_names_chunk(
                        items[offset : offset + self._SCAN_CHUNK], follow_up
                    )
                )
            return observations
        return self._scan_names_chunk(items, follow_up)

    def _scan_names_chunk(
        self, items: Sequence[Tuple[Name, str]], follow_up: bool
    ) -> List[DomainObservation]:
        stub = self.world.stub
        responses = stub.query_batch([(name, rdtypes.HTTPS) for name, _ in items])
        observations: List[Optional[DomainObservation]] = [None] * len(items)
        # (index, chase target, fallback rcode/ad): everything needed if
        # the re-query comes back empty, so phase A's responses can be
        # dropped before the chase batch runs.
        chase: List[Tuple[int, Name, int, bool]] = []
        for index, ((name, kind), response) in enumerate(zip(items, responses)):
            owner = name
            via_cname: Optional[str] = None
            https_rrset = response.get_answer(name, rdtypes.HTTPS)
            if https_rrset is None:
                cname_target = self._terminal_cname(response, name)
                if cname_target is not None:
                    via_cname = cname_target.to_text()
                    owner = cname_target
                    https_rrset = response.get_answer(cname_target, rdtypes.HTTPS)
                    if https_rrset is None:
                        # Re-query at the canonical name, like the paper does.
                        chase.append(
                            (index, cname_target, response.rcode,
                             response.authenticated_data)
                        )
                        continue
            observations[index] = self._build_observation(
                name, kind, response.rcode, response.authenticated_data,
                https_rrset, owner, via_cname, response,
            )
        del responses  # chunk's answers are folded in; free them early
        if chase:
            chased = stub.query_batch(
                [(target, rdtypes.HTTPS) for _, target, _, _ in chase]
            )
            for (index, target, rcode, ad), chased_response in zip(chase, chased):
                name, kind = items[index]
                https_rrset = chased_response.get_answer(target, rdtypes.HTTPS)
                if https_rrset is None:
                    # Chase came back empty: report the original response.
                    observations[index] = self._build_observation(
                        name, kind, rcode, ad, None, target,
                        target.to_text(), None,
                    )
                else:
                    observations[index] = self._build_observation(
                        name, kind, chased_response.rcode,
                        chased_response.authenticated_data, https_rrset,
                        target, target.to_text(), chased_response,
                    )
        if follow_up:
            self._follow_up_batch(
                [(items[i][0], obs) for i, obs in enumerate(observations) if obs.has_https]
            )
        return observations

    @staticmethod
    def _build_observation(
        name: Name,
        kind: str,
        rcode: int,
        ad_flag: bool,
        https_rrset,
        owner: Name,
        via_cname: Optional[str],
        response: Optional[Message],
    ) -> DomainObservation:
        https_views: List[HttpsRecordView] = []
        rrsig_present = False
        if https_rrset is not None:
            https_views = [
                parse_https_rdata(rd) for rd in https_rrset if isinstance(rd, HTTPSRdata)
            ]
            rrsig_present = (
                response is not None
                and response.get_answer(owner, rdtypes.RRSIG) is not None
            )
        return DomainObservation(
            name=name.to_text(omit_final_dot=True),
            kind=kind,
            rcode=rcode,
            https_records=tuple(https_views),
            via_cname=via_cname,
            rrsig_present=rrsig_present,
            ad_flag=ad_flag,
        )

    def _follow_up_batch(self, pending: List[Tuple[Name, DomainObservation]]) -> None:
        """Batched :meth:`_follow_up_queries` over every HTTPS-bearing
        observation: four questions per name, one resolution batch."""
        if not pending:
            return
        questions: List[Tuple[Name, int]] = []
        for name, _obs in pending:
            questions.extend(
                (name, rdtype)
                for rdtype in (rdtypes.A, rdtypes.AAAA, rdtypes.SOA, rdtypes.NS)
            )
        answers = self.world.stub.query_batch(questions)
        for slot, (name, observation) in enumerate(pending):
            a_response, aaaa_response, soa_response, ns_response = answers[
                4 * slot : 4 * slot + 4
            ]
            observation.a_addrs = self._addresses(a_response, rdtypes.A)
            observation.aaaa_addrs = self._addresses(aaaa_response, rdtypes.AAAA)
            soa_rrset = soa_response.get_answer(name, rdtypes.SOA)
            if soa_rrset is not None and len(soa_rrset):
                observation.soa_serial = soa_rrset[0].serial
            ns_rrset = ns_response.get_answer(name, rdtypes.NS)
            if ns_rrset is not None:
                observation.ns_names = tuple(
                    sorted(rd.target.to_text(omit_final_dot=True) for rd in ns_rrset)
                )

    _MAX_CNAME_CHAIN = 8

    def _terminal_cname(self, response: Message, name: Name) -> Optional[Name]:
        """The terminal owner of the response's CNAME chain, or None.

        A chain that does not terminate within the hop limit is treated
        as no answer (real scanners abandon such chains rather than
        attribute records to a mid-chain owner).
        """
        current = name
        for _ in range(self._MAX_CNAME_CHAIN):
            rrset = response.get_answer(current, rdtypes.CNAME)
            if rrset is None:
                return current if current != name else None
            current = rrset[0].target
        # Hop budget consumed: the last target may still be the terminal
        # owner (a chain of exactly _MAX_CNAME_CHAIN links).
        if response.get_answer(current, rdtypes.CNAME) is None:
            return current
        return None

    def _follow_up_queries(self, observation: DomainObservation, name: Name) -> None:
        stub = self.world.stub
        a_response = stub.query(name, rdtypes.A)
        observation.a_addrs = self._addresses(a_response, rdtypes.A)
        aaaa_response = stub.query(name, rdtypes.AAAA)
        observation.aaaa_addrs = self._addresses(aaaa_response, rdtypes.AAAA)
        soa_response = stub.query(name, rdtypes.SOA)
        soa_rrset = soa_response.get_answer(name, rdtypes.SOA)
        if soa_rrset is not None and len(soa_rrset):
            observation.soa_serial = soa_rrset[0].serial
        ns_response = stub.query(name, rdtypes.NS)
        ns_rrset = ns_response.get_answer(name, rdtypes.NS)
        if ns_rrset is not None:
            observation.ns_names = tuple(
                sorted(rd.target.to_text(omit_final_dot=True) for rd in ns_rrset)
            )

    @staticmethod
    def _addresses(response: Message, rdtype: int) -> Tuple[str, ...]:
        addresses: List[str] = []
        for rrset in response.answers:
            if rrset.rdtype == rdtype:
                addresses.extend(rd.address for rd in rrset)
        return tuple(addresses)

    # -- name-server scan ----------------------------------------------------

    def scan_nameserver(self, hostname: str) -> NameServerObservation:
        name = Name.from_text(hostname if hostname.endswith(".") else hostname + ".")
        response = self.world.stub.query(name, rdtypes.A)
        return self._nameserver_observation(hostname, response)

    def scan_nameservers(self, hostnames: Sequence[str]) -> List[NameServerObservation]:
        """Batched counterpart of :meth:`scan_nameserver`: resolve every
        hostname's addresses as one batch, then WHOIS-attribute each."""
        names = [
            Name.from_text(h if h.endswith(".") else h + ".") for h in hostnames
        ]
        responses = self.world.stub.query_batch([(n, rdtypes.A) for n in names])
        return [
            self._nameserver_observation(hostname, response)
            for hostname, response in zip(hostnames, responses)
        ]

    def _nameserver_observation(
        self, hostname: str, response: Message
    ) -> NameServerObservation:
        ips = self._addresses(response, rdtypes.A)
        org = None
        if ips:
            record = self.whois.lookup(ips[0])
            org = record.org if record else None
        return NameServerObservation(hostname, ips, org)

    # -- connectivity probe (§4.3.5) ----------------------------------------------

    def probe_connectivity(
        self, profile: DomainProfile, observation: DomainObservation, date: datetime.date
    ) -> Optional[ConnectivityProbe]:
        """On IP-hint/A mismatch, immediately TLS-probe every address."""
        hints = observation.all_ipv4_hints()
        a_addrs = observation.a_addrs
        if not hints or not a_addrs:
            return None
        if set(hints) == set(a_addrs):
            return None
        a_ok = any(self.world.tls_reachable(profile, ip, date) for ip in a_addrs)
        hint_ok = any(self.world.tls_reachable(profile, ip, date) for ip in hints)
        return ConnectivityProbe(
            name=observation.name,
            date=date,
            a_addrs=a_addrs,
            hint_addrs=hints,
            a_reachable=a_ok,
            hint_reachable=hint_ok,
        )

    # -- hourly ECH scan (§4.4.2) -----------------------------------------------------

    def scan_ech(self, name: Name, hour: int) -> Optional[EchObservation]:
        return self._ech_of(self.scan_name(name, "apex", follow_up=False), hour)

    def scan_ech_many(
        self, names: Sequence[Name], hour: int
    ) -> List[Optional[EchObservation]]:
        """Batched counterpart of :meth:`scan_ech`: one rescan batch for
        the whole hourly target list."""
        observations = self.scan_names([(n, "apex") for n in names], follow_up=False)
        return [self._ech_of(observation, hour) for observation in observations]

    @staticmethod
    def _ech_of(observation: DomainObservation, hour: int) -> Optional[EchObservation]:
        for view in observation.https_records:
            if view.has_ech and view.ech_digest is not None:
                return EchObservation(
                    observation.name,
                    hour,
                    view.ech_digest,
                    view.ech_public_name or "",
                    view.ech_config_id,
                )
        return None
