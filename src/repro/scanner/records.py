"""Compact observation records produced by the scanning framework.

These are the rows of the measurement dataset — memory-lean (slots,
shared tuples) because a campaign holds hundreds of thousands of them.
All records compare by value (field-wise over their slots) so shard
merges and sequential-vs-parallel equivalence checks can use ``==``.
"""

from __future__ import annotations

import datetime
from typing import Optional, Tuple


class _SlotsEqualityMixin:
    """Field-wise equality for ``__slots__`` record classes.

    Defining ``__eq__`` leaves the classes deliberately unhashable:
    several records are mutated after construction (the scanner fills
    follow-up fields in place), so a value-based hash would be unsafe
    and the old identity hash would contradict value equality. Key
    containers by an explicit field tuple instead.
    """

    __slots__ = ()

    def _astuple(self) -> tuple:
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __eq__(self, other: object):
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._astuple() == other._astuple()


class HttpsRecordView(_SlotsEqualityMixin):
    """One HTTPS rdata as the scanner parsed it."""

    __slots__ = (
        "priority",
        "target",
        "alpn",
        "port",
        "ipv4hints",
        "ipv6hints",
        "has_ech",
        "ech_digest",
        "ech_public_name",
        "ech_config_id",
        "has_mandatory",
    )

    def __init__(
        self,
        priority: int,
        target: str,
        alpn: Optional[Tuple[str, ...]],
        port: Optional[int],
        ipv4hints: Tuple[str, ...],
        ipv6hints: Tuple[str, ...],
        has_ech: bool,
        ech_digest: Optional[bytes] = None,
        ech_public_name: Optional[str] = None,
        ech_config_id: int = 0,
        has_mandatory: bool = False,
    ):
        self.priority = priority
        self.target = target
        self.alpn = alpn
        self.port = port
        self.ipv4hints = ipv4hints
        self.ipv6hints = ipv6hints
        self.has_ech = has_ech
        self.ech_digest = ech_digest
        self.ech_public_name = ech_public_name
        self.ech_config_id = ech_config_id
        self.has_mandatory = has_mandatory

    @property
    def is_alias_mode(self) -> bool:
        return self.priority == 0

    @property
    def is_service_mode(self) -> bool:
        return self.priority != 0

    @property
    def has_params(self) -> bool:
        return bool(
            self.alpn or self.port is not None or self.ipv4hints or self.ipv6hints
            or self.has_ech or self.has_mandatory
        )

    def __repr__(self) -> str:
        return f"HttpsRecordView({self.priority} {self.target} alpn={self.alpn})"


class DomainObservation(_SlotsEqualityMixin):
    """One (domain, kind, day) scan result."""

    __slots__ = (
        "name",
        "kind",  # "apex" | "www"
        "rcode",
        "https_records",
        "via_cname",
        "rrsig_present",
        "ad_flag",
        "a_addrs",
        "aaaa_addrs",
        "ns_names",
        "soa_serial",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        rcode: int,
        https_records: Tuple[HttpsRecordView, ...] = (),
        via_cname: Optional[str] = None,
        rrsig_present: bool = False,
        ad_flag: bool = False,
        a_addrs: Tuple[str, ...] = (),
        aaaa_addrs: Tuple[str, ...] = (),
        ns_names: Tuple[str, ...] = (),
        soa_serial: Optional[int] = None,
    ):
        self.name = name
        self.kind = kind
        self.rcode = rcode
        self.https_records = https_records
        self.via_cname = via_cname
        self.rrsig_present = rrsig_present
        self.ad_flag = ad_flag
        self.a_addrs = a_addrs
        self.aaaa_addrs = aaaa_addrs
        self.ns_names = ns_names
        self.soa_serial = soa_serial

    @property
    def has_https(self) -> bool:
        return bool(self.https_records)

    @property
    def has_ech(self) -> bool:
        return any(record.has_ech for record in self.https_records)

    def all_ipv4_hints(self) -> Tuple[str, ...]:
        hints = []
        for record in self.https_records:
            hints.extend(record.ipv4hints)
        return tuple(hints)

    def all_ipv6_hints(self) -> Tuple[str, ...]:
        hints = []
        for record in self.https_records:
            hints.extend(record.ipv6hints)
        return tuple(hints)

    def __repr__(self) -> str:
        return f"DomainObservation({self.name}/{self.kind}, https={self.has_https})"


class NameServerObservation(_SlotsEqualityMixin):
    """One (nameserver hostname, day) scan result with WHOIS attribution."""

    __slots__ = ("hostname", "ips", "whois_org")

    def __init__(self, hostname: str, ips: Tuple[str, ...], whois_org: Optional[str]):
        self.hostname = hostname
        self.ips = ips
        self.whois_org = whois_org

    def __repr__(self) -> str:
        return f"NameServerObservation({self.hostname} -> {self.whois_org})"


class ConnectivityProbe(_SlotsEqualityMixin):
    """One §4.3.5 TLS-reachability check on a mismatched domain."""

    __slots__ = ("name", "date", "a_addrs", "hint_addrs", "a_reachable", "hint_reachable")

    def __init__(
        self,
        name: str,
        date: datetime.date,
        a_addrs: Tuple[str, ...],
        hint_addrs: Tuple[str, ...],
        a_reachable: bool,
        hint_reachable: bool,
    ):
        self.name = name
        self.date = date
        self.a_addrs = a_addrs
        self.hint_addrs = hint_addrs
        self.a_reachable = a_reachable
        self.hint_reachable = hint_reachable

    @property
    def any_unreachable(self) -> bool:
        return not (self.a_reachable and self.hint_reachable)


class EchObservation(_SlotsEqualityMixin):
    """One (domain, absolute hour) ECH config sighting."""

    __slots__ = ("name", "hour", "config_digest", "public_name", "config_id")

    def __init__(self, name: str, hour: int, config_digest: bytes, public_name: str, config_id: int):
        self.name = name
        self.hour = hour
        self.config_digest = config_digest
        self.public_name = public_name
        self.config_id = config_id
