"""Incremental / longitudinal dataset maintenance.

The paper's artifact plan is "a longstanding framework that continuously
collects and releases HTTPS data periodically". This module supports
that mode of operation: campaigns run in slices (e.g. one per week),
each producing a Dataset, which are then merged into one longitudinal
dataset for analysis — with consistency checks so slices from different
worlds cannot be silently mixed.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Sequence, Tuple

from .dataset import Dataset
from .records import EchObservation


class DatasetMergeError(ValueError):
    """Incompatible or overlapping dataset slices."""


def merge_datasets(slices: Sequence[Dataset], allow_overlap: bool = False) -> Dataset:
    """Merge campaign *slices* into one longitudinal dataset.

    Slices must come from the same simulated world (population + seed).
    Overlapping scan days are rejected unless *allow_overlap* — in which
    case later slices win (re-scans supersede).
    """
    if not slices:
        raise DatasetMergeError("nothing to merge")
    first = slices[0]
    merged = Dataset(first.population, first.seed, first.day_step)
    ech_by_key: Dict[Tuple[str, int, bytes], EchObservation] = {}
    for dataset in slices:
        if (dataset.population, dataset.seed) != (first.population, first.seed):
            raise DatasetMergeError(
                "cannot merge datasets from different worlds: "
                f"{(dataset.population, dataset.seed)} vs {(first.population, first.seed)}"
            )
        for day, snapshot in dataset.snapshots.items():
            if day in merged.snapshots and not allow_overlap:
                raise DatasetMergeError(f"scan day {day} present in more than one slice")
            merged.snapshots[day] = snapshot
        # Dedupe hourly ECH rows across re-scanned slices: a (name, hour,
        # config) sighting must appear once no matter how many slices
        # covered that hour, with later slices superseding earlier ones.
        for observation in dataset.ech_observations:
            key = (observation.name, observation.hour, observation.config_digest)
            ech_by_key[key] = observation
        if dataset.dnssec_snapshot:
            if (
                merged.dnssec_snapshot_date is None
                or dataset.dnssec_snapshot_date > merged.dnssec_snapshot_date
            ):
                merged.dnssec_snapshot = dataset.dnssec_snapshot
                merged.dnssec_snapshot_date = dataset.dnssec_snapshot_date
    merged.ech_observations = list(ech_by_key.values())
    merged.day_step = _effective_step(merged)
    return merged


def _effective_step(dataset: Dataset) -> int:
    days = dataset.days()
    if len(days) < 2:
        return dataset.day_step or 1
    gaps = [(b - a).days for a, b in zip(days, days[1:])]
    return max(1, min(gaps))


def continuation_window(
    dataset: Dataset, day_step: Optional[int] = None
) -> Optional[datetime.date]:
    """The first scan day a continuation campaign should cover, or None
    when the dataset is empty (start from the study beginning)."""
    days = dataset.days()
    if not days:
        return None
    step = day_step or dataset.day_step or 1
    return days[-1] + datetime.timedelta(days=step)


def coverage_gaps(dataset: Dataset, expected_step: Optional[int] = None) -> List[datetime.date]:
    """Scan days missing from an expected regular cadence (release QA)."""
    days = dataset.days()
    if len(days) < 2:
        return []
    step = expected_step or _effective_step(dataset)
    missing: List[datetime.date] = []
    current = days[0]
    have = set(days)
    while current <= days[-1]:
        if current not in have:
            missing.append(current)
        current += datetime.timedelta(days=step)
    return missing
