"""Incremental / longitudinal dataset maintenance.

The paper's artifact plan is "a longstanding framework that continuously
collects and releases HTTPS data periodically". This module supports
that mode of operation: campaigns run in slices (e.g. one per week),
each producing a Dataset, which are then merged into one longitudinal
dataset for analysis — with consistency checks so slices from different
worlds cannot be silently mixed.

Architecture of a continuous collection (see
:mod:`~repro.scanner.collector` for the driver):

* **Increments.** The study window partitions into *day-slices* (chunks
  of consecutive scan days, planned by
  :func:`~repro.scanner.campaign.slice_schedule`) and the domain space
  into *shards* (:class:`~repro.scanner.pipeline.ShardPlan`); one unit
  of arriving work is the pair (day-slice × domain-shard). Each
  increment runs through the same batched/sharded machinery a one-shot
  pipeline run uses, with the cross-day ``seen_https`` watchlist state
  carried in from the already-folded days
  (:meth:`~repro.scanner.dataset.Dataset.apexes_with_https`).

* **Folds.** Results compose along both merge axes: same-day shard
  parts fold with
  :func:`~repro.scanner.pipeline.merge_shard_datasets`, and each
  completed day-slice folds into the growing longitudinal dataset with
  :func:`fold_slice` here (the disjoint-days axis, built on
  :meth:`~repro.scanner.dataset.Dataset.extend`). The two axes commute:
  shards-then-days and days-then-shards produce value-equal datasets,
  and either equals the one-shot ``run_campaign`` result. ``run_stats``
  totals accumulate across every increment and post-merge stage.

* **Checkpoints.** The collector journals each completed increment and
  persists the current merged dataset to a versioned on-disk checkpoint,
  so an interrupted collection resumes exactly where it stopped instead
  of restarting (and a checkpoint written by a different code version,
  config, or partitioning is rejected, never silently reused).
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Sequence

from .dataset import Dataset


class DatasetMergeError(ValueError):
    """Incompatible or overlapping dataset slices."""


def merge_datasets(slices: Sequence[Dataset], allow_overlap: bool = False) -> Dataset:
    """Merge campaign *slices* into one longitudinal dataset.

    Slices must come from the same simulated world (population + seed).
    Overlapping scan days are rejected unless *allow_overlap* — in which
    case later slices win (re-scans supersede). Per-slice ``run_stats``
    (when recorded) sum onto the merged dataset, so a long collection
    reports its transport/coalescing totals rather than dropping them.
    """
    if not slices:
        raise DatasetMergeError("nothing to merge")
    first = slices[0]
    merged = Dataset(first.population, first.seed, first.day_step)
    for dataset in slices:
        try:
            merged.extend(dataset, allow_overlap=allow_overlap)
        except ValueError as exc:
            raise DatasetMergeError(str(exc)) from exc
    merged.day_step = _effective_step(merged)
    return merged


def fold_slice(longitudinal: Optional[Dataset], part: Dataset) -> Dataset:
    """Fold a newly completed day-slice into the growing longitudinal
    dataset (in place) and return it.

    The continuous collector's disjoint-days fold: like
    :func:`merge_datasets` (same machinery —
    :meth:`~repro.scanner.dataset.Dataset.extend`) but the campaign
    cadence ``day_step`` is preserved rather than recomputed from
    observed gaps, so the finished fold is value-equal to the one-shot
    ``run_campaign`` dataset (whose ``day_step`` is the configured one
    even though the hourly-ECH week inserts daily scan days).
    """
    if longitudinal is None:
        return part
    try:
        return longitudinal.extend(part)
    except ValueError as exc:
        raise DatasetMergeError(str(exc)) from exc


def _effective_step(dataset: Dataset) -> int:
    days = dataset.days()
    if len(days) < 2:
        return dataset.day_step or 1
    gaps = [(b - a).days for a, b in zip(days, days[1:])]
    return max(1, min(gaps))


def continuation_window(
    dataset: Dataset, day_step: Optional[int] = None
) -> Optional[datetime.date]:
    """The first scan day a continuation campaign should cover, or None
    when the dataset is empty (start from the study beginning)."""
    days = dataset.days()
    if not days:
        return None
    step = day_step or dataset.day_step or 1
    return days[-1] + datetime.timedelta(days=step)


def coverage_gaps(dataset: Dataset, expected_step: Optional[int] = None) -> List[datetime.date]:
    """Scan days missing from an expected regular cadence (release QA)."""
    days = dataset.days()
    if len(days) < 2:
        return []
    step = expected_step or _effective_step(dataset)
    missing: List[datetime.date] = []
    current = days[0]
    have = set(days)
    while current <= days[-1]:
        if current not in have:
            missing.append(current)
        current += datetime.timedelta(days=step)
    return missing
