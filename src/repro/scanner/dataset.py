"""The measurement dataset: snapshots collected by a scan campaign.

Mirrors the paper's data layout (Table 1): daily domain scans, the
SOA/NS window, the NS-IP/WHOIS window, hourly ECH scans, the
connectivity experiment, and the DNSSEC validation snapshot.
"""

from __future__ import annotations

import datetime
import gzip
import hashlib
import os
import pickle
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..simnet import timeline
from .records import (
    ConnectivityProbe,
    DomainObservation,
    EchObservation,
    NameServerObservation,
    _SlotsEqualityMixin,
)

_PICKLE_PROTOCOL = 4


class DailySnapshot(_SlotsEqualityMixin):
    """Everything observed on one scan day.

    Compares by value (slot-wise), like the record classes it holds."""

    __slots__ = (
        "date",
        "ranked_names",
        "apex",
        "www",
        "apex_https_count",
        "www_https_count",
        "ns_observations",
        "connectivity",
        "watchlist_ns",
    )

    def __init__(self, date: datetime.date, ranked_names: Tuple[str, ...]):
        self.date = date
        self.ranked_names = ranked_names
        # Observations are stored only for names where an HTTPS record was
        # seen (all analyses of non-adopters are aggregate counts).
        self.apex: Dict[str, DomainObservation] = {}
        self.www: Dict[str, DomainObservation] = {}
        self.apex_https_count = 0
        self.www_https_count = 0
        self.ns_observations: Dict[str, NameServerObservation] = {}
        self.connectivity: List[ConnectivityProbe] = []
        # NS sets of domains that previously published HTTPS but do not
        # today (deactivation follow-up; () means no NS records at all).
        self.watchlist_ns: Dict[str, Tuple[str, ...]] = {}

    @property
    def list_size(self) -> int:
        return len(self.ranked_names)

    def rank_of(self, name: str) -> Optional[int]:
        try:
            return self.ranked_names.index(name) + 1
        except ValueError:
            return None

    def apex_https_rate(self) -> float:
        return self.apex_https_count / max(1, self.list_size)

    def www_https_rate(self) -> float:
        return self.www_https_count / max(1, self.list_size)

    # -- shard support -------------------------------------------------------

    @classmethod
    def merge_shards(cls, parts: Sequence["DailySnapshot"]) -> "DailySnapshot":
        """Merge same-day snapshots whose observations cover disjoint
        name-slices (the pipeline's per-shard outputs).

        Every part must carry the same date and full ranked list; merged
        dicts/lists are rebuilt in ranked-list order so the result is
        indistinguishable from a sequential single-pass scan.
        """
        if not parts:
            raise ValueError("nothing to merge")
        first = parts[0]
        for part in parts[1:]:
            if part.date != first.date or part.ranked_names != first.ranked_names:
                raise ValueError(
                    f"shard snapshots disagree on the ranked list for {first.date}"
                )
        apex: Dict[str, DomainObservation] = {}
        www: Dict[str, DomainObservation] = {}
        ns_observations: Dict[str, NameServerObservation] = {}
        watchlist: Dict[str, Tuple[str, ...]] = {}
        connectivity: List[ConnectivityProbe] = []
        for part in parts:
            apex.update(part.apex)
            www.update(part.www)
            ns_observations.update(part.ns_observations)
            watchlist.update(part.watchlist_ns)
            connectivity.extend(part.connectivity)
        merged = cls(first.date, first.ranked_names)
        rank = {name: i for i, name in enumerate(first.ranked_names)}
        merged.apex = {n: apex[n] for n in first.ranked_names if n in apex}
        # www observations are keyed by the scanned hostname (www.<apex>).
        merged.www = {
            key: www[key]
            for key in (f"www.{n}" for n in first.ranked_names)
            if key in www
        }
        merged.apex_https_count = len(merged.apex)
        merged.www_https_count = len(merged.www)
        merged.ns_observations = {h: ns_observations[h] for h in sorted(ns_observations)}
        merged.connectivity = sorted(
            connectivity, key=lambda probe: rank.get(probe.name, len(rank))
        )
        merged.watchlist_ns = {n: watchlist[n] for n in first.ranked_names if n in watchlist}
        return merged


class Dataset:
    """A full campaign's worth of snapshots."""

    def __init__(self, population: int, seed: str, day_step: int):
        self.population = population
        self.seed = seed
        self.day_step = day_step
        self.snapshots: Dict[datetime.date, DailySnapshot] = {}
        self.ech_observations: List[EchObservation] = []
        # name -> (has_https, signed, validation_state, ns_names, registrar)
        self.dnssec_snapshot: Dict[str, tuple] = {}
        self.dnssec_snapshot_date: Optional[datetime.date] = None
        # Diagnostic transport/scheduler counters for the run that built
        # this dataset (a campaign.RunStats); deliberately excluded from
        # __eq__ — serial, batched, and sharded runs produce equal
        # datasets but different counter values.
        self.run_stats = None
        # True when this instance came from Dataset.load rather than a
        # live campaign run (so run_stats describes the originating run,
        # not the current invocation). Set by load(); not persisted.
        self.loaded_from_cache = False

    def __eq__(self, other: object):
        if other.__class__ is not self.__class__:
            return NotImplemented
        return (
            (self.population, self.seed, self.day_step)
            == (other.population, other.seed, other.day_step)
            and self.snapshots == other.snapshots
            and self.ech_observations == other.ech_observations
            and self.dnssec_snapshot == other.dnssec_snapshot
            and self.dnssec_snapshot_date == other.dnssec_snapshot_date
        )

    # -- access ------------------------------------------------------------

    def days(self) -> List[datetime.date]:
        return sorted(self.snapshots)

    def days_between(
        self, start: Optional[datetime.date] = None, end: Optional[datetime.date] = None
    ) -> List[datetime.date]:
        return [
            d for d in self.days()
            if (start is None or d >= start) and (end is None or d <= end)
        ]

    def snapshot(self, date: datetime.date) -> DailySnapshot:
        return self.snapshots[date]

    def add_snapshot(self, snapshot: DailySnapshot) -> None:
        self.snapshots[snapshot.date] = snapshot

    def extend(self, other: "Dataset", allow_overlap: bool = False) -> "Dataset":
        """Fold *other* — a campaign slice over the same world — into
        this dataset in place and return self.

        This is the disjoint-days merge axis (what
        :func:`~repro.scanner.incremental.merge_datasets` folds over):
        snapshots concatenate (overlapping days rejected unless
        *allow_overlap*, in which case the later slice supersedes),
        hourly ECH rows dedupe by (name, hour, config), the latest
        DNSSEC snapshot wins, and ``run_stats`` accumulate so a
        longitudinal collection reports transport/coalescing totals
        across all of its increments. ``day_step`` is deliberately left
        alone: the continuous collector folds slices of one campaign
        cadence, and recomputing it from observed gaps would diverge
        from the one-shot dataset (callers that want the observed
        cadence use :func:`~repro.scanner.incremental.merge_datasets`).
        """
        if (other.population, other.seed) != (self.population, self.seed):
            raise ValueError(
                "cannot merge datasets from different worlds: "
                f"{(other.population, other.seed)} vs {(self.population, self.seed)}"
            )
        for day, snapshot in other.snapshots.items():
            if day in self.snapshots and not allow_overlap:
                raise ValueError(f"scan day {day} present in more than one slice")
            self.snapshots[day] = snapshot
        if other.ech_observations:
            # Dedupe hourly ECH rows across re-scanned slices: a (name,
            # hour, config) sighting appears once no matter how many
            # slices covered that hour, later slices superseding.
            by_key = {
                (o.name, o.hour, o.config_digest): o for o in self.ech_observations
            }
            for observation in other.ech_observations:
                key = (observation.name, observation.hour, observation.config_digest)
                by_key[key] = observation
            self.ech_observations = list(by_key.values())
        if other.dnssec_snapshot:
            if (
                self.dnssec_snapshot_date is None
                or other.dnssec_snapshot_date > self.dnssec_snapshot_date
            ):
                self.dnssec_snapshot = other.dnssec_snapshot
                self.dnssec_snapshot_date = other.dnssec_snapshot_date
        if other.run_stats is not None:
            self.run_stats = (
                other.run_stats
                if self.run_stats is None
                else self.run_stats + other.run_stats
            )
        return self

    def apexes_with_https(self) -> set:
        """Apexes that published HTTPS on at least one scan day.

        This is exactly the ``seen_https`` deactivation-watchlist state a
        campaign accumulates while scanning these days, so a continuation
        run over later day-slices passes it to
        :func:`~repro.scanner.campaign.run_scheduled` as its carry-in.
        """
        seen: set = set()
        for snapshot in self.snapshots.values():
            seen.update(snapshot.apex)
        return seen

    # -- overlapping-domain machinery (§4.1) ---------------------------------

    def overlapping_domains(self, phase: int) -> FrozenSet[str]:
        """Domains present in the list on *every* scan day of the phase."""
        days = [d for d in self.days() if timeline.phase_of(d) == phase]
        if not days:
            return frozenset()
        result: Optional[set] = None
        for day in days:
            names = set(self.snapshots[day].ranked_names)
            result = names if result is None else (result & names)
        return frozenset(result or ())

    def union_domains(self, phase: Optional[int] = None) -> FrozenSet[str]:
        result: set = set()
        for day in self.days():
            if phase is None or timeline.phase_of(day) == phase:
                result.update(self.snapshots[day].ranked_names)
        return frozenset(result)

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with gzip.open(path, "wb") as handle:
            pickle.dump(self, handle, protocol=_PICKLE_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "Dataset":
        with gzip.open(path, "rb") as handle:
            dataset = pickle.load(handle)
        if not isinstance(dataset, cls):
            raise TypeError(f"{path} does not contain a Dataset")
        dataset.loaded_from_cache = True
        return dataset


def _dataset_key(population: int, seed: str, day_step: int, tag: str) -> str:
    """The shared cache-key digest behind :func:`cache_path` and
    :func:`checkpoint_dir_path` (one derivation, so the two namespaces
    cannot drift apart)."""
    return hashlib.sha256(f"{population}|{seed}|{day_step}|{tag}".encode()).hexdigest()[:16]


def cache_path(cache_dir: str, population: int, seed: str, day_step: int, tag: str = "") -> str:
    key = _dataset_key(population, seed, day_step, tag)
    return os.path.join(cache_dir, f"dataset_{population}_{day_step}_{key}.pkl.gz")


def checkpoint_dir_path(
    cache_dir: str, population: int, seed: str, day_step: int, tag: str = ""
) -> str:
    """Default checkpoint directory for a continuous collection.

    Keyed like :func:`cache_path` but under ``checkpoints/`` with a
    distinct name shape, so a half-finished checkpoint can never alias a
    cached one-shot dataset file (the *tag* additionally carries the
    continuous-mode knobs — see
    :func:`~repro.scanner.campaign.load_or_run_campaign`)."""
    key = _dataset_key(population, seed, day_step, tag)
    return os.path.join(cache_dir, "checkpoints", f"campaign_{population}_{day_step}_{key}")
