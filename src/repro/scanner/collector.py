"""Continuous-collection driver: incremental, resumable longitudinal
campaigns over arriving day-slices × domain-shards.

The paper's artifact plan is "a longstanding framework that continuously
collects and releases HTTPS data periodically". A one-shot
``run_campaign`` (or pipeline run) scans the whole study window in one
sitting; this module instead treats the campaign as a **stream of
arriving work increments** and folds each one into a growing
longitudinal dataset the moment it completes:

* the study calendar partitions into *day-slices* — chunks of
  consecutive scan days, each planned independently by
  :func:`~repro.scanner.campaign.slice_schedule` (which resolves the
  DNSSEC-snapshot threshold to the one slice owning its concrete day);
* the domain space partitions into *shards* by the pipeline's
  :class:`~repro.scanner.pipeline.ShardPlan`;
* one **increment** is the pair (day-slice × domain-shard), executed
  through the existing batched/sharded machinery
  (:meth:`~repro.scanner.pipeline.ParallelCampaignRunner.run_shard`,
  whose worker pool and per-process world registries stay warm across
  increments);
* completed increments fold along **both merge axes**: same-day shard
  parts via :func:`~repro.scanner.pipeline.merge_shard_datasets` (after
  the slice's post-merge NS-IP and hourly-ECH stages), and finished
  day-slices via :func:`~repro.scanner.incremental.fold_slice` (the
  disjoint-days axis, built on
  :meth:`~repro.scanner.dataset.Dataset.extend`).

Cross-day state is the one thing increments cannot recompute locally:
the deactivation watchlist follows apexes that published HTTPS on *any*
earlier day. That state is exactly the union of ``snapshot.apex`` keys
over the already-folded days
(:meth:`~repro.scanner.dataset.Dataset.apexes_with_https`), so each
increment receives it as the ``seen_https`` carry-in and the fold stays
value-equal to a one-shot run.

**Checkpointing.** Every completed increment's part dataset is persisted
and journalled under the checkpoint directory, and every completed
day-slice updates the merged longitudinal dataset (atomically — temp
file + rename); an interrupted collection therefore resumes exactly
where it stopped instead of restarting. The checkpoint is versioned and
identity-checked: a checkpoint written by a different code version,
world config, shard count, or increment partitioning raises
:class:`CheckpointError` rather than silently mixing incompatible
state.

Headline guarantee (locked in by ``tests/test_collector.py``): a
continuous run over **any** partitioning of the study window, resumed
or not, produces a dataset value-equal to the one-shot ``run_campaign``
result, with ``run_stats`` totals accumulated across all increments.

Checkpoint directory layout::

    meta.json       identity header (version, code fingerprint, world
                    tag, schedule, shard count, slice partitioning)
    journal.jsonl   append-only journal of completed increments
    parts/          per-increment datasets of the in-progress slice
    merged.pkl.gz   the longitudinal dataset folded so far
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import warnings
from typing import Callable, Dict, List, Optional, Tuple

from ..simnet.config import SimConfig
from ..simnet.faults import FaultSchedule
from ..simnet.snapshot import code_fingerprint, world_tag
from .campaign import build_schedule, slice_schedule
from .dataset import Dataset
from .incremental import fold_slice
from .pipeline import ParallelCampaignRunner, merge_shard_datasets

CHECKPOINT_VERSION = 1

_MAGIC = "repro-continuous-checkpoint"
_META = "meta.json"
_JOURNAL = "journal.jsonl"
_MERGED = "merged.pkl.gz"
_PARTS = "parts"


class CheckpointError(Exception):
    """A checkpoint directory is incompatible with this collection (laid
    down by different code, config, shard count, or partitioning)."""


class CollectionInterrupted(RuntimeError):
    """Raised when ``max_increments`` stops a collection mid-stream.

    The checkpoint holds everything completed so far; a later
    :meth:`ContinuousCollector.collect` with the same arguments resumes
    from it."""

    def __init__(self, executed: int, remaining: int):
        self.executed = executed
        self.remaining = remaining
        super().__init__(
            f"collection interrupted after {executed} increment(s); "
            f"{remaining} still pending — rerun with the same arguments "
            "to resume from the checkpoint"
        )


@dataclasses.dataclass(frozen=True)
class Increment:
    """One unit of arriving work: a day-slice scanned over one shard."""

    slice_index: int
    shard_index: int
    days: Tuple[datetime.date, ...]


class CheckpointStore:
    """The on-disk state of one continuous collection.

    Opening the store either initialises a fresh checkpoint (writing the
    identity header) or validates an existing one against the expected
    identity — any mismatch raises :class:`CheckpointError`, so a
    checkpoint can never silently resume under different code, config,
    shard count, or partitioning. Part files are only trusted via the
    journal *and* a successful load: a file truncated by a crash
    mid-write simply causes its increment to re-run.
    """

    def __init__(self, directory: str, meta: Dict):
        self.directory = directory
        self.parts_dir = os.path.join(directory, _PARTS)
        os.makedirs(self.parts_dir, exist_ok=True)
        self._meta_path = os.path.join(directory, _META)
        self._journal_path = os.path.join(directory, _JOURNAL)
        self._merged_path = os.path.join(directory, _MERGED)
        self._validate_or_init(meta)
        self._journal: Dict[Tuple[int, int], str] = {}
        self._load_journal()

    # -- identity ----------------------------------------------------------

    def _validate_or_init(self, meta: Dict) -> None:
        if not os.path.exists(self._meta_path):
            # A directory holding collection state but no identity header
            # is unverifiable — adopting it (e.g. after someone deleted
            # only meta.json to silence a mismatch error) would fold
            # foreign data into this collection without any check.
            leftovers = any(
                os.path.exists(p) for p in (self._journal_path, self._merged_path)
            ) or bool(os.listdir(self.parts_dir))
            if leftovers:
                raise CheckpointError(
                    f"{self.directory} holds collection state but no "
                    "meta.json identity header; remove the whole "
                    "checkpoint directory to restart"
                )
            tmp = f"{self._meta_path}.tmp.{os.getpid()}"
            with open(tmp, "w") as handle:
                json.dump(meta, handle, indent=1, sort_keys=True)
            os.replace(tmp, self._meta_path)
            return
        try:
            with open(self._meta_path) as handle:
                found = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint header {self._meta_path}: {exc}"
            ) from exc
        if not isinstance(found, dict) or found.get("magic") != _MAGIC:
            raise CheckpointError(f"{self.directory} is not a collection checkpoint")
        if found.get("version") != meta["version"]:
            raise CheckpointError(
                f"checkpoint version {found.get('version')!r} != "
                f"{meta['version']} under {self.directory}"
            )
        if found.get("code") != meta["code"]:
            raise CheckpointError(
                f"checkpoint under {self.directory} was written by different "
                "repro code (stale); remove it to restart the collection"
            )
        for key in sorted(meta):
            if found.get(key) != meta[key]:
                raise CheckpointError(
                    f"checkpoint mismatch on {key!r} under {self.directory}: "
                    f"resumed collection expects {meta[key]!r}, "
                    f"checkpoint has {found.get(key)!r}"
                )

    # -- journal & parts ---------------------------------------------------

    def _load_journal(self) -> None:
        if not os.path.exists(self._journal_path):
            return
        with open(self._journal_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:  # torn final line from a crash
                    continue
                self._journal[(entry["slice"], entry["shard"])] = entry["part"]

    def _part_path(self, slice_index: int, shard_index: int) -> str:
        return os.path.join(
            self.parts_dir, f"s{slice_index:04d}_w{shard_index:02d}.pkl.gz"
        )

    def load_part(self, slice_index: int, shard_index: int) -> Optional[Dataset]:
        """The journalled part for this increment, or None when it has
        not completed (or its file cannot be trusted — then it reruns)."""
        rel = self._journal.get((slice_index, shard_index))
        if rel is None:
            return None
        path = os.path.join(self.directory, rel)
        try:
            return Dataset.load(path)
        except Exception as exc:  # missing/corrupt part: treat as not done
            # The journal promised this file; say why the increment is
            # re-running instead of silently repeating the work.
            warnings.warn(
                f"re-running increment (slice {slice_index}, shard "
                f"{shard_index}): journalled part {path} is unreadable: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def has_part(self, slice_index: int, shard_index: int) -> bool:
        """Cheap completion probe: journalled and on disk. Counting-only
        callers use this instead of :meth:`load_part` so they don't
        re-unpickle every part; the load in the collect loop remains the
        trust check (a corrupt file still reruns its increment)."""
        rel = self._journal.get((slice_index, shard_index))
        return rel is not None and os.path.exists(os.path.join(self.directory, rel))

    def record_increment(
        self, increment: Increment, part: Dataset
    ) -> None:
        """Persist one completed increment: part dataset first, journal
        line second (so the journal never references a missing file)."""
        path = self._part_path(increment.slice_index, increment.shard_index)
        part.save(path)
        rel = os.path.relpath(path, self.directory)
        stats = part.run_stats
        entry = {
            "slice": increment.slice_index,
            "shard": increment.shard_index,
            "days": [d.isoformat() for d in increment.days],
            "part": rel,
            "stats": None if stats is None else dataclasses.asdict(stats),
        }
        with open(self._journal_path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._journal[(increment.slice_index, increment.shard_index)] = rel

    def drop_slice_parts(self, slice_index: int, shards: int) -> None:
        """Best-effort cleanup of a folded slice's part files (their data
        now lives in the merged dataset)."""
        for shard_index in range(shards):
            path = self._part_path(slice_index, shard_index)
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- merged dataset ----------------------------------------------------

    def load_merged(self) -> Optional[Dataset]:
        try:
            return Dataset.load(self._merged_path)
        except FileNotFoundError:  # fresh checkpoint: no fold yet
            return None
        except (OSError, EOFError, TypeError) as exc:
            warnings.warn(
                f"ignoring unreadable merged dataset {self._merged_path}: "
                f"{exc} (the fold restarts from the journalled parts)",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def save_merged(self, dataset: Dataset) -> None:
        """Atomic update of the longitudinal dataset: a crash mid-write
        leaves the previous fold intact, never a torn file."""
        tmp = f"{self._merged_path}.tmp.{os.getpid()}"
        dataset.save(tmp)
        os.replace(tmp, self._merged_path)


class ContinuousCollector:
    """Incrementally collect a campaign as (day-slice × domain-shard)
    increments, checkpointing after every one.

    ``collect()`` executes every pending increment (optionally capped by
    ``max_increments``, which raises :class:`CollectionInterrupted` with
    the checkpoint intact) and returns the finished longitudinal
    :class:`Dataset` — value-equal to the one-shot ``run_campaign``
    result over the same window, whatever the partitioning and however
    often the collection was interrupted and resumed.

    *days_per_increment* sets how many consecutive scan days one
    day-slice covers; *workers* is both the domain-shard count and the
    worker-pool width (shard count is checkpoint identity: a resume must
    use the same value). The runner's pool and the worker processes'
    world registries stay warm across increments, so per-increment
    warm-up is a snapshot checkout, not a world rebuild.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        checkpoint_dir: str = ".cache/checkpoints/default",
        workers: int = 1,
        day_step: int = 7,
        start: Optional[datetime.date] = None,
        end: Optional[datetime.date] = None,
        ech_sample: int = 200,
        with_ech_hourly: bool = True,
        with_dnssec_snapshot: bool = True,
        days_per_increment: int = 7,
        batch: bool = False,
        snapshot_dir: Optional[str] = None,
        executor: str = "process",
        keep_alive: bool = False,
        scenario: Optional[FaultSchedule] = None,
        answer_cache: bool = True,
    ):
        if days_per_increment < 1:
            raise ValueError("need at least one scan day per increment")
        self.config = config if config is not None else SimConfig()
        self.checkpoint_dir = checkpoint_dir
        self.keep_alive = bool(keep_alive)
        self.scenario = scenario
        self.workers = max(1, int(workers))
        self.days_per_increment = int(days_per_increment)
        self.schedule = build_schedule(
            day_step=day_step,
            start=start,
            end=end,
            ech_sample=ech_sample,
            with_ech_hourly=with_ech_hourly,
            with_dnssec_snapshot=with_dnssec_snapshot,
        )
        days = self.schedule.scan_days
        self.slices: Tuple[Tuple[datetime.date, ...], ...] = tuple(
            tuple(days[i : i + self.days_per_increment])
            for i in range(0, len(days), self.days_per_increment)
        )
        self._slice_schedules = tuple(
            slice_schedule(self.schedule, slice_days) for slice_days in self.slices
        )
        self.runner = ParallelCampaignRunner(
            self.config,
            workers=self.workers,
            executor=executor,
            batch=batch,
            snapshot_dir=snapshot_dir,
            schedule=self.schedule,
            keep_alive=True,
            scenario=scenario,
            answer_cache=answer_cache,
        )
        self.store = CheckpointStore(checkpoint_dir, self._meta())
        self.total_increments = len(self.slices) * self.workers

    def _meta(self) -> Dict:
        """The checkpoint identity header: everything that must match for
        a resume to be sound. Equality-preserving knobs (batch, snapshot
        dir, executor, answer_cache) deliberately stay out — they may
        change between sessions without invalidating completed
        increments."""
        return {
            "magic": _MAGIC,
            "version": CHECKPOINT_VERSION,
            "code": code_fingerprint(),
            "world": world_tag(self.config),
            "population": self.config.population,
            "seed": self.config.seed,
            "workers": self.workers,
            "schedule": {
                "day_step": self.schedule.day_step,
                "scan_days": [d.isoformat() for d in self.schedule.scan_days],
                "ech_days": [d.isoformat() for d in self.schedule.ech_days],
                "ech_sample": self.schedule.ech_sample,
                "dnssec_threshold": (
                    None
                    if self.schedule.dnssec_threshold is None
                    else self.schedule.dnssec_threshold.isoformat()
                ),
            },
            "slices": [[d.isoformat() for d in s] for s in self.slices],
            # The fault scenario shapes every observation, so a resume
            # must replay the increments under the same schedule (None
            # for a fault-free collection — the historical header shape,
            # so pre-scenario checkpoints stay resumable).
            "scenario": (
                None if self.scenario is None or not self.scenario
                else self.scenario.canonical_tag()
            ),
        }

    # -- public API --------------------------------------------------------

    def pending_increments(self) -> List[Increment]:
        """Increments not yet completed (journalled), in execution order."""
        merged = self.store.load_merged()
        folded = set() if merged is None else set(merged.snapshots)
        pending: List[Increment] = []
        for k, slice_days in enumerate(self.slices):
            if folded.issuperset(slice_days):
                continue
            for i in range(self.workers):
                if not self.store.has_part(k, i):
                    pending.append(Increment(k, i, slice_days))
        return pending

    def collect(
        self,
        progress: Optional[Callable[[str], None]] = None,
        max_increments: Optional[int] = None,
    ) -> Dataset:
        """Run every pending increment, folding and checkpointing as they
        complete, and return the finished longitudinal dataset.

        With ``keep_alive=True`` the runner's warm worker pool survives
        the call (interrupt-and-resume loops — e.g. a
        :class:`~repro.study.Study` session — reuse it); the owner then
        calls :meth:`close`."""
        try:
            return self._collect(progress, max_increments)
        finally:
            if not self.keep_alive:
                self.runner.close()

    def close(self) -> None:
        """Release the runner's worker pool (collect() does this itself;
        needed only when driving increments through lower-level calls)."""
        self.runner.close()

    def __enter__(self) -> "ContinuousCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _collect(self, progress, max_increments) -> Dataset:
        merged = self.store.load_merged()
        executed = 0
        for k, slice_days in enumerate(self.slices):
            sched = self._slice_schedules[k]
            if merged is not None and set(merged.snapshots).issuperset(slice_days):
                # Folded in an earlier session; parts may linger if that
                # session crashed between the fold and the cleanup.
                self.store.drop_slice_parts(k, self.workers)
                continue
            # The deactivation-watchlist carry: apexes that published
            # HTTPS on any already-folded day. Same-slice shard parts
            # cannot contribute (their domains are disjoint).
            seen = frozenset() if merged is None else frozenset(merged.apexes_with_https())
            by_shard: Dict[int, Dataset] = {}
            pending: List[int] = []
            for i in range(self.workers):
                part = self.store.load_part(k, i)
                if part is None:
                    pending.append(i)
                else:
                    by_shard[i] = part
            # Run as many pending increments as the budget allows — all
            # of them concurrently on the warm pool — journalling each
            # part the moment it completes.
            runnable = pending
            if max_increments is not None:
                runnable = pending[: max(0, max_increments - executed)]
            for i, part in self.runner.run_shards(sched, runnable, seen_https=seen):
                self.store.record_increment(Increment(k, i, slice_days), part)
                executed += 1
                by_shard[i] = part
                if progress is not None:
                    progress(
                        f"increment slice {k + 1}/{len(self.slices)} "
                        f"shard {i + 1}/{self.workers} done "
                        f"({slice_days[0]}..{slice_days[-1]})"
                    )
            if len(runnable) < len(pending):
                raise CollectionInterrupted(executed, len(self.pending_increments()))
            slice_dataset = merge_shard_datasets(
                [by_shard[i] for i in range(self.workers)]
            )
            slice_dataset = self.runner.finish_slice(slice_dataset, sched, progress)
            merged = fold_slice(merged, slice_dataset)
            self.store.save_merged(merged)
            self.store.drop_slice_parts(k, self.workers)
            if progress is not None:
                progress(
                    f"slice {k + 1}/{len(self.slices)} folded "
                    f"({len(merged.snapshots)}/{len(self.schedule.scan_days)} "
                    f"days collected)"
                )
        if merged is None:  # empty schedule: nothing to collect
            merged = Dataset(
                self.config.population, self.config.seed, self.schedule.day_step
            )
        if progress is not None and merged.run_stats is not None:
            progress(f"collection summary: {merged.run_stats.summary()}")
        return merged


def has_checkpoint(checkpoint_dir: str) -> bool:
    """Whether *checkpoint_dir* holds an initialised collection
    checkpoint (its identity header exists). Read-only probes use this
    to avoid constructing a :class:`CheckpointStore`, which would lay
    down a fresh header as a side effect."""
    return os.path.exists(os.path.join(checkpoint_dir, _META))


def load_checkpoint_dataset(checkpoint_dir: str) -> Dataset:
    """The longitudinal dataset folded so far under *checkpoint_dir*
    (complete or not). Raises ``OSError`` when no fold has happened yet —
    release tooling and the CI resume smoke load their result this way
    without reconstructing a collector."""
    return Dataset.load(os.path.join(checkpoint_dir, _MERGED))
