"""Campaign orchestration: run the full study against a world.

Replays the paper's measurement schedule (Table 1) chronologically:

* daily HTTPS/A/AAAA scans over the whole window (sampled every
  ``day_step`` days to keep runtime bounded — ratios are step-invariant);
* SOA/NS recorded from 2023-08-16, NS-IP + WHOIS from 2023-10-11;
* hourly ECH scans during 2023-07-21 – 2023-07-27;
* connectivity probes from 2024-01-24;
* the DNSSEC validation snapshot on (the first scan day at or after)
  2024-01-02.
"""

from __future__ import annotations

import datetime
import sys
from typing import Callable, List, Optional

from ..dnscore import rdtypes
from ..dnssec.validation import ChainValidator
from ..simnet import timeline
from ..simnet.config import SimConfig
from ..simnet.world import World
from .dataset import DailySnapshot, Dataset, cache_path
from .engine import ScanEngine


def run_campaign(
    world: World,
    day_step: int = 7,
    start: Optional[datetime.date] = None,
    end: Optional[datetime.date] = None,
    ech_sample: int = 200,
    with_ech_hourly: bool = True,
    with_dnssec_snapshot: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dataset:
    """Run the full measurement campaign and return the dataset."""
    config = world.config
    engine = ScanEngine(world)
    dataset = Dataset(config.population, config.seed, day_step)
    days = set(timeline.study_days(day_step, start, end))
    range_start = start or timeline.STUDY_START
    range_end = end or timeline.STUDY_END
    if with_ech_hourly:
        # The hourly ECH scan needs every day of its week (§4.4.2).
        ech_days = timeline.study_days(
            1,
            max(range_start, timeline.ECH_HOURLY_SCAN_START),
            min(range_end, timeline.ECH_HOURLY_SCAN_END),
        )
        days.update(ech_days)
    if with_dnssec_snapshot and range_start <= timeline.DNSSEC_SNAPSHOT <= range_end:
        days.add(timeline.DNSSEC_SNAPSHOT)
    dnssec_done = False
    seen_https: set = set()  # apexes that published HTTPS at least once

    for date in sorted(days):
        world.set_time(date)
        snapshot = _scan_one_day(world, engine, date, seen_https)
        dataset.add_snapshot(snapshot)
        if progress is not None:
            progress(
                f"{date} list={snapshot.list_size} "
                f"https={snapshot.apex_https_count}/{snapshot.www_https_count}"
            )

        if (
            with_ech_hourly
            and timeline.ECH_HOURLY_SCAN_START <= date <= timeline.ECH_HOURLY_SCAN_END
        ):
            _run_ech_hourly(world, engine, dataset, date, ech_sample)

        if (
            with_dnssec_snapshot
            and not dnssec_done
            and date >= timeline.DNSSEC_SNAPSHOT
        ):
            _dnssec_snapshot(world, dataset, date)
            dnssec_done = True

    return dataset


def _scan_one_day(
    world: World, engine: ScanEngine, date: datetime.date, seen_https: Optional[set] = None
) -> DailySnapshot:
    if seen_https is None:
        seen_https = set()
    config = world.config
    ranked = tuple(world.tranco_list(date))
    snapshot = DailySnapshot(date, ranked)
    in_ns_window = date >= timeline.SOA_NS_SCAN_START
    in_nsip_window = date >= timeline.NS_IP_WHOIS_SCAN_START
    in_connectivity_window = date >= timeline.CONNECTIVITY_SCAN_START

    ns_hostnames_seen: set = set()
    for name_text in ranked:
        profile = world.profile_by_name(name_text)
        if profile is None:  # pragma: no cover - registry is complete
            continue
        apex_obs = engine.scan_name(profile.apex, "apex")
        if not in_ns_window:
            # Table 1: SOA/NS collection starts 2023-08-16.
            apex_obs.ns_names = ()
            apex_obs.soa_serial = None
        if apex_obs.has_https:
            snapshot.apex_https_count += 1
            snapshot.apex[apex_obs.name] = apex_obs
            seen_https.add(apex_obs.name)
            ns_hostnames_seen.update(apex_obs.ns_names)
            if in_connectivity_window:
                probe = engine.probe_connectivity(profile, apex_obs, date)
                if probe is not None:
                    snapshot.connectivity.append(probe)
        elif in_ns_window and apex_obs.name in seen_https:
            # Deactivation follow-up (§4.2.3): track the NS records of
            # domains that used to publish HTTPS.
            from ..dnscore import rdtypes as _rdtypes

            ns_response = world.stub.query(profile.apex, _rdtypes.NS)
            ns_rrset = ns_response.get_answer(profile.apex, _rdtypes.NS)
            snapshot.watchlist_ns[apex_obs.name] = (
                tuple(sorted(rd.target.to_text(omit_final_dot=True) for rd in ns_rrset))
                if ns_rrset is not None
                else ()
            )
        www_obs = engine.scan_name(profile.www, "www")
        if not in_ns_window:
            www_obs.ns_names = ()
            www_obs.soa_serial = None
        if www_obs.has_https:
            snapshot.www_https_count += 1
            snapshot.www[www_obs.name] = www_obs
            ns_hostnames_seen.update(www_obs.ns_names)

    if in_nsip_window:
        for hostname in sorted(ns_hostnames_seen):
            snapshot.ns_observations[hostname] = engine.scan_nameserver(hostname)
    return snapshot


def _run_ech_hourly(
    world: World, engine: ScanEngine, dataset: Dataset, date: datetime.date, sample: int
) -> None:
    """Hourly rescans of ECH-bearing domains for *date* (§4.4.2).

    Called once per day within the Jul 21–27 window; hours run forward so
    the world clock stays monotonic with the daily scans around it.
    """
    today = dataset.snapshots[date]
    targets = [name for name, obs in sorted(today.apex.items()) if obs.has_ech][:sample]
    if not targets:
        return
    names = [world.profile_by_name(t).apex for t in targets]
    for hour in range(24):
        world.set_time(date, hour)
        absolute_hour = timeline.day_index(date) * 24 + hour
        for name in names:
            observation = engine.scan_ech(name, absolute_hour)
            if observation is not None:
                dataset.ech_observations.append(observation)
    # Park the clock at the end of the day so the next daily scan is forward.
    world.set_time(date, 23.9)


def _dnssec_snapshot(world: World, dataset: Dataset, date: datetime.date) -> None:
    """Validate the DNSSEC chain of every listed apex (Table 9)."""
    validator = ChainValidator(world.validator_source)
    now = timeline.epoch_seconds(date)
    snapshot = dataset.snapshots[date]
    https_names = set(snapshot.apex)
    for name_text in snapshot.ranked_names:
        profile = world.profile_by_name(name_text)
        if profile is None:
            continue
        zone = world.authoritative_zone_for(profile.apex)
        signed = bool(zone is not None and zone.signed)
        state = "unsigned"
        if signed:
            has_https = name_text in https_names
            rdtype = rdtypes.HTTPS if has_https else rdtypes.DNSKEY
            result = validator.validate(profile.apex, rdtype, now)
            state = result.state.value
        ns_names = ()
        obs = snapshot.apex.get(name_text)
        if obs is not None:
            ns_names = obs.ns_names
        dataset.dnssec_snapshot[name_text] = (
            name_text in https_names,
            signed,
            state,
            ns_names,
            profile.registrar,
            profile.provider_key,
        )
    dataset.dnssec_snapshot_date = date


def load_or_run_campaign(
    config: Optional[SimConfig] = None,
    day_step: int = 7,
    cache_dir: str = ".cache",
    verbose: bool = False,
    **kwargs,
) -> Dataset:
    """Return a cached dataset for (config, day_step) or run the campaign."""
    config = config if config is not None else SimConfig.from_env()
    # The cache key covers every config field so cohort-parameter changes
    # invalidate stale datasets.
    import dataclasses

    tag = str(sorted(kwargs.items())) + repr(dataclasses.astuple(config))
    path = cache_path(cache_dir, config.population, config.seed, day_step, tag=tag)
    try:
        return Dataset.load(path)
    except (OSError, EOFError, TypeError):
        pass
    world = World(config)
    progress = (lambda msg: print(msg, file=sys.stderr)) if verbose else None
    dataset = run_campaign(world, day_step=day_step, progress=progress, **kwargs)
    try:
        dataset.save(path)
    except OSError:  # pragma: no cover - cache dir not writable
        pass
    return dataset
