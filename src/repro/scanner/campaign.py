"""Campaign orchestration: run the full study against a world.

Replays the paper's measurement schedule (Table 1) chronologically:

* daily HTTPS/A/AAAA scans over the whole window (sampled every
  ``day_step`` days to keep runtime bounded — ratios are step-invariant);
* SOA/NS recorded from 2023-08-16, NS-IP + WHOIS from 2023-10-11;
* hourly ECH scans during 2023-07-21 – 2023-07-27;
* connectivity probes from 2024-01-24;
* the DNSSEC validation snapshot on (the first scan day at or after)
  2024-01-02.

Schedule construction (which study days and windows are active) is
separated from per-day scanning so the sequential runner here and the
sharded pipeline (:mod:`~repro.scanner.pipeline`) execute the exact same
plan.
"""

from __future__ import annotations

import dataclasses
import datetime
import sys
import warnings
from typing import AbstractSet, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..dnscore import rdtypes
from ..dnssec.validation import ChainValidator
from ..simnet import timeline
from ..simnet.config import SimConfig
from ..simnet.faults import FaultSchedule
from ..simnet.world import World
from .dataset import DailySnapshot, Dataset
from .engine import ScanEngine


@dataclasses.dataclass
class RunStats:
    """Transport/scheduler counters for one campaign run.

    Purely diagnostic (never part of dataset equality): how many DNS
    queries and TCP connects the run's world(s) carried, and — when the
    batched resolution core ran — how many upstream queries in-flight
    coalescing saved and how many duplicate jobs the batch memo
    answered. The fault-path counters (query timeouts, retries, and
    hosts found unreachable, summed over the world's recursive
    resolvers) surface what a chaos scenario — or organic simulated
    misbehaviour — cost the clients. The answer fast-path counters
    report what the layered caches saved: rendered-answer hits/misses/
    evictions (tier 1), wire-byte patch hits (tier 3), and zone builds
    vs zone-body reuses (tier 2). The pipeline sums per-worker stats
    into the merged run summary; sequential runs record their single
    world's counters.
    """

    dns_queries: int = 0
    tcp_connects: int = 0
    batch_jobs: int = 0
    coalesced_queries: int = 0
    attached_jobs: int = 0
    batch_memo_hits: int = 0
    timeouts: int = 0
    retries: int = 0
    unreachables: int = 0
    answer_hits: int = 0
    answer_misses: int = 0
    answer_evictions: int = 0
    wire_byte_hits: int = 0
    zone_builds: int = 0
    zone_body_reuses: int = 0

    def __add__(self, other: "RunStats") -> "RunStats":
        if not isinstance(other, RunStats):
            return NotImplemented
        return RunStats(
            *(a + b for a, b in zip(dataclasses.astuple(self), dataclasses.astuple(other)))
        )

    @classmethod
    def of_world(cls, world: World) -> "RunStats":
        """Counters accumulated by *world* since its construction."""
        stats = cls(
            dns_queries=world.network.dns_query_count,
            tcp_connects=world.network.tcp_connect_count,
        )
        for resolver in (world.google_resolver, world.cloudflare_resolver):
            stats.timeouts += resolver.timeouts
            stats.retries += resolver.retries
            stats.unreachables += resolver.unreachables
        batch = world.stub.batch
        if batch is not None:
            stats.batch_jobs = batch.jobs_run
            stats.coalesced_queries = batch.coalesced_queries
            stats.attached_jobs = batch.attached_jobs
            stats.batch_memo_hits = batch.memo_hits
        cache = world.answer_cache
        stats.answer_hits = cache.hits
        stats.answer_misses = cache.misses
        stats.answer_evictions = cache.evictions
        stats.wire_byte_hits = cache.wire_hits
        stats.zone_builds = world.zone_builds
        stats.zone_body_reuses = world.zone_body_reuses
        return stats

    def summary(self) -> str:
        text = (
            f"dns_queries={self.dns_queries} tcp_connects={self.tcp_connects}"
        )
        if self.batch_jobs:
            text += (
                f" batch_jobs={self.batch_jobs}"
                f" coalesced_queries={self.coalesced_queries}"
                f" attached_jobs={self.attached_jobs}"
                f" batch_memo_hits={self.batch_memo_hits}"
            )
        if self.timeouts or self.retries or self.unreachables:
            text += (
                f" timeouts={self.timeouts}"
                f" retries={self.retries}"
                f" unreachables={self.unreachables}"
            )
        if self.answer_hits or self.answer_misses:
            text += (
                f" answer_hits={self.answer_hits}"
                f" answer_misses={self.answer_misses}"
                f" answer_evictions={self.answer_evictions}"
                f" wire_byte_hits={self.wire_byte_hits}"
            )
        if self.zone_body_reuses:
            text += (
                f" zone_builds={self.zone_builds}"
                f" zone_body_reuses={self.zone_body_reuses}"
            )
        return text


@dataclasses.dataclass(frozen=True)
class CampaignSchedule:
    """The resolved plan of a campaign: which days to scan and which
    special windows (hourly ECH, DNSSEC snapshot) are active.

    Plain data (dates + ints only) so it can cross process boundaries to
    pipeline workers unchanged.
    """

    day_step: int
    scan_days: Tuple[datetime.date, ...]
    ech_days: Tuple[datetime.date, ...]
    ech_sample: int
    # Run the DNSSEC snapshot on the first scan day at or after this
    # date; None disables it.
    dnssec_threshold: Optional[datetime.date]


def build_schedule(
    day_step: int = 7,
    start: Optional[datetime.date] = None,
    end: Optional[datetime.date] = None,
    ech_sample: int = 200,
    with_ech_hourly: bool = True,
    with_dnssec_snapshot: bool = True,
) -> CampaignSchedule:
    """Resolve the study calendar into a concrete scan plan."""
    days = set(timeline.study_days(day_step, start, end))
    range_start = start or timeline.STUDY_START
    range_end = end or timeline.STUDY_END
    ech_days: Tuple[datetime.date, ...] = ()
    if with_ech_hourly:
        # The hourly ECH scan needs every day of its week (§4.4.2).
        window = timeline.study_days(
            1,
            max(range_start, timeline.ECH_HOURLY_SCAN_START),
            min(range_end, timeline.ECH_HOURLY_SCAN_END),
        )
        days.update(window)
        ech_days = tuple(sorted(window))
    dnssec_threshold = timeline.DNSSEC_SNAPSHOT if with_dnssec_snapshot else None
    if with_dnssec_snapshot and range_start <= timeline.DNSSEC_SNAPSHOT <= range_end:
        days.add(timeline.DNSSEC_SNAPSHOT)
    return CampaignSchedule(
        day_step=day_step,
        scan_days=tuple(sorted(days)),
        ech_days=ech_days,
        ech_sample=ech_sample,
        dnssec_threshold=dnssec_threshold,
    )


def slice_schedule(
    schedule: CampaignSchedule, days: Sequence[datetime.date]
) -> CampaignSchedule:
    """Restrict *schedule* to a subset of its scan days: the plan of one
    arriving day-slice increment.

    The DNSSEC-snapshot threshold is resolved to the concrete day the
    *full* schedule would run it on (the first scan day at or after the
    threshold), and only the slice owning that day keeps a threshold —
    otherwise every slice past the threshold would take its own snapshot
    on its own first day and the fold would diverge from the one-shot
    run. The hourly ECH window is likewise restricted to the slice's
    days (ECH target selection is per-day, so the window splits cleanly
    across slice boundaries).
    """
    wanted = set(days)
    unknown = wanted - set(schedule.scan_days)
    if unknown:
        raise ValueError(f"days not in the schedule: {sorted(unknown)}")
    resolved = None
    if schedule.dnssec_threshold is not None:
        resolved = next(
            (d for d in schedule.scan_days if d >= schedule.dnssec_threshold), None
        )
    return CampaignSchedule(
        day_step=schedule.day_step,
        scan_days=tuple(sorted(wanted)),
        ech_days=tuple(d for d in schedule.ech_days if d in wanted),
        ech_sample=schedule.ech_sample,
        dnssec_threshold=resolved if resolved in wanted else None,
    )


def run_campaign(
    world: World,
    day_step: int = 7,
    start: Optional[datetime.date] = None,
    end: Optional[datetime.date] = None,
    ech_sample: int = 200,
    with_ech_hourly: bool = True,
    with_dnssec_snapshot: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    batch: bool = False,
    scenario: Optional[FaultSchedule] = None,
    answer_cache: bool = True,
) -> Dataset:
    """Run the full measurement campaign and return the dataset."""
    schedule = build_schedule(
        day_step=day_step,
        start=start,
        end=end,
        ech_sample=ech_sample,
        with_ech_hourly=with_ech_hourly,
        with_dnssec_snapshot=with_dnssec_snapshot,
    )
    return run_scheduled(
        world, schedule, progress=progress, batch=batch, scenario=scenario,
        answer_cache=answer_cache,
    )


def run_scheduled(
    world: World,
    schedule: CampaignSchedule,
    progress: Optional[Callable[[str], None]] = None,
    names: Optional[AbstractSet[str]] = None,
    scan_nameservers: bool = True,
    batch: bool = False,
    seen_https: Optional[AbstractSet[str]] = None,
    scenario: Optional[FaultSchedule] = None,
    answer_cache: bool = True,
) -> Dataset:
    """Execute *schedule* against *world*, optionally restricted to a
    name-slice.

    With *names* given, only listed domains in that set are scanned each
    day (the snapshot still records the full ranked list); this is the
    unit of work a pipeline shard executes. Cross-day state (the
    ``seen_https`` deactivation watchlist) stays correct because a slice
    owns each of its domains' full history. ``scan_nameservers=False``
    skips the per-day NS-IP scan (the pipeline runs it post-merge so
    name servers shared across shards are scanned once, not N times).
    ``batch=True`` resolves each day's scans as interleaved batches
    through the batched resolution core — the dataset is value-equal to
    the serial path either way. *seen_https* carries the deactivation
    watchlist across day-slice increments: a continuation run over later
    days passes the apexes that already published HTTPS on earlier days
    (recoverable as the union of ``snapshot.apex`` keys), so the fold of
    day-slices watches exactly the domains a one-shot run would.
    *scenario* installs a :class:`~repro.simnet.faults.FaultSchedule` on
    the world for the duration of the run (cleared on exit, so shared
    registry worlds go back pristine); observations are value-equal
    across serial/batched/sharded execution of the same scenario.
    ``answer_cache`` arms the world's layered answer fast path for the
    duration of the run (disarmed on exit, like the scenario) — the
    dataset, per-server query logs, and transport counters are identical
    either way; only the walltime and the fast-path counters change.
    """
    config = world.config
    engine = ScanEngine(world)
    dataset = Dataset(config.population, config.seed, schedule.day_step)
    ech_days = set(schedule.ech_days)
    dnssec_done = False
    # Apexes that published HTTPS at least once (earlier increments' carry
    # plus this run's own days); copied so the caller's set is untouched.
    seen_https = set() if seen_https is None else set(seen_https)

    chaos = scenario is not None and bool(scenario)
    if chaos:
        world.install_faults(scenario)
    if answer_cache:
        world.set_answer_cache(True)
    try:
        for date in schedule.scan_days:
            world.set_time(date)
            snapshot = _scan_one_day(
                world, engine, date, seen_https, names=names,
                scan_nameservers=scan_nameservers, batch=batch,
            )
            dataset.add_snapshot(snapshot)
            if progress is not None:
                progress(
                    f"{date} list={snapshot.list_size} "
                    f"https={snapshot.apex_https_count}/{snapshot.www_https_count}"
                )

            if date in ech_days:
                _run_ech_hourly(
                    world, engine, dataset, date, schedule.ech_sample, batch=batch
                )

            if (
                schedule.dnssec_threshold is not None
                and not dnssec_done
                and date >= schedule.dnssec_threshold
            ):
                _dnssec_snapshot(world, dataset, date, names=names)
                dnssec_done = True

        dataset.run_stats = RunStats.of_world(world)
    finally:
        if answer_cache:
            # Counters survive disarming (of_world already read them);
            # pooled worlds must check back in with the fast path off.
            world.set_answer_cache(False)
        if chaos:
            world.clear_faults()
    return dataset


def _scan_one_day(
    world: World,
    engine: ScanEngine,
    date: datetime.date,
    seen_https: Optional[set] = None,
    names: Optional[AbstractSet[str]] = None,
    scan_nameservers: bool = True,
    batch: bool = False,
) -> DailySnapshot:
    """Scan one day; with *names*, only that slice of the ranked list.

    With ``batch=True`` all apex/www scans (and the watchlist NS
    follow-ups) resolve as interleaved batches up front; the bookkeeping
    loop below is shared by both paths, so the snapshot is value-equal
    either way (per-name observations are deterministic at a frozen
    clock)."""
    if seen_https is None:
        seen_https = set()
    ranked = tuple(world.tranco_list(date))
    targets = ranked if names is None else tuple(n for n in ranked if n in names)
    snapshot = DailySnapshot(date, ranked)
    in_ns_window = date >= timeline.SOA_NS_SCAN_START
    in_nsip_window = date >= timeline.NS_IP_WHOIS_SCAN_START
    in_connectivity_window = date >= timeline.CONNECTIVITY_SCAN_START

    profiles = [world.profile_by_name(name_text) for name_text in targets]
    apex_pre: Dict[str, object] = {}
    www_pre: Dict[str, object] = {}
    if batch:
        kept = [p for p in profiles if p is not None]
        scanned = engine.scan_names(
            [(p.apex, "apex") for p in kept] + [(p.www, "www") for p in kept]
        )
        apex_pre = {p.name: obs for p, obs in zip(kept, scanned[: len(kept)])}
        www_pre = {p.name: obs for p, obs in zip(kept, scanned[len(kept):])}
    watch_pending: list = []  # (apex Name, observation name) for batched NS follow-up

    for name_text, profile in zip(targets, profiles):
        if profile is None:  # pragma: no cover - registry is complete
            continue
        apex_obs = apex_pre[name_text] if batch else engine.scan_name(profile.apex, "apex")
        if not in_ns_window:
            # Table 1: SOA/NS collection starts 2023-08-16.
            apex_obs.ns_names = ()
            apex_obs.soa_serial = None
        if apex_obs.has_https:
            snapshot.apex_https_count += 1
            snapshot.apex[apex_obs.name] = apex_obs
            seen_https.add(apex_obs.name)
            if in_connectivity_window:
                probe = engine.probe_connectivity(profile, apex_obs, date)
                if probe is not None:
                    snapshot.connectivity.append(probe)
        elif in_ns_window and apex_obs.name in seen_https:
            # Deactivation follow-up (§4.2.3): track the NS records of
            # domains that used to publish HTTPS.
            if batch:
                watch_pending.append((profile.apex, apex_obs.name))
            else:
                ns_response = world.stub.query(profile.apex, rdtypes.NS)
                snapshot.watchlist_ns[apex_obs.name] = _ns_name_tuple(
                    ns_response, profile.apex
                )
        www_obs = www_pre[name_text] if batch else engine.scan_name(profile.www, "www")
        if not in_ns_window:
            www_obs.ns_names = ()
            www_obs.soa_serial = None
        if www_obs.has_https:
            snapshot.www_https_count += 1
            snapshot.www[www_obs.name] = www_obs

    if watch_pending:
        ns_responses = world.stub.query_batch(
            [(apex, rdtypes.NS) for apex, _ in watch_pending]
        )
        for (apex, obs_name), ns_response in zip(watch_pending, ns_responses):
            snapshot.watchlist_ns[obs_name] = _ns_name_tuple(ns_response, apex)

    if scan_nameservers and in_nsip_window:
        for hostname, observation in scan_nameserver_set(
            engine, sorted(ns_hostnames_of(snapshot)), batch=batch
        ):
            snapshot.ns_observations[hostname] = observation
    return snapshot


def scan_nameserver_set(
    engine: ScanEngine, hostnames, batch: bool = False
):
    """Resolve + WHOIS-attribute *hostnames* in order, serially or as one
    batch (shared by the per-day scan and the pipeline's post-merge NS
    stage so the two paths cannot drift apart)."""
    if batch:
        return list(zip(hostnames, engine.scan_nameservers(hostnames)))
    return [(hostname, engine.scan_nameserver(hostname)) for hostname in hostnames]


def scan_ech_hour(
    engine: ScanEngine, names, absolute_hour: int, batch: bool = False
):
    """One hour's ECH rescan over *names*, serially or as one batch
    (shared by the sequential runner and the pipeline's ECH stage)."""
    if batch:
        scanned = engine.scan_ech_many(names, absolute_hour)
    else:
        scanned = (engine.scan_ech(name, absolute_hour) for name in names)
    return [observation for observation in scanned if observation is not None]


def _ns_name_tuple(ns_response, apex) -> Tuple[str, ...]:
    """The sorted NS target names of *apex* in *ns_response* (() when the
    domain currently has no NS records at all)."""
    ns_rrset = ns_response.get_answer(apex, rdtypes.NS)
    if ns_rrset is None:
        return ()
    return tuple(sorted(rd.target.to_text(omit_final_dot=True) for rd in ns_rrset))


def ns_hostnames_of(snapshot: DailySnapshot) -> set:
    """Hostnames the day's NS-IP scan covers: every name server seen on
    an HTTPS-bearing apex/www observation that day (shared with the
    pipeline's post-merge NS stage)."""
    seen: set = set()
    for obs in snapshot.apex.values():
        seen.update(obs.ns_names)
    for obs in snapshot.www.values():
        seen.update(obs.ns_names)
    return seen


def _run_ech_hourly(
    world: World,
    engine: ScanEngine,
    dataset: Dataset,
    date: datetime.date,
    sample: int,
    batch: bool = False,
) -> None:
    """Hourly rescans of ECH-bearing domains for *date* (§4.4.2).

    Called once per day within the Jul 21–27 window; hours run forward so
    the world clock stays monotonic with the daily scans around it.
    """
    today = dataset.snapshots[date]
    targets = ech_targets(today, sample)
    if not targets:
        return
    names = [world.profile_by_name(t).apex for t in targets]
    for hour in range(24):
        world.set_time(date, hour)
        absolute_hour = timeline.day_index(date) * 24 + hour
        dataset.ech_observations.extend(
            scan_ech_hour(engine, names, absolute_hour, batch=batch)
        )
    # Park the clock at the end of the day so the next daily scan is forward.
    world.set_time(date, 23.9)


def ech_targets(snapshot: DailySnapshot, sample: int):
    """The day's hourly-rescan targets: the first *sample* ECH-bearing
    apexes in name order (shared with the pipeline's ECH stage)."""
    return [name for name, obs in sorted(snapshot.apex.items()) if obs.has_ech][:sample]


def _dnssec_snapshot(
    world: World,
    dataset: Dataset,
    date: datetime.date,
    names: Optional[AbstractSet[str]] = None,
) -> None:
    """Validate the DNSSEC chain of every listed apex (Table 9)."""
    validator = ChainValidator(world.validator_source)
    now = timeline.epoch_seconds(date)
    snapshot = dataset.snapshots[date]
    https_names = set(snapshot.apex)
    for name_text in snapshot.ranked_names:
        if names is not None and name_text not in names:
            continue
        profile = world.profile_by_name(name_text)
        if profile is None:
            continue
        zone = world.authoritative_zone_for(profile.apex)
        signed = bool(zone is not None and zone.signed)
        state = "unsigned"
        if signed:
            has_https = name_text in https_names
            rdtype = rdtypes.HTTPS if has_https else rdtypes.DNSKEY
            result = validator.validate(profile.apex, rdtype, now)
            state = result.state.value
        ns_names = ()
        obs = snapshot.apex.get(name_text)
        if obs is not None:
            ns_names = obs.ns_names
        dataset.dnssec_snapshot[name_text] = (
            name_text in https_names,
            signed,
            state,
            ns_names,
            profile.registrar,
            profile.provider_key,
        )
    dataset.dnssec_snapshot_date = date


def canonical_cache_tag(kwargs: Mapping[str, object]) -> str:
    """A stable cache-key fragment for campaign kwargs.

    Accepts primitives (None/bool/int/float/str) and ISO-datable values
    only; anything else (callables, collections, …) has no stable repr
    across runs and is rejected so the cache can never silently key on
    an unstable string.
    """
    parts = []
    for key in sorted(kwargs):
        value = kwargs[key]
        if value is None or isinstance(value, bool):
            text = f"{type(value).__name__}:{value}"
        elif isinstance(value, (int, float, str)):
            text = f"{type(value).__name__}:{value!r}"
        elif isinstance(value, (datetime.date, datetime.datetime)):
            text = f"date:{value.isoformat()}"
        else:
            raise TypeError(
                f"campaign kwarg {key}={value!r} is not cacheable "
                "(primitives and dates only)"
            )
        parts.append(f"{key}={text}")
    return "|".join(parts)


def load_or_run_campaign(
    config: Optional[SimConfig] = None,
    day_step: int = 7,
    cache_dir: str = ".cache",
    verbose: bool = False,
    workers: int = 1,
    batch: bool = False,
    snapshot_dir: Optional[str] = None,
    continuous: bool = False,
    checkpoint_dir: Optional[str] = None,
    days_per_increment: int = 7,
    max_increments: Optional[int] = None,
    **kwargs,
) -> Dataset:
    """Deprecated: build a :class:`~repro.study.Study` instead.

    Thin shim over the unified Study API — the schedule kwargs become a
    :class:`~repro.study.StudySpec`, the execution knobs an
    :class:`~repro.study.ExecutionPlan`, and the dataset comes from
    ``Study.run()``. Cache paths are byte-identical to the pre-Study
    keys (one-shot and continuous), so existing ``.cache`` entries keep
    hitting. Unlike the old surface, a misspelled schedule kwarg now
    raises ``TypeError`` instead of being silently cache-keyed.
    """
    # Deliberate upward import: this deprecated shim *wraps* the Study
    # facade that replaced it (PR 5), so it must reach one layer up. The
    # import is function-local (no import-time cycle) and dies with the
    # shim; new scanner code must not import repro.study.
    from ..study import ExecutionPlan, Study, StudySpec  # codelint: disable=LAYER01

    warnings.warn(
        "load_or_run_campaign is deprecated; build a repro.study.Study "
        "from a StudySpec and an ExecutionPlan instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = StudySpec(config, day_step=day_step, **kwargs)
    plan = ExecutionPlan(
        workers=workers,
        batch=batch,
        snapshot_dir=snapshot_dir,
        cache_dir=cache_dir,
        continuous=continuous,
        checkpoint_dir=checkpoint_dir,
        days_per_increment=days_per_increment,
        max_increments=max_increments,
    )
    progress = (lambda msg: print(msg, file=sys.stderr)) if verbose else None
    with Study(spec, plan) as study:
        return study.run(progress=progress)
