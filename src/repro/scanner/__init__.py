"""The measurement framework: scan engine, datasets, campaign runner."""

from .campaign import load_or_run_campaign, run_campaign
from .dataset import DailySnapshot, Dataset, cache_path
from .incremental import (
    DatasetMergeError,
    continuation_window,
    coverage_gaps,
    merge_datasets,
)
from .engine import ScanEngine, parse_https_rdata
from .records import (
    ConnectivityProbe,
    DomainObservation,
    EchObservation,
    HttpsRecordView,
    NameServerObservation,
)

__all__ = [
    "load_or_run_campaign",
    "run_campaign",
    "DatasetMergeError",
    "continuation_window",
    "coverage_gaps",
    "merge_datasets",
    "DailySnapshot",
    "Dataset",
    "cache_path",
    "ScanEngine",
    "parse_https_rdata",
    "ConnectivityProbe",
    "DomainObservation",
    "EchObservation",
    "HttpsRecordView",
    "NameServerObservation",
]
