"""The measurement framework: scan engine, datasets, campaign runner,
the sharded parallel pipeline, and the continuous-collection driver."""

from .campaign import (
    CampaignSchedule,
    RunStats,
    build_schedule,
    canonical_cache_tag,
    load_or_run_campaign,
    run_campaign,
    run_scheduled,
    slice_schedule,
)
from .collector import (
    CheckpointError,
    CollectionInterrupted,
    ContinuousCollector,
    Increment,
    load_checkpoint_dataset,
)
from .dataset import DailySnapshot, Dataset, cache_path, checkpoint_dir_path
from .incremental import (
    DatasetMergeError,
    continuation_window,
    coverage_gaps,
    fold_slice,
    merge_datasets,
)
from .pipeline import ParallelCampaignRunner, ShardPlan, merge_shard_datasets
from .engine import ScanEngine, parse_https_rdata
from .records import (
    ConnectivityProbe,
    DomainObservation,
    EchObservation,
    HttpsRecordView,
    NameServerObservation,
)

__all__ = [
    "CampaignSchedule",
    "RunStats",
    "build_schedule",
    "canonical_cache_tag",
    "load_or_run_campaign",
    "run_campaign",
    "run_scheduled",
    "slice_schedule",
    "CheckpointError",
    "CollectionInterrupted",
    "ContinuousCollector",
    "Increment",
    "load_checkpoint_dataset",
    "ParallelCampaignRunner",
    "ShardPlan",
    "merge_shard_datasets",
    "DatasetMergeError",
    "continuation_window",
    "coverage_gaps",
    "fold_slice",
    "merge_datasets",
    "DailySnapshot",
    "Dataset",
    "cache_path",
    "checkpoint_dir_path",
    "ScanEngine",
    "parse_https_rdata",
    "ConnectivityProbe",
    "DomainObservation",
    "EchObservation",
    "HttpsRecordView",
    "NameServerObservation",
]
