"""The measurement framework: scan engine, datasets, campaign runner,
and the sharded parallel pipeline."""

from .campaign import (
    CampaignSchedule,
    RunStats,
    build_schedule,
    canonical_cache_tag,
    load_or_run_campaign,
    run_campaign,
    run_scheduled,
)
from .dataset import DailySnapshot, Dataset, cache_path
from .incremental import (
    DatasetMergeError,
    continuation_window,
    coverage_gaps,
    merge_datasets,
)
from .pipeline import ParallelCampaignRunner, ShardPlan, merge_shard_datasets
from .engine import ScanEngine, parse_https_rdata
from .records import (
    ConnectivityProbe,
    DomainObservation,
    EchObservation,
    HttpsRecordView,
    NameServerObservation,
)

__all__ = [
    "CampaignSchedule",
    "RunStats",
    "build_schedule",
    "canonical_cache_tag",
    "load_or_run_campaign",
    "run_campaign",
    "run_scheduled",
    "ParallelCampaignRunner",
    "ShardPlan",
    "merge_shard_datasets",
    "DatasetMergeError",
    "continuation_window",
    "coverage_gaps",
    "merge_datasets",
    "DailySnapshot",
    "Dataset",
    "cache_path",
    "ScanEngine",
    "parse_https_rdata",
    "ConnectivityProbe",
    "DomainObservation",
    "EchObservation",
    "HttpsRecordView",
    "NameServerObservation",
]
