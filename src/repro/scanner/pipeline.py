"""Sharded scan pipeline: the campaign decomposed across workers.

The sequential :func:`~repro.scanner.campaign.run_campaign` walks every
ranked name through one :class:`~repro.simnet.world.World`. Worlds are
deterministic functions of (:class:`~repro.simnet.config.SimConfig`,
seed), so the campaign parallelises cleanly: partition the domain space
into N shards, let each worker rebuild its own world and scan only its
slice of every day's ranked list, then merge the per-shard snapshots.

Sharding is by *domain*, never by day: cross-day state (the
``seen_https`` set driving the deactivation watchlist) follows a domain
through the whole study, so each worker must own its domains' full
history. Two properties make the merged dataset *equal* to (not merely
statistically like) the sequential one:

* every observation is deterministic per (name, day/hour) — resolver
  caches expire well within the scan cadence (``default_ttl`` 300 s vs
  daily/hourly steps), so a fresh world answers exactly like a
  long-running one;
* merge order is canonical — per-day dicts are rebuilt in ranked-list
  order and hourly ECH rows in (hour, name) order, which is precisely
  the order a single sequential pass emits them in.

The hourly ECH rescan (§4.4.2) needs the *global* day snapshot to pick
its targets (first ``ech_sample`` ECH-bearing apexes by name), so it
runs as a second stage after the daily-scan merge, itself sharded by the
same plan.

``batch=True`` makes every worker resolve its slice through the batched
resolution core (:class:`~repro.resolver.batch.BatchResolver`) instead
of one blocking resolve at a time — batching inside a shard multiplies
with process-level sharding, and the merged dataset stays equal either
way. Worker transport counters (``Network.dns_query_count`` etc.) are
summed across all stages into ``run_stats`` on the merged dataset.

Worker warm-up goes through the world snapshot cache
(:mod:`~repro.simnet.snapshot`): every task checks a world out of the
in-process registry and checks it back in (reset) when done, so
thread-mode tasks and reused pool processes share built worlds instead
of reconstructing them. With ``snapshot_dir`` set, the parent
additionally materialises an on-disk snapshot *before* spawning process
workers, so each worker process deserializes the fully signed world
(~an order of magnitude cheaper than building it) instead of re-running
construction and zone signing. Both paths are value-equality-preserving:
a loaded or reused world answers bit-for-bit like a fresh one.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import datetime
import hashlib
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..simnet import timeline
from ..simnet.config import SimConfig
from ..simnet.faults import FaultSchedule
from ..simnet.snapshot import checkin_world, checkout_world, ensure_world_snapshot
from ..simnet.world import World
from .campaign import (
    CampaignSchedule,
    RunStats,
    build_schedule,
    ech_targets,
    ns_hostnames_of,
    run_scheduled,
    scan_ech_hour,
    scan_nameserver_set,
)
from .dataset import DailySnapshot, Dataset
from .engine import ScanEngine
from .incremental import DatasetMergeError
from .records import EchObservation, NameServerObservation


class ShardPlan:
    """Deterministic partition of the domain space into N shards.

    Assignment hashes the (seed, name) pair, so it is stable across
    processes, runs, and daily Tranco churn — a domain always lands in
    the same shard no matter which day's list it appears on.
    """

    def __init__(self, shards: int, seed: str = ""):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.seed = seed

    def shard_of(self, name: str) -> int:
        if self.shards == 1:
            return 0
        digest = hashlib.sha256(f"{self.seed}|{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.shards

    def slice_of(self, names: Iterable[str], index: int) -> List[str]:
        """The sub-list of *names* owned by shard *index* (order kept)."""
        return [name for name in names if self.shard_of(name) == index]

    def partition(self, names: Iterable[str]) -> List[List[str]]:
        """Split *names* into per-shard lists (order kept within each)."""
        parts: List[List[str]] = [[] for _ in range(self.shards)]
        for name in names:
            parts[self.shard_of(name)].append(name)
        return parts


# ---------------------------------------------------------------------------
# worker entry points (module-level so process pools can pickle them)
# ---------------------------------------------------------------------------


def _scan_shard(
    config: SimConfig, schedule: CampaignSchedule, shards: int, index: int,
    batch: bool = False, snapshot_dir: Optional[str] = None,
    seen_https: FrozenSet[str] = frozenset(),
    scenario: Optional[FaultSchedule] = None,
    answer_cache: bool = True,
) -> Dataset:
    """Stage 1: run the daily-scan schedule over one domain shard.

    *seen_https* is the deactivation-watchlist carry-in for day-slice
    increments (apexes that already published HTTPS on earlier, already
    folded days); a whole-window run passes the empty set."""
    world = checkout_world(config, snapshot_dir)
    try:
        plan = ShardPlan(shards, config.seed)
        names = {p.name for p in world.profiles if plan.shard_of(p.name) == index}
        # Hourly ECH and the NS-IP scan run post-merge: the former needs the
        # merged day snapshot to pick targets, and popular name servers
        # appear in every shard, so scanning them here would repeat the work
        # N times.
        quiet = dataclasses.replace(schedule, ech_days=())
        return run_scheduled(
            world, quiet, names=names, scan_nameservers=False, batch=batch,
            seen_https=seen_https, scenario=scenario, answer_cache=answer_cache,
        )
    finally:
        checkin_world(world)


def _scan_ns_shard(
    config: SimConfig,
    day_hostnames: Tuple[Tuple[datetime.date, Tuple[str, ...]], ...],
    batch: bool = False,
    snapshot_dir: Optional[str] = None,
    scenario: Optional[FaultSchedule] = None,
    answer_cache: bool = True,
) -> Tuple[List[Tuple[datetime.date, str, NameServerObservation]], RunStats]:
    """Post-merge NS stage: resolve + WHOIS-attribute name servers."""
    world = checkout_world(config, snapshot_dir)
    try:
        world.install_faults(scenario)
        # checkin_world resets the world, which disarms the fast path.
        world.set_answer_cache(answer_cache)
        engine = ScanEngine(world)
        results: List[Tuple[datetime.date, str, NameServerObservation]] = []
        for date, hostnames in sorted(day_hostnames):
            world.set_time(date)
            for hostname, observation in scan_nameserver_set(
                engine, hostnames, batch=batch
            ):
                results.append((date, hostname, observation))
        return results, RunStats.of_world(world)
    finally:
        checkin_world(world)


def _scan_ech_shard(
    config: SimConfig,
    day_targets: Tuple[Tuple[datetime.date, Tuple[str, ...]], ...],
    batch: bool = False,
    snapshot_dir: Optional[str] = None,
    scenario: Optional[FaultSchedule] = None,
    answer_cache: bool = True,
) -> Tuple[List[EchObservation], RunStats]:
    """Stage 2: hourly ECH rescans for this shard's targets per day."""
    world = checkout_world(config, snapshot_dir)
    try:
        world.install_faults(scenario)
        # checkin_world resets the world, which disarms the fast path.
        world.set_answer_cache(answer_cache)
        engine = ScanEngine(world)
        observations: List[EchObservation] = []
        for date, targets in sorted(day_targets):
            names = [world.profile_by_name(t).apex for t in targets]
            for hour in range(24):
                world.set_time(date, hour)
                absolute_hour = timeline.day_index(date) * 24 + hour
                observations.extend(
                    scan_ech_hour(engine, names, absolute_hour, batch=batch)
                )
        return observations, RunStats.of_world(world)
    finally:
        checkin_world(world)


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------


def merge_shard_datasets(parts: Sequence[Dataset]) -> Dataset:
    """Merge per-shard datasets covering the *same days* over disjoint
    name-slices (the domain-sharded counterpart of
    :func:`~repro.scanner.incremental.merge_datasets`, which merges
    disjoint day-slices of the full name space)."""
    if not parts:
        raise DatasetMergeError("nothing to merge")
    first = parts[0]
    for part in parts[1:]:
        if (part.population, part.seed) != (first.population, first.seed):
            raise DatasetMergeError(
                "cannot merge shards from different worlds: "
                f"{(part.population, part.seed)} vs {(first.population, first.seed)}"
            )
        if part.days() != first.days():
            raise DatasetMergeError("shard datasets cover different scan days")
    merged = Dataset(first.population, first.seed, first.day_step)
    for day in first.days():
        try:
            merged.add_snapshot(
                DailySnapshot.merge_shards([part.snapshots[day] for part in parts])
            )
        except ValueError as exc:
            raise DatasetMergeError(str(exc)) from exc
    merged.ech_observations = _canonical_ech_order(
        observation for part in parts for observation in part.ech_observations
    )
    # Worker transport counters die with the worker processes unless the
    # merge carries them over; sum whatever the parts recorded.
    part_stats = [s for s in (getattr(p, "run_stats", None) for p in parts) if s is not None]
    if part_stats:
        merged.run_stats = sum(part_stats[1:], part_stats[0])
    dates = {p.dnssec_snapshot_date for p in parts if p.dnssec_snapshot_date is not None}
    if len(dates) > 1:
        raise DatasetMergeError(f"shards disagree on the DNSSEC snapshot day: {dates}")
    if dates:
        date = dates.pop()
        combined: Dict[str, tuple] = {}
        for part in parts:
            combined.update(part.dnssec_snapshot)
        ranked = (
            merged.snapshots[date].ranked_names
            if date in merged.snapshots
            else tuple(sorted(combined))
        )
        merged.dnssec_snapshot = {n: combined[n] for n in ranked if n in combined}
        merged.dnssec_snapshot_date = date
    return merged


def _canonical_ech_order(observations: Iterable[EchObservation]) -> List[EchObservation]:
    """Sort hourly ECH rows the way a sequential pass emits them: days
    and hours ascending, targets in name order within each hour."""
    return sorted(observations, key=lambda o: (o.hour, o.name))


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


class ParallelCampaignRunner:
    """Run the measurement campaign sharded across worker processes.

    Produces a :class:`Dataset` equal to ``run_campaign`` on the same
    config (see module docstring for why). ``executor='thread'`` swaps
    in a thread pool — no speedup under the GIL, but handy for tests and
    debugging since it avoids pickling through process boundaries;
    thread-mode tasks reuse pooled worlds from the in-process snapshot
    registry instead of each building their own. ``snapshot_dir`` adds
    the on-disk world snapshot so process workers deserialize their
    world instead of rebuilding it.

    The runner is reusable across schedules: its worker pool is created
    lazily and persists between calls, so consecutive increments of a
    continuous collection (:mod:`~repro.scanner.collector`) reuse warm
    worker processes — whose per-process :class:`WorldRegistry` pools
    keep their deserialized worlds — instead of paying pool spin-up and
    world warm-up per increment. ``run()`` keeps its one-shot contract
    (the pool is torn down afterwards) unless ``keep_alive=True``;
    callers driving increments through :meth:`run_shard` /
    :meth:`finish_slice` / :meth:`run_schedule` own the lifetime and
    call :meth:`close` (or use the runner as a context manager).
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        workers: int = 2,
        day_step: int = 7,
        start: Optional[datetime.date] = None,
        end: Optional[datetime.date] = None,
        ech_sample: int = 200,
        with_ech_hourly: bool = True,
        with_dnssec_snapshot: bool = True,
        executor: str = "process",
        batch: bool = False,
        snapshot_dir: Optional[str] = None,
        schedule: Optional[CampaignSchedule] = None,
        keep_alive: bool = False,
        scenario: Optional[FaultSchedule] = None,
        answer_cache: bool = True,
    ):
        if executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {executor!r}")
        self.config = config if config is not None else SimConfig()
        self.workers = max(1, int(workers))
        self.executor = executor
        self.batch = bool(batch)
        self.snapshot_dir = snapshot_dir
        self.keep_alive = bool(keep_alive)
        self.scenario = scenario
        self.answer_cache = bool(answer_cache)
        self.schedule = schedule if schedule is not None else build_schedule(
            day_step=day_step,
            start=start,
            end=end,
            ech_sample=ech_sample,
            with_ech_hourly=with_ech_hourly,
            with_dnssec_snapshot=with_dnssec_snapshot,
        )
        self.plan = ShardPlan(self.workers, self.config.seed)
        # Filled by run()/run_schedule(): transport/scheduler counters
        # summed over every worker in every stage (they are otherwise
        # lost at worker exit).
        self.run_stats: Optional[RunStats] = None
        self._pool_instance = None
        self._snapshot_ready = False

    # -- public API --------------------------------------------------------

    def run(self, progress: Optional[Callable[[str], None]] = None) -> Dataset:
        try:
            return self.run_schedule(self.schedule, progress=progress)
        finally:
            if not self.keep_alive:
                self.close()

    def run_schedule(
        self,
        schedule: CampaignSchedule,
        progress: Optional[Callable[[str], None]] = None,
        seen_https: FrozenSet[str] = frozenset(),
    ) -> Dataset:
        """Execute an arbitrary (sub-)schedule through the sharded
        three-stage machinery and return the merged dataset.

        The worker pool stays warm afterwards — this is the increment
        executor the continuous collector loops over (``run()`` wraps it
        for the one-shot whole-campaign case)."""
        if self.workers == 1:
            if self.snapshot_dir is not None:
                world = checkout_world(self.config, self.snapshot_dir)
                try:
                    dataset = run_scheduled(
                        world, schedule, progress=progress, batch=self.batch,
                        seen_https=seen_https, scenario=self.scenario,
                        answer_cache=self.answer_cache,
                    )
                finally:
                    checkin_world(world)
            else:
                # No reuse requested: a throwaway world, not a pooled one
                # (pooling would pin it for the process lifetime).
                dataset = run_scheduled(
                    World(self.config), schedule,
                    progress=progress, batch=self.batch, seen_https=seen_https,
                    scenario=self.scenario, answer_cache=self.answer_cache,
                )
            self.run_stats = dataset.run_stats
            return dataset
        self.prepare(progress)
        shards = self._execute(
            [
                (
                    _scan_shard,
                    (
                        self.config, schedule, self.workers, index,
                        self.batch, self.snapshot_dir, seen_https, self.scenario,
                        self.answer_cache,
                    ),
                )
                for index in range(self.workers)
            ],
            progress,
            "daily scans",
        )
        dataset = merge_shard_datasets(shards)
        dataset = self.finish_slice(dataset, schedule, progress=progress)
        self.run_stats = dataset.run_stats
        if progress is not None:
            progress(f"run summary: {dataset.run_stats.summary()}")
        return dataset

    def prepare(self, progress: Optional[Callable[[str], None]] = None) -> None:
        """One-time warm-up for multi-worker execution: materialise the
        on-disk world snapshot so workers deserialize instead of build.

        Build (and sign) the world exactly once, up front: process
        workers deserialize the snapshot instead of repeating
        construction, and concurrent thread workers load it too (the
        registry pool only has the parent's single world, so without the
        file the rest would each build their own)."""
        if self.workers == 1 or self.snapshot_dir is None or self._snapshot_ready:
            return
        ensure_world_snapshot(self.config, self.snapshot_dir)
        self._snapshot_ready = True
        if progress is not None:
            progress(f"world snapshot ready under {self.snapshot_dir}")

    def run_shard(
        self,
        schedule: CampaignSchedule,
        index: int,
        seen_https: FrozenSet[str] = frozenset(),
    ) -> Dataset:
        """Stage 1 for a single (schedule × shard) increment: the daily
        scans of shard *index* over *schedule*'s days, ECH/NS stages
        deferred to :meth:`finish_slice`."""
        [(_, part)] = self.run_shards(schedule, (index,), seen_https=seen_https)
        return part

    def run_shards(
        self,
        schedule: CampaignSchedule,
        indices: Sequence[int],
        seen_https: FrozenSet[str] = frozenset(),
    ) -> Iterator[Tuple[int, Dataset]]:
        """Stage 1 for several shards of *schedule* at once, saturating
        the persistent pool (serial submission would leave N-1 workers
        idle through the dominant stage). Yields (index, part) pairs in
        completion order, so callers that checkpoint per increment can
        journal each part the moment it lands."""
        self.prepare()
        seen = frozenset(seen_https)
        args = {
            index: (
                self.config, schedule, self.workers, index,
                self.batch, self.snapshot_dir, seen, self.scenario,
                self.answer_cache,
            )
            for index in indices
        }
        if self.workers == 1:
            for index, task in args.items():
                yield index, _scan_shard(*task)
            return
        futures = {
            self._pool().submit(_scan_shard, *task): index
            for index, task in args.items()
        }
        for future in concurrent.futures.as_completed(futures):
            yield futures[future], future.result()

    def finish_slice(
        self,
        dataset: Dataset,
        schedule: CampaignSchedule,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dataset:
        """Post-merge stages for one day-slice: the NS-IP scan and the
        hourly ECH rescan, both of which need the slice's *merged* day
        snapshots (target selection is global per day). Accumulates the
        stage workers' transport counters onto ``dataset.run_stats``."""
        stats = getattr(dataset, "run_stats", None) or RunStats()
        stats = stats + self._run_ns_stage(dataset, schedule, progress)
        if schedule.ech_days:
            stats = stats + self._run_ech_stage(dataset, schedule, progress)
        dataset.run_stats = stats
        return dataset

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool_instance is not None:
            self._pool_instance.shutdown()
            self._pool_instance = None

    def __enter__(self) -> "ParallelCampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _pool(self):
        """The persistent worker pool, created on first use."""
        if self._pool_instance is None:
            if self.executor == "thread":
                self._pool_instance = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers
                )
            else:
                self._pool_instance = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers
                )
        return self._pool_instance

    def _execute(self, tasks, progress, label: str) -> list:
        """Run (fn, args) *tasks* — on the persistent pool, or inline
        when there is nothing to parallelise over (one worker)."""
        if self.workers == 1:
            return [fn(*args) for fn, args in tasks]
        futures = [self._pool().submit(fn, *args) for fn, args in tasks]
        if progress is not None:
            done = 0
            for _ in concurrent.futures.as_completed(futures):
                done += 1
                progress(f"{label}: shard {done}/{len(futures)} complete")
        return [future.result() for future in futures]

    def _run_ns_stage(
        self, dataset: Dataset, schedule: CampaignSchedule, progress
    ) -> RunStats:
        """Scan each NS-IP-window day's name servers once over the merged
        snapshots (stage 1 skips them — popular name servers appear in
        every shard and would be scanned N times), sharded by hostname."""
        per_shard: List[Dict[datetime.date, List[str]]] = [
            {} for _ in range(self.workers)
        ]
        for date in schedule.scan_days:
            if date < timeline.NS_IP_WHOIS_SCAN_START:
                continue
            snapshot = dataset.snapshots.get(date)
            if snapshot is None:
                continue
            for hostname in sorted(ns_hostnames_of(snapshot)):
                per_shard[self.plan.shard_of(hostname)].setdefault(date, []).append(
                    hostname
                )
        tasks = []
        for day_hostnames in per_shard:
            if not day_hostnames:
                continue
            frozen = tuple(
                (date, tuple(hostnames))
                for date, hostnames in sorted(day_hostnames.items())
            )
            tasks.append(
                (
                    _scan_ns_shard,
                    (
                        self.config, frozen, self.batch, self.snapshot_dir,
                        self.scenario, self.answer_cache,
                    ),
                )
            )
        if not tasks:
            return RunStats()
        results = self._execute(tasks, progress, "NS-IP scans")
        by_day: Dict[datetime.date, Dict[str, NameServerObservation]] = {}
        stage_stats = RunStats()
        for result, stats in results:
            stage_stats = stage_stats + stats
            for date, hostname, observation in result:
                by_day.setdefault(date, {})[hostname] = observation
        for date, observations in by_day.items():
            dataset.snapshots[date].ns_observations = {
                hostname: observations[hostname] for hostname in sorted(observations)
            }
        return stage_stats

    def _run_ech_stage(
        self, dataset: Dataset, schedule: CampaignSchedule, progress
    ) -> RunStats:
        """Select hourly-rescan targets from the merged day snapshots
        (the same global rule the sequential runner applies), shard them
        by owner, and scan."""
        per_shard: List[Dict[datetime.date, List[str]]] = [
            {} for _ in range(self.workers)
        ]
        for date in schedule.ech_days:
            snapshot = dataset.snapshots.get(date)
            if snapshot is None:
                continue
            for name in ech_targets(snapshot, schedule.ech_sample):
                per_shard[self.plan.shard_of(name)].setdefault(date, []).append(name)
        tasks = []
        for day_targets in per_shard:
            if not day_targets:
                continue
            frozen = tuple(
                (date, tuple(names)) for date, names in sorted(day_targets.items())
            )
            tasks.append(
                (
                    _scan_ech_shard,
                    (
                        self.config, frozen, self.batch, self.snapshot_dir,
                        self.scenario, self.answer_cache,
                    ),
                )
            )
        if not tasks:
            return RunStats()
        results = self._execute(tasks, progress, "hourly ECH")
        stage_stats = RunStats()
        for _, stats in results:
            stage_stats = stage_stats + stats
        new_rows = _canonical_ech_order(
            observation for result, _ in results for observation in result
        )
        dataset.ech_observations = new_rows
        return stage_stats
