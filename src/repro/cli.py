"""Command-line tools.

* ``repro-dig``    — dig-style queries against a simulated world
* ``repro-scan``   — run a scan campaign and print/export the analyses;
  subcommands ``lint-code`` (the :mod:`repro.devtools.codelint` AST
  invariant linter) and ``lint-zone`` (the §7 zone linter against
  simulated zones)
* ``repro-tables`` — regenerate the browser support tables (6 and 7)

All are thin wrappers over the library; they exist so the reproduction
can be driven without writing Python (mirroring zdns/dig workflows).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .dnscore import Name, rdtypes
from .simnet import SimConfig, World, timeline


def _parse_date(text: str):
    import datetime

    return datetime.date.fromisoformat(text)


# ---------------------------------------------------------------------------
# repro-dig
# ---------------------------------------------------------------------------

def dig_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dig",
        description="Query a name in the simulated Internet, dig-style.",
    )
    parser.add_argument("qname", help="domain name to query")
    parser.add_argument("qtype", nargs="?", default="HTTPS", help="record type (default HTTPS)")
    parser.add_argument("--date", type=_parse_date, default=timeline.STUDY_START,
                        help="simulation date (YYYY-MM-DD)")
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--resolver", choices=("google", "cloudflare"), default="google")
    args = parser.parse_args(argv)

    world = World(SimConfig(population=args.population))
    world.set_time(args.date)
    resolver = world.google_resolver if args.resolver == "google" else world.cloudflare_resolver
    try:
        rdtype = rdtypes.text_to_type(args.qtype)
    except ValueError as exc:
        parser.error(str(exc))
    name = Name.from_text(args.qname if args.qname.endswith(".") else args.qname + ".")
    response = resolver.resolve(name, rdtype)

    flags = []
    for label, value in (
        ("qr", response.is_response), ("aa", response.authoritative),
        ("rd", response.recursion_desired), ("ra", response.recursion_available),
        ("ad", response.authenticated_data),
    ):
        if value:
            flags.append(label)
    print(f";; ->>HEADER<<- rcode: {rdtypes.rcode_to_text(response.rcode)}, "
          f"flags: {' '.join(flags)}; date: {args.date}")
    print(f";; QUESTION\n;{name.to_text()} IN {rdtypes.type_to_text(rdtype)}")
    if response.answers:
        print(";; ANSWER")
        for rrset in response.answers:
            print(rrset.to_text())
    return 0 if response.rcode == rdtypes.NOERROR else 1


# ---------------------------------------------------------------------------
# repro-scan
# ---------------------------------------------------------------------------

def scan_main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Lint subcommands ride on repro-scan (`repro-scan lint-code src/`,
    # `repro-scan lint-zone shop.example`) so the operational surface
    # stays one executable; everything else is the campaign runner.
    if argv[:1] == ["lint-code"]:
        return lint_code_main(argv[1:])
    if argv[:1] == ["lint-zone"]:
        return lint_zone_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-scan",
        description="Run the measurement campaign and print headline analyses "
                    "(subcommands: lint-code, lint-zone).",
    )
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--day-step", type=int, default=28)
    parser.add_argument("--ech-sample", type=int, default=60)
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the campaign across N worker processes "
                             "(same dataset, less wall-clock on multi-core)")
    parser.add_argument("--batch", action=argparse.BooleanOptionalAction, default=False,
                        help="resolve each day's scan list as one interleaved "
                             "batch with in-flight query coalescing "
                             "(--no-batch for one blocking resolve at a time; "
                             "same dataset either way)")
    parser.add_argument("--answer-cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="arm the layered answer fast path: rendered-answer "
                             "+ zone-body + wire-byte caches on the simulated "
                             "authoritative side (--no-answer-cache to "
                             "synthesize every reply from scratch; same "
                             "dataset either way)")
    parser.add_argument("--snapshot-dir", metavar="DIR", default=None,
                        help="directory for the world snapshot cache, so "
                             "pipeline workers deserialize a pre-built signed "
                             "world instead of reconstructing it "
                             "(default: <cache-dir>/worlds)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="disable the world snapshot cache (every worker "
                             "rebuilds its world from scratch)")
    parser.add_argument("--continuous", action="store_true",
                        help="collect incrementally: day-slice × domain-shard "
                             "increments folded into a growing longitudinal "
                             "dataset with an on-disk checkpoint, so an "
                             "interrupted run resumes instead of restarting "
                             "(same dataset as a one-shot run)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="checkpoint directory for --continuous (default: "
                             "a key-scoped directory under "
                             "<cache-dir>/checkpoints)")
    parser.add_argument("--increment-days", type=int, default=None, metavar="N",
                        help="scan days per day-slice increment in "
                             "--continuous mode (default 7)")
    parser.add_argument("--max-increments", type=int, default=None, metavar="N",
                        help="stop the continuous run after N increments "
                             "(exit status 3; the checkpoint resumes on the "
                             "next invocation)")
    parser.add_argument("--scenario", metavar="FILE", default=None,
                        help="inject a chaos scenario: a JSON fault schedule "
                             "(see repro.simnet.faults) applied to the world "
                             "for the whole campaign; prints an injected-fault "
                             "attribution report after the analyses")
    parser.add_argument("--export", metavar="DIR", help="write figure CSVs to DIR")
    parser.add_argument("--release", metavar="TAG", default=None,
                        help="after the campaign completes, cut release TAG: "
                             "dataset snapshot + figure CSVs + QA manifest "
                             "under <release-dir>/TAG (refuses to overwrite "
                             "an existing tag)")
    parser.add_argument("--release-dir", metavar="DIR", default=None,
                        help="root directory for --release (default: releases)")
    parser.add_argument("--cache-dir", default=".cache")
    args = parser.parse_args(argv)

    if not args.continuous:
        given = [
            flag for flag, value in (
                ("--checkpoint-dir", args.checkpoint_dir is not None),
                ("--increment-days", args.increment_days is not None),
                ("--max-increments", args.max_increments is not None),
            ) if value
        ]
        if given:
            parser.error(f"{', '.join(given)} requires --continuous")
    if args.release_dir is not None and args.release is None:
        parser.error("--release-dir requires --release")
    if args.release is not None and (
        not args.release or "/" in args.release or args.release in (".", "..")
    ):
        # Fail before the campaign runs, not after (Study.release would
        # reject the tag anyway, but hours too late).
        parser.error(f"invalid release tag {args.release!r}")

    from .analysis import adoption, ech_analysis, nameservers
    from .reporting import render_comparison
    from .scanner import CollectionInterrupted
    from .study import ExecutionPlan, Study, StudyError, StudySpec, validate_release

    import os

    snapshot_dir = None
    if not args.no_snapshot:
        snapshot_dir = args.snapshot_dir or os.path.join(args.cache_dir, "worlds")

    scenario = None
    if args.scenario is not None:
        from .simnet.faults import FaultSchedule

        try:
            scenario = FaultSchedule.load(args.scenario)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            parser.error(f"cannot load scenario {args.scenario!r}: {exc}")

    spec = StudySpec(
        SimConfig(population=args.population),
        day_step=args.day_step,
        ech_sample=args.ech_sample,
        scenario=scenario,
    )
    plan = ExecutionPlan(
        workers=args.workers,
        batch=args.batch,
        snapshot_dir=snapshot_dir,
        cache_dir=args.cache_dir,
        continuous=args.continuous,
        checkpoint_dir=args.checkpoint_dir,
        days_per_increment=args.increment_days or 7,
        max_increments=args.max_increments,
        release_dir=args.release_dir or "releases",
        answer_cache=args.answer_cache,
    )
    with Study(spec, plan) as study:
        try:
            dataset = study.run()
        except CollectionInterrupted as exc:
            print(f"repro-scan: {exc}", file=sys.stderr)
            return 3
        summary = adoption.summarize(dataset)
        stats = nameservers.table2_ns_shares(dataset)
        event = ech_analysis.detect_disable_event(dataset)
        print(render_comparison(
            f"Campaign summary (population {args.population}, every {args.day_step} days)",
            [
                ("adoption band", "20-27%", f"{summary.dynamic_apex_start:.1f}-{summary.dynamic_apex_end:.1f}%"),
                ("full-Cloudflare NS share", "99.89%", f"{stats.full_mean_pct:.2f}%"),
                ("ECH before/after Oct 5", "~70% / 0%",
                 f"{event.pre_disable_mean_pct:.1f}% / {event.post_disable_max_pct:.1f}%"),
            ],
        ))
        stats = getattr(dataset, "run_stats", None)
        if stats is not None:
            if getattr(dataset, "loaded_from_cache", False):
                # A cache hit did no resolution work; the counters describe
                # the run that originally built the dataset.
                print(f"\nrun stats (cached dataset's originating run): {stats.summary()}")
            else:
                print(f"\nrun stats: {stats.summary()}")
        if scenario is not None and scenario:
            from .analysis import attribution

            report = attribution.attribute(dataset, scenario, spec.config)
            print(f"\nfault attribution ({scenario.name}):")
            print(report.summary())
        if args.export:
            written = study.export(args.export)
            print(f"\nwrote {len(written)} files to {args.export}:")
            for path in written:
                print(f"  {path}")
        if args.release:
            try:
                directory = study.release(args.release)
            except (StudyError, ValueError) as exc:
                # e.g. the tag already exists — a rerun of the same
                # resume command after the release was cut.
                print(f"repro-scan: {exc}", file=sys.stderr)
                return 4
            manifest = validate_release(directory)
            days = manifest["scan_days"]
            print(f"\nrelease {args.release!r} written to {directory} "
                  f"({len(manifest['files']) + 1} files, validated)")
            print(f"  scan days: {days['count']} ({days['first']}..{days['last']})"
                  f"{'' if manifest['complete'] else ' — INCOMPLETE'}")
            if manifest["coverage_gaps"]:
                print(f"  cadence gaps: {', '.join(manifest['coverage_gaps'])}")
    return 0


# ---------------------------------------------------------------------------
# repro-scan lint-code / lint-zone
# ---------------------------------------------------------------------------

def lint_code_main(argv: Optional[List[str]] = None) -> int:
    """The AST invariant linter (same as ``python -m repro.devtools.codelint``)."""
    from .devtools.codelint import main as codelint_main

    return codelint_main(argv)


def lint_zone_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-scan lint-zone",
        description="Lint simulated zones for the paper's §4 HTTPS-record "
                    "misconfigurations (repro.manage.linter).",
    )
    parser.add_argument("domains", nargs="*",
                        help="apex domains to lint (default: every domain "
                             "on the simulated Tranco list for --date)")
    parser.add_argument("--date", type=_parse_date, default=timeline.STUDY_START,
                        help="simulation date (YYYY-MM-DD)")
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default text)")
    args = parser.parse_args(argv)

    from .devtools.codelint.findings import (
        Severity, render_json, render_text, severity_counts,
    )
    from .manage import lint_zone

    world = World(SimConfig(population=args.population))
    world.set_time(args.date)
    hour = world.absolute_hour()
    if args.domains:
        profiles = []
        for text in args.domains:
            profile = world.profile_by_name(text)
            if profile is None:
                parser.error(f"no such domain {text!r} in a population-"
                             f"{args.population} world")
            profiles.append(profile)
    else:
        profiles = world.listed_profiles(args.date)

    findings = []
    for profile in profiles:
        findings.extend(lint_zone(
            world.zone_of(profile), ech_manager=world.ech_manager,
            current_hour=hour,
        ))
    if args.format == "json":
        print(render_json(
            findings, date=args.date.isoformat(), zones=len(profiles),
        ))
    else:
        if findings:
            print(render_text(findings))
        counts = severity_counts(findings)
        summary = ", ".join(
            f"{count} {severity}" for severity, count in counts.items() if count
        ) or "clean"
        print(f"lint-zone: {len(profiles)} zone(s) on {args.date}: {summary}")
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0


# ---------------------------------------------------------------------------
# repro-tables
# ---------------------------------------------------------------------------

def tables_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tables",
        description="Regenerate the browser support tables (paper Tables 6-7).",
    )
    parser.add_argument("--table", choices=("6", "7", "both"), default="both")
    args = parser.parse_args(argv)

    from .browser import build_table6, build_table7

    if args.table in ("6", "both"):
        print(build_table6().render())
    if args.table in ("7", "both"):
        if args.table == "both":
            print()
        print(build_table7().render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - dispatcher
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: repro {dig,scan,tables} ...", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    try:
        if command == "dig":
            return dig_main(rest)
        if command == "scan":
            return scan_main(rest)
        if command == "tables":
            return tables_main(rest)
        if command == "lint-code":
            return lint_code_main(rest)
        if command == "lint-zone":
            return lint_zone_main(rest)
    except BrokenPipeError:  # output piped into head etc.
        return 0
    print(f"unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
