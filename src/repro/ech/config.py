"""ECHConfig / ECHConfigList wire format (draft-ietf-tls-esni-13).

The layout follows the draft's TLS presentation syntax::

    ECHConfigList:   ECHConfig ECHConfig... with a 2-octet total length
    ECHConfig:       u16 version (0xfe0d) + u16 length + contents
    ECHConfigContents:
        HpkeKeyConfig key_config
        u8   maximum_name_length
        opaque public_name<1..255>
        Extension extensions<0..2^16-1>
    HpkeKeyConfig:
        u8   config_id
        u16  kem_id
        opaque public_key<1..2^16-1>
        HpkeSymmetricCipherSuite cipher_suites<4..2^16-4>

Browsers that cannot parse the list treat the record as malformed — the
behaviour the study probes in §5.3 experiment (2).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from .hpke import AEAD_AES128GCM, KDF_HKDF_SHA256, KEM_X25519_SHA256

ECH_VERSION_DRAFT13 = 0xFE0D

DEFAULT_CIPHER_SUITES: Tuple[Tuple[int, int], ...] = ((KDF_HKDF_SHA256, AEAD_AES128GCM),)
DEFAULT_MAXIMUM_NAME_LENGTH = 0


class ECHConfigError(ValueError):
    """Malformed ECHConfig(list)."""


class ECHConfig:
    """A single ECH configuration."""

    def __init__(
        self,
        config_id: int,
        public_key: bytes,
        public_name: str,
        kem_id: int = KEM_X25519_SHA256,
        cipher_suites: Sequence[Tuple[int, int]] = DEFAULT_CIPHER_SUITES,
        maximum_name_length: int = DEFAULT_MAXIMUM_NAME_LENGTH,
        extensions: bytes = b"",
        version: int = ECH_VERSION_DRAFT13,
    ):
        if not 0 <= config_id <= 0xFF:
            raise ECHConfigError(f"config_id {config_id} out of range")
        if not public_key:
            raise ECHConfigError("public_key must not be empty")
        if not 1 <= len(public_name.encode()) <= 255:
            raise ECHConfigError("public_name must be 1..255 octets")
        if not cipher_suites:
            raise ECHConfigError("at least one cipher suite required")
        self.config_id = config_id
        self.public_key = bytes(public_key)
        self.public_name = public_name
        self.kem_id = kem_id
        self.cipher_suites = tuple((int(kdf), int(aead)) for kdf, aead in cipher_suites)
        self.maximum_name_length = maximum_name_length
        self.extensions = bytes(extensions)
        self.version = version

    def contents_to_wire(self) -> bytes:
        out = bytearray()
        out.append(self.config_id)
        out.extend(struct.pack("!H", self.kem_id))
        out.extend(struct.pack("!H", len(self.public_key)))
        out.extend(self.public_key)
        suites = b"".join(struct.pack("!HH", kdf, aead) for kdf, aead in self.cipher_suites)
        out.extend(struct.pack("!H", len(suites)))
        out.extend(suites)
        out.append(self.maximum_name_length)
        name = self.public_name.encode()
        out.append(len(name))
        out.extend(name)
        out.extend(struct.pack("!H", len(self.extensions)))
        out.extend(self.extensions)
        return bytes(out)

    def to_wire(self) -> bytes:
        contents = self.contents_to_wire()
        return struct.pack("!HH", self.version, len(contents)) + contents

    @classmethod
    def from_wire(cls, data: bytes) -> Tuple["ECHConfig", int]:
        """Parse one ECHConfig from the head of *data*; returns (config,
        octets consumed)."""
        if len(data) < 4:
            raise ECHConfigError("truncated ECHConfig header")
        version, length = struct.unpack_from("!HH", data)
        if len(data) < 4 + length:
            raise ECHConfigError("truncated ECHConfig contents")
        if version != ECH_VERSION_DRAFT13:
            raise ECHConfigError(f"unsupported ECH version 0x{version:04x}")
        body = data[4 : 4 + length]
        pos = 0

        def need(count: int) -> bytes:
            nonlocal pos
            if pos + count > len(body):
                raise ECHConfigError("truncated ECHConfig field")
            chunk = body[pos : pos + count]
            pos += count
            return chunk

        config_id = need(1)[0]
        kem_id = struct.unpack("!H", need(2))[0]
        pk_len = struct.unpack("!H", need(2))[0]
        if pk_len == 0:
            raise ECHConfigError("empty public key")
        public_key = need(pk_len)
        suites_len = struct.unpack("!H", need(2))[0]
        if suites_len % 4 or suites_len == 0:
            raise ECHConfigError("bad cipher suite list length")
        suites_raw = need(suites_len)
        suites = [
            struct.unpack_from("!HH", suites_raw, i) for i in range(0, suites_len, 4)
        ]
        maximum_name_length = need(1)[0]
        name_len = need(1)[0]
        if name_len == 0:
            raise ECHConfigError("empty public name")
        public_name = need(name_len).decode("utf-8", "replace")
        ext_len = struct.unpack("!H", need(2))[0]
        extensions = need(ext_len)
        if pos != len(body):
            raise ECHConfigError("trailing garbage inside ECHConfig")
        config = cls(
            config_id,
            public_key,
            public_name,
            kem_id=kem_id,
            cipher_suites=suites,
            maximum_name_length=maximum_name_length,
            extensions=extensions,
            version=version,
        )
        return config, 4 + length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ECHConfig):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __hash__(self) -> int:
        return hash(self.to_wire())

    def __repr__(self) -> str:
        return (
            f"ECHConfig(id={self.config_id}, public_name={self.public_name!r}, "
            f"key={self.public_key.hex()[:12]}...)"
        )


class ECHConfigList:
    """An ordered list of ECHConfigs, as carried in the ``ech`` SvcParam."""

    def __init__(self, configs: Sequence[ECHConfig]):
        if not configs:
            raise ECHConfigError("ECHConfigList must not be empty")
        self.configs = list(configs)

    def to_wire(self) -> bytes:
        body = b"".join(config.to_wire() for config in self.configs)
        return struct.pack("!H", len(body)) + body

    @classmethod
    def from_wire(cls, data: bytes) -> "ECHConfigList":
        if len(data) < 2:
            raise ECHConfigError("truncated ECHConfigList length")
        (length,) = struct.unpack_from("!H", data)
        if length != len(data) - 2:
            raise ECHConfigError(
                f"ECHConfigList length {length} does not match payload {len(data) - 2}"
            )
        body = data[2:]
        configs = []
        pos = 0
        while pos < len(body):
            config, consumed = ECHConfig.from_wire(body[pos:])
            configs.append(config)
            pos += consumed
        return cls(configs)

    def primary(self) -> ECHConfig:
        return self.configs[0]

    def find_by_id(self, config_id: int) -> Optional[ECHConfig]:
        for config in self.configs:
            if config.config_id == config_id:
                return config
        return None

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ECHConfigList):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __repr__(self) -> str:
        return f"ECHConfigList({self.configs!r})"


def try_parse_config_list(data: bytes) -> Optional[ECHConfigList]:
    """Parse an ech SvcParam value; None when malformed (browser view)."""
    try:
        return ECHConfigList.from_wire(data)
    except ECHConfigError:
        return None
