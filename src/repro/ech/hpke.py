"""Simulated HPKE (RFC 9180) for ECH.

We cannot use real X25519/AEAD primitives offline with only the standard
library, so this module implements a *structurally faithful* stand-in:

* key pairs are (private seed, public key = SHA-256(seed));
* ``seal`` produces ``enc || ciphertext`` where the ciphertext is the
  plaintext XORed with a SHA-256-based keystream and authenticated with an
  HMAC tag keyed by the recipient public key and the AAD;
* ``open`` succeeds only when the recipient holds a private key whose
  public key matches the one the sender encrypted to — a key mismatch
  fails authentication exactly like a real HPKE open failure.

This preserves the property the study depends on: an ECH ClientHelloInner
can be decrypted only by the server holding the key matching the
ECHConfig the client used, and stale/rotated keys cause a decryption
failure that triggers the retry-configuration flow.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional, Tuple

# Algorithm identifiers carried in ECHConfig (values from RFC 9180).
KEM_X25519_SHA256 = 0x0020
KDF_HKDF_SHA256 = 0x0001
AEAD_AES128GCM = 0x0001
AEAD_CHACHA20POLY1305 = 0x0003

_TAG_LENGTH = 16
_ENC_LENGTH = 32


class HpkeError(Exception):
    """Seal/open failure (authentication or format)."""


class HpkeKeyPair:
    """A simulated KEM key pair."""

    def __init__(self, private_seed: bytes):
        if len(private_seed) != 32:
            raise ValueError("private seed must be 32 bytes")
        self.private_seed = bytes(private_seed)
        self.public_key = hashlib.sha256(b"hpke-public|" + private_seed).digest()

    @classmethod
    def generate(cls, rng_seed: Optional[bytes] = None) -> "HpkeKeyPair":
        if rng_seed is not None:
            seed = hashlib.sha256(b"hpke-seed|" + rng_seed).digest()
        else:
            seed = os.urandom(32)
        return cls(seed)

    def matches_public(self, public_key: bytes) -> bool:
        return hmac.compare_digest(self.public_key, public_key)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(4, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def seal(recipient_public_key: bytes, info: bytes, aad: bytes, plaintext: bytes) -> bytes:
    """Encrypt *plaintext* to the holder of *recipient_public_key*.

    Returns ``enc || tag || ciphertext``; ``enc`` is the ephemeral share.
    """
    enc = os.urandom(_ENC_LENGTH)
    shared = hashlib.sha256(b"hpke-shared|" + recipient_public_key + enc + info).digest()
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, _keystream(shared, b"stream", len(plaintext))))
    tag = hmac.new(shared, aad + ciphertext, hashlib.sha256).digest()[:_TAG_LENGTH]
    return enc + tag + ciphertext


def open_(keypair: HpkeKeyPair, info: bytes, aad: bytes, sealed: bytes) -> bytes:
    """Decrypt output of :func:`seal`. Raises :class:`HpkeError` when the
    key pair does not match the key the sender encrypted to, or on tamper."""
    if len(sealed) < _ENC_LENGTH + _TAG_LENGTH:
        raise HpkeError("sealed blob too short")
    enc = sealed[:_ENC_LENGTH]
    tag = sealed[_ENC_LENGTH : _ENC_LENGTH + _TAG_LENGTH]
    ciphertext = sealed[_ENC_LENGTH + _TAG_LENGTH :]
    shared = hashlib.sha256(b"hpke-shared|" + keypair.public_key + enc + info).digest()
    expected = hmac.new(shared, aad + ciphertext, hashlib.sha256).digest()[:_TAG_LENGTH]
    if not hmac.compare_digest(tag, expected):
        raise HpkeError("authentication failed (wrong key or tampered data)")
    return bytes(a ^ b for a, b in zip(ciphertext, _keystream(shared, b"stream", len(ciphertext))))
