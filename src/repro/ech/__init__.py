"""TLS Encrypted Client Hello: config format, simulated HPKE, key rotation.

The HPKE internals are simulated (see :mod:`repro.ech.hpke`); the
ECHConfigList wire format is implemented exactly per draft-ietf-tls-esni-13
so malformed-config and version-mismatch behaviour is authentic.
"""

from .config import (
    DEFAULT_CIPHER_SUITES,
    ECH_VERSION_DRAFT13,
    ECHConfig,
    ECHConfigError,
    ECHConfigList,
    try_parse_config_list,
)
from .hpke import (
    AEAD_AES128GCM,
    AEAD_CHACHA20POLY1305,
    KDF_HKDF_SHA256,
    KEM_X25519_SHA256,
    HpkeError,
    HpkeKeyPair,
    open_,
    seal,
)
from .keys import ECHKeyManager

__all__ = [
    "DEFAULT_CIPHER_SUITES",
    "ECH_VERSION_DRAFT13",
    "ECHConfig",
    "ECHConfigError",
    "ECHConfigList",
    "try_parse_config_list",
    "AEAD_AES128GCM",
    "AEAD_CHACHA20POLY1305",
    "KDF_HKDF_SHA256",
    "KEM_X25519_SHA256",
    "HpkeError",
    "HpkeKeyPair",
    "open_",
    "seal",
    "ECHKeyManager",
]
