"""ECH key management and rotation.

Models the server-side key lifecycle the paper measures in §4.4.2: a
client-facing provider (e.g. ``cloudflare-ech.com``) rotates the HPKE key
every 1–2 hours; during a rotation window the provider must keep the
previous private key around so handshakes using a DNS-cached (stale)
ECHConfig can either still be decrypted or be answered with
retry_configs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from .config import ECHConfig, ECHConfigList
from .hpke import HpkeKeyPair


class ECHKeyManager:
    """Holds the active + recently retired ECH key pairs for one
    client-facing server and mints ECHConfigLists for DNS publication.

    Rotation cadence is deterministic per (provider seed, hour index) so
    simulation runs are reproducible: the key for hour *h* changes when
    ``h // rotation_hours`` changes.
    """

    def __init__(
        self,
        public_name: str,
        seed: bytes = b"",
        rotation_hours: float = 1.26,
        retain_generations: int = 1,
    ):
        if rotation_hours <= 0:
            raise ValueError("rotation_hours must be positive")
        self.public_name = public_name
        self.seed = bytes(seed) or public_name.encode()
        self.rotation_hours = rotation_hours
        self.retain_generations = retain_generations
        self._keypairs: Dict[int, HpkeKeyPair] = {}

    # -- generations ------------------------------------------------------

    def generation_for_hour(self, hour_index: int) -> int:
        """Which key generation is live at absolute hour *hour_index*."""
        return int(hour_index / self.rotation_hours)

    def keypair_for_generation(self, generation: int) -> HpkeKeyPair:
        keypair = self._keypairs.get(generation)
        if keypair is None:
            material = hashlib.sha256(
                b"ech-gen|" + self.seed + b"|" + str(generation).encode()
            ).digest()
            keypair = HpkeKeyPair(material)
            self._keypairs[generation] = keypair
        return keypair

    def config_for_generation(self, generation: int) -> ECHConfig:
        keypair = self.keypair_for_generation(generation)
        return ECHConfig(
            config_id=generation % 256,
            public_key=keypair.public_key,
            public_name=self.public_name,
        )

    # -- publication / consumption -----------------------------------------

    def published_config_list(self, hour_index: int) -> ECHConfigList:
        """The ECHConfigList a zone should publish at *hour_index*."""
        return ECHConfigList([self.config_for_generation(self.generation_for_hour(hour_index))])

    def published_wire(self, hour_index: int) -> bytes:
        return self.published_config_list(hour_index).to_wire()

    def active_keypairs(self, hour_index: int) -> List[HpkeKeyPair]:
        """Keys the server will accept at *hour_index*: the current
        generation plus up to ``retain_generations`` previous ones."""
        generation = self.generation_for_hour(hour_index)
        generations = range(max(0, generation - self.retain_generations), generation + 1)
        return [self.keypair_for_generation(g) for g in generations]

    def find_keypair(self, hour_index: int, public_key: bytes) -> Optional[HpkeKeyPair]:
        for keypair in self.active_keypairs(hour_index):
            if keypair.matches_public(public_key):
                return keypair
        return None

    def retry_config_list(self, hour_index: int) -> ECHConfigList:
        """The retry_configs a server hands back on decryption failure."""
        return self.published_config_list(hour_index)

    # -- analysis helpers -----------------------------------------------------

    def observed_durations(self, start_hour: int, end_hour: int) -> List[Tuple[int, int]]:
        """(generation, consecutive-hourly-observations) pairs as an hourly
        scanner (like the paper's Jul 21–27 scan) would record them."""
        runs: List[Tuple[int, int]] = []
        current_gen: Optional[int] = None
        count = 0
        for hour in range(start_hour, end_hour):
            generation = self.generation_for_hour(hour)
            if generation == current_gen:
                count += 1
            else:
                if current_gen is not None:
                    runs.append((current_gen, count))
                current_gen = generation
                count = 1
        if current_gen is not None:
            runs.append((current_gen, count))
        return runs
