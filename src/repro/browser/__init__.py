"""Client-side HTTPS RR support: browser models, TLS simulation, testbed."""

from .engine import Browser, NavigationResult
from .experiments import (
    FULL,
    HALF,
    NONE,
    SupportMatrix,
    build_table6,
    build_table7,
    run_alias_mode_experiment,
    run_alpn_experiment,
    run_ech_experiments,
    run_hint_experiment,
    run_port_experiment,
    run_service_target_experiment,
    run_url_form_experiment,
)
from .policy import (
    ALL_BROWSERS,
    CHROME,
    ECH_BROWSERS,
    EDGE,
    FIREFOX,
    SAFARI,
    BrowserPolicy,
    by_name,
)
from .testbed import HttpEndpoint, Testbed, TEST_DOMAIN
from .tls import Certificate, ClientHello, TlsResult, WebServer, seal_inner_hello

__all__ = [
    "Browser",
    "NavigationResult",
    "FULL",
    "HALF",
    "NONE",
    "SupportMatrix",
    "build_table6",
    "build_table7",
    "run_alias_mode_experiment",
    "run_alpn_experiment",
    "run_ech_experiments",
    "run_hint_experiment",
    "run_port_experiment",
    "run_service_target_experiment",
    "run_url_form_experiment",
    "ALL_BROWSERS",
    "CHROME",
    "ECH_BROWSERS",
    "EDGE",
    "FIREFOX",
    "SAFARI",
    "BrowserPolicy",
    "by_name",
    "HttpEndpoint",
    "Testbed",
    "TEST_DOMAIN",
    "Certificate",
    "ClientHello",
    "TlsResult",
    "WebServer",
    "seal_inner_hello",
]
