"""Baseline HTTP→HTTPS upgrade mechanisms.

The paper's introduction motivates the HTTPS RR against the status quo:
a browser that doesn't know a site supports HTTPS first sends a
plaintext HTTP request and follows a redirect — an attack window HSTS
(RFC 6797), the manually-curated preload list, and Alt-Svc (RFC 7838)
only partially close. This module implements those mechanisms so the
benchmark harness can quantify the comparison the intro makes in prose:
plaintext exposures and round trips per visit, mechanism by mechanism.

Simplified RTT accounting (constants below): DNS lookups are assumed
parallelized (HTTPS RR rides along with A at no extra round trip), the
TCP+TLS setup is charged as two units, and a plaintext redirect costs
one TCP setup plus the HTTP exchange.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

# Mechanisms.
MECH_REDIRECT = "http-redirect"  # status quo: plaintext probe + 301
MECH_HSTS = "hsts"
MECH_HSTS_PRELOAD = "hsts-preload"
MECH_ALT_SVC = "alt-svc"
MECH_HTTPS_RR = "https-rr"

ALL_MECHANISMS = (MECH_REDIRECT, MECH_HSTS, MECH_HSTS_PRELOAD, MECH_ALT_SVC, MECH_HTTPS_RR)

# Round-trip costs (units, not milliseconds).
RTT_TCP = 1
RTT_TLS = 1
RTT_HTTP_EXCHANGE = 1


@dataclass
class HstsPolicy:
    max_age: float
    include_subdomains: bool = False


class HstsStore:
    """A browser's dynamic HSTS store plus the static preload list."""

    def __init__(self, preload: Sequence[str] = ()):
        self._dynamic: Dict[str, Tuple[float, HstsPolicy]] = {}
        self._preload: Set[str] = {h.rstrip(".").lower() for h in preload}

    def note_header(self, host: str, policy: HstsPolicy, now: float) -> None:
        host = host.rstrip(".").lower()
        if policy.max_age <= 0:
            self._dynamic.pop(host, None)
            return
        self._dynamic[host] = (now + policy.max_age, policy)

    def must_use_https(self, host: str, now: float) -> bool:
        host = host.rstrip(".").lower()
        if host in self._preload:
            return True
        labels = host.split(".")
        for i in range(len(labels)):
            candidate = ".".join(labels[i:])
            entry = self._dynamic.get(candidate)
            if entry is None:
                continue
            expiry, policy = entry
            if expiry <= now:
                continue
            if candidate == host or policy.include_subdomains:
                return True
        return False

    def __contains__(self, host: str) -> bool:
        return host.rstrip(".").lower() in self._preload or host.rstrip(".").lower() in self._dynamic


class AltSvcCache:
    """Per-origin Alt-Svc entries (RFC 7838), learned from responses."""

    def __init__(self):
        self._entries: Dict[str, Tuple[float, str, int]] = {}

    def note_header(self, host: str, protocol: str, port: int, max_age: float, now: float) -> None:
        self._entries[host.rstrip(".").lower()] = (now + max_age, protocol, port)

    def lookup(self, host: str, now: float) -> Optional[Tuple[str, int]]:
        entry = self._entries.get(host.rstrip(".").lower())
        if entry is None or entry[0] <= now:
            return None
        return entry[1], entry[2]


@dataclass
class VisitOutcome:
    """What one navigation cost."""

    mechanism: str
    visit_number: int
    plaintext_requests: int
    round_trips: int
    final_scheme: str
    mitm_window: bool  # a plaintext request an attacker could intercept


@dataclass
class SiteConfig:
    """The (upgrade-relevant) server-side posture of one site."""

    host: str
    supports_https: bool = True
    sends_hsts: bool = True
    hsts_max_age: float = 31536000.0
    preloaded: bool = False
    sends_alt_svc: bool = True
    alt_svc_protocol: str = "h3"
    publishes_https_rr: bool = True


class UpgradeSimulator:
    """Replays visit sequences under each mechanism and accounts costs."""

    def __init__(self, site: SiteConfig):
        self.site = site
        self.hsts = HstsStore(preload=[site.host] if site.preloaded else [])
        self.alt_svc = AltSvcCache()
        self.now = 0.0

    def _secure_connect(self) -> int:
        return RTT_TCP + RTT_TLS + RTT_HTTP_EXCHANGE

    def _plain_probe_and_redirect(self) -> int:
        # TCP, plaintext GET, 301 response, then the HTTPS connection.
        return RTT_TCP + RTT_HTTP_EXCHANGE + self._secure_connect()

    def visit(self, mechanism: str, visit_number: int) -> VisitOutcome:
        """One address-bar navigation (`a.com`, no scheme typed)."""
        site = self.site
        self.now += 60.0
        if mechanism not in ALL_MECHANISMS:
            raise ValueError(f"unknown mechanism {mechanism!r}")

        if mechanism == MECH_HTTPS_RR and site.publishes_https_rr:
            # The HTTPS RR rides alongside the A lookup: the browser knows
            # about HTTPS support before the first packet to the server.
            return VisitOutcome(
                mechanism, visit_number, 0, self._secure_connect(), "https", False
            )

        if mechanism == MECH_HSTS_PRELOAD and site.preloaded:
            return VisitOutcome(
                mechanism, visit_number, 0, self._secure_connect(), "https", False
            )

        if mechanism in (MECH_HSTS, MECH_HSTS_PRELOAD) and self.hsts.must_use_https(
            site.host, self.now
        ):
            return VisitOutcome(
                mechanism, visit_number, 0, self._secure_connect(), "https", False
            )

        if mechanism == MECH_ALT_SVC:
            cached = self.alt_svc.lookup(site.host, self.now)
            if cached is not None:
                return VisitOutcome(
                    mechanism, visit_number, 0, self._secure_connect(), "https", False
                )

        # Status-quo path: plaintext probe, redirect, HTTPS.
        if not site.supports_https:
            return VisitOutcome(
                mechanism, visit_number, 1, RTT_TCP + RTT_HTTP_EXCHANGE, "http", True
            )
        round_trips = self._plain_probe_and_redirect()
        if mechanism in (MECH_HSTS, MECH_HSTS_PRELOAD) and site.sends_hsts:
            self.hsts.note_header(site.host, HstsPolicy(site.hsts_max_age), self.now)
        if mechanism == MECH_ALT_SVC and site.sends_alt_svc:
            self.alt_svc.note_header(site.host, site.alt_svc_protocol, 443, 86400.0, self.now)
        return VisitOutcome(mechanism, visit_number, 1, round_trips, "https", True)

    def run_visits(self, mechanism: str, count: int) -> List[VisitOutcome]:
        return [self.visit(mechanism, i + 1) for i in range(count)]


def compare_mechanisms(site: SiteConfig, visits: int = 5) -> Dict[str, Dict[str, float]]:
    """Total plaintext exposures and round trips per mechanism over a
    visit sequence — the intro's argument, quantified."""
    results: Dict[str, Dict[str, float]] = {}
    for mechanism in ALL_MECHANISMS:
        simulator = UpgradeSimulator(site)
        outcomes = simulator.run_visits(mechanism, visits)
        results[mechanism] = {
            "plaintext_requests": float(sum(o.plaintext_requests for o in outcomes)),
            "round_trips": float(sum(o.round_trips for o in outcomes)),
            "mitm_windows": float(sum(o.mitm_window for o in outcomes)),
        }
    return results
