"""Browser behaviour policies.

Each policy encodes how one browser (as of the paper's test versions,
Table 6) handles HTTPS resource records and ECH. The connection engine
*executes* these policies mechanically — the Table 6/7 benchmarks are
regenerated from engine behaviour, not hard-coded.

Sources: the paper's controlled experiments (§5.1–5.3) plus its
Chromium/Firefox code corroboration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

# Hint/port failover styles.
FAILOVER_NONE = "none"  # hard failure
FAILOVER_IMMEDIATE = "immediate"  # retry alternate address at once
FAILOVER_DELAYED = "delayed"  # retry after a long wait

# Malformed-ECH handling.
MALFORMED_HARD_FAIL = "hard-fail"
MALFORMED_IGNORE = "ignore"


@dataclass(frozen=True)
class BrowserPolicy:
    """Static description of one browser's HTTPS-RR behaviour."""

    name: str
    version: str
    os_list: Tuple[str, ...]

    # -- §5.1: record utilization -------------------------------------------
    queries_https_rr: bool = True
    requires_doh: bool = False  # Firefox: HTTPS RR only over DoH
    upgrades_plain_url: bool = True  # uses the RR to jump straight to HTTPS
    upgrades_http_url: bool = True

    # -- §5.2: parameter resolution ----------------------------------------------
    follows_alias_target: bool = False  # AliasMode TargetName
    follows_service_target: bool = False  # ServiceMode TargetName
    uses_port: bool = False
    port_failover: str = FAILOVER_NONE
    prefers_ip_hints: bool = False  # vs. preferring A-record addresses
    hint_failover: str = FAILOVER_NONE
    uses_alpn: bool = True
    ignores_empty_alpn_record: bool = False  # Chromium drops RR w/ empty alpn
    h3_h2_compat_retry: bool = False  # Firefox fires a follow-up h2 attempt

    # -- §5.3: ECH ------------------------------------------------------------------
    supports_ech: bool = False
    malformed_ech: str = MALFORMED_HARD_FAIL
    supports_ech_retry: bool = False
    resolves_split_mode_public_name: bool = False  # nobody does (§5.3.2)

    def supports_https_rr_in(self, doh_enabled: bool) -> bool:
        return self.queries_https_rr and (doh_enabled or not self.requires_doh)


CHROME = BrowserPolicy(
    name="Chrome",
    version="120.0.6099",
    os_list=("macOS", "Windows"),
    upgrades_plain_url=True,
    upgrades_http_url=True,
    follows_alias_target=False,
    follows_service_target=False,
    uses_port=False,
    port_failover=FAILOVER_NONE,
    prefers_ip_hints=False,
    hint_failover=FAILOVER_NONE,
    ignores_empty_alpn_record=True,
    supports_ech=True,
    malformed_ech=MALFORMED_HARD_FAIL,
    supports_ech_retry=True,
)

EDGE = BrowserPolicy(
    name="Edge",
    version="120.0.2210",
    os_list=("macOS", "Windows"),
    upgrades_plain_url=True,
    upgrades_http_url=True,
    follows_alias_target=False,
    follows_service_target=False,
    uses_port=False,
    port_failover=FAILOVER_NONE,
    prefers_ip_hints=False,
    hint_failover=FAILOVER_NONE,
    ignores_empty_alpn_record=True,
    supports_ech=True,
    malformed_ech=MALFORMED_HARD_FAIL,
    supports_ech_retry=True,
)

SAFARI = BrowserPolicy(
    name="Safari",
    version="17.2.1",
    os_list=("macOS",),
    upgrades_plain_url=False,  # fetches the RR but still connects over HTTP
    upgrades_http_url=False,
    follows_alias_target=True,
    follows_service_target=True,
    uses_port=True,
    port_failover=FAILOVER_IMMEDIATE,
    prefers_ip_hints=True,
    hint_failover=FAILOVER_IMMEDIATE,
    supports_ech=False,
)

FIREFOX = BrowserPolicy(
    name="Firefox",
    version="122.0.1",
    os_list=("macOS", "Windows"),
    requires_doh=True,
    upgrades_plain_url=True,
    upgrades_http_url=True,
    follows_alias_target=False,
    follows_service_target=True,
    uses_port=True,
    port_failover=FAILOVER_IMMEDIATE,
    prefers_ip_hints=True,
    hint_failover=FAILOVER_DELAYED,
    h3_h2_compat_retry=True,
    supports_ech=True,
    malformed_ech=MALFORMED_IGNORE,
    supports_ech_retry=True,
)

ALL_BROWSERS = (CHROME, SAFARI, EDGE, FIREFOX)
ECH_BROWSERS = (CHROME, EDGE, FIREFOX)  # Safari lacks any ECH support


def by_name(name: str) -> BrowserPolicy:
    for policy in ALL_BROWSERS:
        if policy.name.lower() == name.lower():
            return policy
    raise KeyError(f"unknown browser {name!r}")
