"""The §5 experiment matrix: regenerates Tables 6 and 7.

Each experiment configures the testbed (zone + servers), drives every
browser, and grades the observed behaviour:

* ``FULL`` — the record/parameter is used as specified;
* ``HALF`` — fetched/attempted but an essential function is missing;
* ``NONE`` — no support (or a hard failure).

The paper repeats each setting 5 times; the simulation is deterministic
so ``rounds`` defaults to 1 (the repetition knob exists for parity).
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dnscore import rdtypes
from .policy import ALL_BROWSERS, ECH_BROWSERS
from .testbed import (
    ALT_WEB_SERVER_IP,
    TEST_DOMAIN,
    Testbed,
    WEB_SERVER_IP,
)

FULL = "full"
HALF = "half"
NONE = "none"

_GLYPHS = {FULL: "●", HALF: "◐", NONE: "○"}


def glyph(level: str) -> str:
    return _GLYPHS[level]


@dataclass
class SupportMatrix:
    """rows × browsers → FULL/HALF/NONE."""

    title: str
    browsers: Tuple[str, ...]
    rows: Dict[str, Dict[str, str]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def set(self, row: str, browser: str, level: str) -> None:
        self.rows.setdefault(row, {})[browser] = level

    def get(self, row: str, browser: str) -> str:
        return self.rows[row][browser]

    def render(self) -> str:
        width = max(len(r) for r in self.rows) + 2
        header = " " * width + "  ".join(f"{b:^8}" for b in self.browsers)
        lines = [self.title, header]
        for row, cells in self.rows.items():
            line = f"{row:<{width}}" + "  ".join(
                f"{glyph(cells.get(b, NONE)):^8}" for b in self.browsers
            )
            lines.append(line)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# §5.1 — HTTPS RR utilization across URL forms
# ---------------------------------------------------------------------------

def run_url_form_experiment(testbed: Optional[Testbed] = None) -> SupportMatrix:
    testbed = testbed or Testbed()
    matrix = SupportMatrix(
        "HTTPS RR utilization (§5.1)", tuple(p.name for p in ALL_BROWSERS)
    )
    testbed.clear_endpoints()
    testbed.simple_service_zone("1 . alpn=h2")
    testbed.install_web_server(alpn=("h2", "http/1.1"))

    url_forms = {
        "{apex}": TEST_DOMAIN,
        "http://{apex}": f"http://{TEST_DOMAIN}",
        "https://{apex}": f"https://{TEST_DOMAIN}",
    }
    for row, url in url_forms.items():
        for policy in ALL_BROWSERS:
            testbed.new_round()
            browser = testbed.browser(policy.name)
            result = browser.navigate(url)
            queried = any(rdtype == rdtypes.HTTPS for _n, rdtype in browser.dns_log)
            used = result.success and result.scheme == "https"
            if queried and used:
                level = FULL
            elif queried:
                level = HALF  # fetched the record but connected over HTTP
            else:
                level = NONE
            matrix.set(row, policy.name, level)
    return matrix


# ---------------------------------------------------------------------------
# §5.2.1 — AliasMode TargetName
# ---------------------------------------------------------------------------

def run_alias_mode_experiment(testbed: Optional[Testbed] = None) -> SupportMatrix:
    testbed = testbed or Testbed()
    matrix = SupportMatrix(
        "AliasMode TargetName (§5.2.1)", tuple(p.name for p in ALL_BROWSERS)
    )
    testbed.clear_endpoints()
    # No A record at the apex: only the alias target resolves.
    testbed.set_zone_records([
        ("@", "HTTPS", f"0 pool.{TEST_DOMAIN}."),
        ("pool", "A", WEB_SERVER_IP),
    ])
    testbed.install_web_server(ip=WEB_SERVER_IP)
    for policy in ALL_BROWSERS:
        testbed.new_round()
        result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
        followed = result.success and result.followed_target == f"pool.{TEST_DOMAIN}"
        matrix.set("AliasMode TargetName", policy.name, FULL if followed else NONE)
    return matrix


# ---------------------------------------------------------------------------
# §5.2.2 — ServiceMode parameters
# ---------------------------------------------------------------------------

def run_service_target_experiment(testbed: Optional[Testbed] = None) -> SupportMatrix:
    testbed = testbed or Testbed()
    matrix = SupportMatrix(
        "ServiceMode TargetName (§5.2.2)", tuple(p.name for p in ALL_BROWSERS)
    )
    testbed.clear_endpoints()
    testbed.set_zone_records([
        ("@", "HTTPS", f"1 pool.{TEST_DOMAIN}. alpn=h2"),
        ("@", "A", WEB_SERVER_IP),
        ("pool", "A", ALT_WEB_SERVER_IP),
    ])
    # The *right* service lives at the alternative endpoint only.
    testbed.install_web_server(ip=ALT_WEB_SERVER_IP)
    testbed.install_web_server(ip=WEB_SERVER_IP)  # the owner's (wrong) host
    for policy in ALL_BROWSERS:
        testbed.new_round()
        result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
        at_target = result.success and result.ip == ALT_WEB_SERVER_IP
        matrix.set("TargetName", policy.name, FULL if at_target else NONE)
    return matrix


def run_port_experiment(testbed: Optional[Testbed] = None) -> Tuple[SupportMatrix, SupportMatrix]:
    testbed = testbed or Testbed()
    support = SupportMatrix("port parameter (§5.2.2-1)", tuple(p.name for p in ALL_BROWSERS))
    failover = SupportMatrix("port failover", tuple(p.name for p in ALL_BROWSERS))

    # Support: service only reachable on 8443.
    testbed.clear_endpoints()
    testbed.simple_service_zone("1 . alpn=h2 port=8443")
    testbed.install_web_server(port=8443)
    for policy in ALL_BROWSERS:
        testbed.new_round()
        result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
        used = result.success and result.port == 8443
        support.set("port", policy.name, FULL if used else NONE)

    # Failover: record says 8443 but the service only listens on 443.
    testbed.clear_endpoints()
    testbed.simple_service_zone("1 . alpn=h2 port=8443")
    testbed.install_web_server(port=443)
    for policy in ALL_BROWSERS:
        testbed.new_round()
        result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
        fell_back = result.success and result.port == 443
        if fell_back:
            level = FULL
        elif not policy.uses_port and result.success:
            # Chrome/Edge "succeed" here only because they never left 443.
            level = NONE
        else:
            level = NONE
        failover.set("port failover", policy.name, level)
    return support, failover


def run_hint_experiment(testbed: Optional[Testbed] = None) -> Tuple[SupportMatrix, SupportMatrix]:
    testbed = testbed or Testbed()
    support = SupportMatrix("IP hints (§5.2.2-2)", tuple(p.name for p in ALL_BROWSERS))
    failover = SupportMatrix("IP hint failover", tuple(p.name for p in ALL_BROWSERS))

    # Preference: hint and A point at different, both-alive servers.
    testbed.clear_endpoints()
    testbed.set_zone_records([
        ("@", "HTTPS", f"1 . alpn=h2 ipv4hint={WEB_SERVER_IP}"),
        ("@", "A", ALT_WEB_SERVER_IP),
    ])
    testbed.install_web_server(ip=WEB_SERVER_IP)
    testbed.install_web_server(ip=ALT_WEB_SERVER_IP)
    for policy in ALL_BROWSERS:
        testbed.new_round()
        result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
        used_hint = result.success and result.ip == WEB_SERVER_IP
        support.set("IP hints", policy.name, FULL if used_hint else NONE)

    # Failover: the preferred address is dead; only the other one serves.
    for scenario, alive_ip in (("hint dead", ALT_WEB_SERVER_IP), ("A dead", WEB_SERVER_IP)):
        testbed.clear_endpoints()
        testbed.set_zone_records([
            ("@", "HTTPS", f"1 . alpn=h2 ipv4hint={WEB_SERVER_IP}"),
            ("@", "A", ALT_WEB_SERVER_IP),
        ])
        testbed.install_web_server(ip=alive_ip)
        for policy in ALL_BROWSERS:
            testbed.new_round()
            result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
            previous = failover.rows.get("IP hint failover", {}).get(policy.name)
            recovered = result.success
            level = FULL if recovered else NONE
            if previous == NONE:
                level = NONE  # must survive both directions
            failover.set("IP hint failover", policy.name, level)
    failover.notes.append("Safari retries immediately; Firefox retries after a delay")
    return support, failover


def run_alpn_experiment(testbed: Optional[Testbed] = None) -> SupportMatrix:
    testbed = testbed or Testbed()
    matrix = SupportMatrix("alpn parameter (§5.2.2-3)", tuple(p.name for p in ALL_BROWSERS))
    for protocol in ("h2", "h3"):
        testbed.clear_endpoints()
        testbed.simple_service_zone(f"1 . alpn={protocol}")
        testbed.install_web_server(alpn=(protocol,))
        for policy in ALL_BROWSERS:
            testbed.new_round()
            result = testbed.browser(policy.name).navigate(f"https://{TEST_DOMAIN}")
            ok = result.success and result.alpn == protocol
            previous = matrix.rows.get("alpn", {}).get(policy.name)
            level = FULL if ok and previous != NONE else NONE
            matrix.set("alpn", policy.name, level)
    matrix.notes.append("Firefox issues a follow-up h2 attempt after an h3-only connect")
    return matrix


# ---------------------------------------------------------------------------
# §5.3 — ECH
# ---------------------------------------------------------------------------

def _ech_zone(testbed: Testbed, ech_wire: bytes, a_ip: str) -> None:
    encoded = base64.b64encode(ech_wire).decode()
    testbed.set_zone_records([
        ("@", "HTTPS", f"1 . alpn=h2 ech={encoded}"),
        ("@", "A", a_ip),
        ("cover", "A", a_ip),
    ])


def run_ech_experiments(testbed: Optional[Testbed] = None) -> SupportMatrix:
    testbed = testbed or Testbed()
    browsers = tuple(p.name for p in ECH_BROWSERS)
    matrix = SupportMatrix("ECH support and failover (§5.3, Table 7)", browsers)
    km = testbed.make_ech_manager()
    shared_ip = "2.2.2.2"
    cert = (TEST_DOMAIN, f"cover.{TEST_DOMAIN}")

    # -- Shared Mode, correctly configured -----------------------------------
    _ech_zone(testbed, km.published_wire(0), shared_ip)
    testbed.clear_endpoints()
    testbed.network.unregister_tcp(shared_ip, 443)
    testbed.install_web_server(
        ip=shared_ip, cert_names=cert, ech_keypairs=km.active_keypairs(0),
        ech_retry_wire=km.published_wire(0),
    )
    for name in browsers:
        testbed.new_round()
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        ok = result.success and result.ech_accepted
        matrix.set("Shared Mode Support", name, FULL if ok else NONE)

    # -- (1) Unilateral ECH: record advertises ECH, server dropped it ---------------
    testbed.network.unregister_tcp(shared_ip, 443)
    testbed.install_web_server(ip=shared_ip, cert_names=cert, ech_keypairs=())
    for name in browsers:
        testbed.new_round()
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        ok = result.success and not result.ech_accepted
        matrix.set("(1) Unilateral ECH", name, FULL if ok else NONE)

    # -- (2) Malformed ECH configuration ----------------------------------------------
    _ech_zone(testbed, b"\x00\x08garbage!", shared_ip)
    testbed.network.unregister_tcp(shared_ip, 443)
    testbed.install_web_server(
        ip=shared_ip, cert_names=cert, ech_keypairs=km.active_keypairs(0)
    )
    for name in browsers:
        testbed.new_round()
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        matrix.set("(2) Malformed ECH", name, FULL if result.success else NONE)

    # -- (3) ECH key mismatch + retry configs ---------------------------------------------
    stale_generation = 0
    current_generation = 9
    _ech_zone(testbed, km.published_wire(stale_generation), shared_ip)
    current_keys = [km.keypair_for_generation(current_generation)]
    current_wire = b"".join([])  # placeholder to keep lints quiet
    retry_wire = _wire_for_generation(km, current_generation)
    testbed.network.unregister_tcp(shared_ip, 443)
    testbed.install_web_server(
        ip=shared_ip, cert_names=cert, ech_keypairs=current_keys, ech_retry_wire=retry_wire
    )
    for name in browsers:
        testbed.new_round()
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        ok = result.success and result.ech_retried and result.ech_accepted
        matrix.set("(3) Mismatched key", name, FULL if ok else NONE)

    # -- Split Mode --------------------------------------------------------------------------
    backend_ip, facing_ip = "1.1.1.1", "2.2.2.2"
    public_name = "client-facing.example"
    split_km = _split_manager(public_name)
    encoded = base64.b64encode(split_km.published_wire(0)).decode()
    testbed.set_zone_records([
        ("@", "HTTPS", f"1 . alpn=h2 ech={encoded}"),
        ("@", "A", backend_ip),
        (public_name + ".", "A", facing_ip),
    ])
    testbed.clear_endpoints()
    # Backend: has the content and a cert for the test domain, but no ECH keys.
    backend = None
    testbed.network.unregister_tcp(backend_ip, 443)
    backend = testbed.install_web_server(ip=backend_ip, cert_names=(TEST_DOMAIN,))
    # Client-facing server: would decrypt and forward — but no browser ever
    # connects to it (they skip the public_name A lookup).
    testbed.network.unregister_tcp(facing_ip, 443)
    testbed.install_web_server(
        ip=facing_ip,
        cert_names=(public_name,),
        ech_keypairs=split_km.active_keypairs(0),
        backends={TEST_DOMAIN: backend},
    )
    for name in browsers:
        testbed.new_round()
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        matrix.set("Split Mode Support", name, FULL if result.success else NONE)
        if not result.success and result.error:
            matrix.notes.append(f"{name}: {result.error}")
    return matrix


def _split_manager(public_name: str):
    from ..ech.keys import ECHKeyManager

    return ECHKeyManager(public_name, seed=b"split-mode")


def _wire_for_generation(km, generation: int) -> bytes:
    from ..ech.config import ECHConfigList

    return ECHConfigList([km.config_for_generation(generation)]).to_wire()


# ---------------------------------------------------------------------------
# Full tables
# ---------------------------------------------------------------------------

def build_table6() -> SupportMatrix:
    """Table 6: the full HTTPS RR support matrix."""
    testbed = Testbed()
    matrix = SupportMatrix("Table 6: HTTPS RR support", tuple(p.name for p in ALL_BROWSERS))
    for source in (
        run_url_form_experiment(testbed),
        run_alias_mode_experiment(testbed),
        run_service_target_experiment(testbed),
        run_port_experiment(testbed)[0],
        run_alpn_experiment(testbed),
        run_hint_experiment(testbed)[0],
    ):
        for row, cells in source.rows.items():
            for browser, level in cells.items():
                matrix.set(row, browser, level)
    return matrix


def build_table7() -> SupportMatrix:
    """Table 7: ECH support and failover."""
    return run_ech_experiments(Testbed())
