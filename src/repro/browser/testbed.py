"""The §5 controlled testbed.

Reproduces the paper's setup (Figure 6): a test domain with its own
authoritative name server (the paper's BIND9 on AWS), an ECH-capable web
server (the paper's patched OpenSSL+Nginx), and a public recursive
resolver the browsers are pointed at. Each experiment reconfigures the
zone/servers, clears caches, and drives the browsers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dnscore import rdtypes
from ..dnscore.names import Name
from ..ech.hpke import HpkeKeyPair
from ..ech.keys import ECHKeyManager
from ..resolver.authoritative import AuthoritativeServer
from ..resolver.clock import SimClock
from ..resolver.doh import DohClient, DohServer
from ..resolver.network import Network
from ..resolver.recursive import RecursiveResolver
from ..resolver.stub import ResolverFrontend
from ..zones.zone import Zone
from .engine import Browser
from .policy import ALL_BROWSERS, BrowserPolicy
from .tls import Certificate, WebServer

TEST_DOMAIN = "svcb-test.example"
ROOT_SERVER_IP = "198.41.0.4"
AUTH_SERVER_IP = "52.20.30.40"  # the paper's AWS-hosted BIND9
WEB_SERVER_IP = "1.2.3.4"
ALT_WEB_SERVER_IP = "2.2.3.4"
RESOLVER_IP = "8.8.8.8"
RECORD_TTL = 60  # the paper uses 60s TTLs to force refreshes


class HttpEndpoint:
    """A plaintext HTTP listener (port 80). Its only job is to prove a
    browser connected without TLS."""

    def __init__(self, name: str):
        self.name = name
        self.request_count = 0

    def handle_connection(self, client_hello) -> str:
        self.request_count += 1
        return f"HTTP/1.1 200 OK from {self.name}"


class Testbed:
    """One §5 experiment environment."""

    __test__ = False  # not a pytest collection target

    def __init__(self):
        self.clock = SimClock(1_700_000_000)
        self.network = Network()
        self._build_dns()
        self.browsers: Dict[str, Browser] = {}
        for policy in ALL_BROWSERS:
            self.browsers[policy.name] = Browser(
                policy,
                self.network,
                RESOLVER_IP,
                doh_enabled=True,
                # Firefox resolves via DoH at the public resolver (§5).
                doh_client=self.doh_client if policy.requires_doh else None,
            )

    # -- DNS infrastructure --------------------------------------------------

    def _build_dns(self) -> None:
        self.domain = Name.from_text(TEST_DOMAIN + ".")
        root = Zone(Name.root(), default_ttl=RECORD_TTL)
        root.ensure_soa(Name.from_text("a.root-servers.net."))
        root.delegate(self.domain, [Name.from_text(f"ns1.{TEST_DOMAIN}.")])
        root.add_record(f"ns1.{TEST_DOMAIN}.", "A", AUTH_SERVER_IP)
        root_server = AuthoritativeServer("root")
        root_server.tree.add_zone(root)
        self.network.register_dns(ROOT_SERVER_IP, root_server)
        self.root_zone = root

        self.auth_server = AuthoritativeServer("testbed-bind9")
        self.network.register_dns(AUTH_SERVER_IP, self.auth_server)
        self.zone: Optional[Zone] = None
        self.resolver = RecursiveResolver(
            "google-public", self.network, [ROOT_SERVER_IP], self.clock
        )
        self.network.register_dns(RESOLVER_IP, ResolverFrontend(self.resolver))
        self.doh_server = DohServer(self.resolver)
        self.doh_client = DohClient(self.doh_server, url="https://dns.google/dns-query")

    def set_zone_records(self, records: Sequence[Tuple[str, str, str]]) -> None:
        """Replace the test zone. *records* are (owner, type, rdata-text)
        with owner relative names allowed ("@" for the apex)."""
        zone = Zone(self.domain, default_ttl=RECORD_TTL)
        zone.ensure_soa(Name.from_text(f"ns1.{TEST_DOMAIN}."))
        zone.add_record(f"{TEST_DOMAIN}.", "NS", f"ns1.{TEST_DOMAIN}.")
        zone.add_record(f"ns1.{TEST_DOMAIN}.", "A", AUTH_SERVER_IP)
        for owner, rdtype_text, rdata_text in records:
            if owner in ("@", ""):
                owner = TEST_DOMAIN + "."
            elif not owner.endswith("."):
                owner = f"{owner}.{TEST_DOMAIN}."
            if not Name.from_text(owner).is_subdomain_of(self.domain):
                # Out-of-zone names (e.g. a Split Mode client-facing server
                # in another apex) live in the root-served namespace.
                self.root_zone.add_record(owner, rdtype_text, rdata_text)
                continue
            zone.add_record(owner, rdtype_text, rdata_text)
        self.zone = zone
        self.auth_server.tree = type(self.auth_server.tree)()
        self.auth_server.tree.add_zone(zone)
        self.new_round()

    # -- servers -------------------------------------------------------------------

    def clear_endpoints(self) -> None:
        for ip in (WEB_SERVER_IP, ALT_WEB_SERVER_IP):
            for port in (80, 443, 8443):
                self.network.unregister_tcp(ip, port)

    def install_web_server(
        self,
        ip: str = WEB_SERVER_IP,
        port: int = 443,
        cert_names: Sequence[str] = (TEST_DOMAIN,),
        alpn: Sequence[str] = ("h2", "http/1.1"),
        ech_keypairs: Sequence[HpkeKeyPair] = (),
        ech_retry_wire: Optional[bytes] = None,
        retry_enabled: bool = True,
        backends: Optional[Dict[str, WebServer]] = None,
        with_http: bool = True,
    ) -> WebServer:
        server = WebServer(
            name=f"web@{ip}:{port}",
            certificate=Certificate(tuple(cert_names)),
            alpn=alpn,
            ech_keypairs=ech_keypairs,
            ech_retry_wire=ech_retry_wire,
            retry_enabled=retry_enabled,
            backends=backends,
        )
        self.network.register_tcp(ip, port, server)
        if with_http:
            self.network.register_tcp(ip, 80, HttpEndpoint(f"http@{ip}"))
        return server

    # -- per-round hygiene (the paper clears caches between rounds) ------------------

    def new_round(self) -> None:
        """Clear DNS caches and browser history; let TTLs expire."""
        self.clock.advance(RECORD_TTL + 5)
        self.resolver.flush_cache()
        for browser in self.browsers.values():
            browser.dns_log.clear()

    def browser(self, name: str) -> Browser:
        return self.browsers[name]

    # -- convenience used by most experiments -------------------------------------------

    def simple_service_zone(self, https_rdata: str = "1 . alpn=h2", a_ip: str = WEB_SERVER_IP) -> None:
        self.set_zone_records([
            ("@", "HTTPS", https_rdata),
            ("@", "A", a_ip),
        ])

    def make_ech_manager(self) -> ECHKeyManager:
        return ECHKeyManager(f"cover.{TEST_DOMAIN}", seed=b"testbed")
