"""The browser connection engine.

Executes a :class:`~repro.browser.policy.BrowserPolicy` against the
simulated network: DNS resolution (HTTPS RR + A), scheme upgrade
decision, SVCB parameter handling (TargetName, port, IP hints, ALPN),
ECH offer/retry/fallback, and the per-browser failover ladders — i.e.
everything the paper's §5 testbed observes from outside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dnscore import rdtypes
from ..dnscore.message import Message
from ..dnscore.names import Name
from ..dnscore.rdata import HTTPSRdata
from ..ech.config import try_parse_config_list
from ..resolver.network import Network, NetworkError
from ..svcb.params import ALPN_HTTP11
from .policy import (
    BrowserPolicy,
    FAILOVER_DELAYED,
    FAILOVER_IMMEDIATE,
    FAILOVER_NONE,
    MALFORMED_IGNORE,
)
from .tls import ClientHello, TlsResult, WebServer, seal_inner_hello


@dataclass
class NavigationResult:
    """What the testbed observes for one page load."""

    url: str
    browser: str
    success: bool = False
    scheme: str = ""
    queried_https_rr: bool = False
    used_https_rr: bool = False
    followed_target: Optional[str] = None
    ip: Optional[str] = None
    port: Optional[int] = None
    sni: Optional[str] = None
    alpn: Optional[str] = None
    used_ip_hints: bool = False
    failover_used: bool = False
    failover_delayed: bool = False
    ech_offered: bool = False
    ech_accepted: bool = False
    ech_retried: bool = False
    ech_grease_sent: bool = False
    error: Optional[str] = None
    events: List[str] = field(default_factory=list)

    def log(self, message: str) -> None:
        self.events.append(message)


def _parse_url(url: str) -> Tuple[Optional[str], str, Optional[int]]:
    scheme: Optional[str] = None
    rest = url
    if "://" in url:
        scheme, rest = url.split("://", 1)
        scheme = scheme.lower()
    host, _, maybe_port = rest.partition("/")[0].partition(":")
    port = int(maybe_port) if maybe_port else None
    return scheme, host, port


class Browser:
    """One browser instance on one machine."""

    def __init__(
        self,
        policy: BrowserPolicy,
        network: Network,
        resolver_ip: str,
        os_name: Optional[str] = None,
        doh_enabled: bool = True,
        doh_client=None,
    ):
        self.policy = policy
        self.network = network
        self.resolver_ip = resolver_ip
        self.os_name = os_name or policy.os_list[0]
        self.doh_enabled = doh_enabled
        # DoH-requiring browsers (Firefox) send their queries through an
        # RFC 8484 client when one is configured (the paper points it at
        # https://dns.google/dns-query).
        self.doh_client = doh_client
        self.dns_log: List[Tuple[str, int]] = []
        self._msg_id = 0

    # -- DNS ----------------------------------------------------------------

    def _dns_query(self, name: Name, rdtype: int) -> Message:
        self._msg_id += 1
        self.dns_log.append((name.to_text(omit_final_dot=True), rdtype))
        if self.doh_client is not None and self.doh_enabled and self.policy.requires_doh:
            return self.doh_client.query(name, rdtype)
        query = Message.make_query(name, rdtype, self._msg_id)
        return self.network.send_dns_query(self.resolver_ip, query)

    def _resolve_a(self, name: Name) -> List[str]:
        response = self._dns_query(name, rdtypes.A)
        return [
            rd.address
            for rrset in response.answers
            if rrset.rdtype == rdtypes.A
            for rd in rrset
        ]

    def _fetch_https_rr(self, name: Name) -> List[HTTPSRdata]:
        response = self._dns_query(name, rdtypes.HTTPS)
        rrset = response.get_answer(name, rdtypes.HTTPS)
        if rrset is None:
            return []
        return [rd for rd in rrset if isinstance(rd, HTTPSRdata)]

    # -- navigation -----------------------------------------------------------

    def navigate(self, url: str) -> NavigationResult:
        policy = self.policy
        scheme, host, explicit_port = _parse_url(url)
        result = NavigationResult(url=url, browser=policy.name)
        name = Name.from_text(host if host.endswith(".") else host + ".")

        # Every tested browser queries both HTTPS and A up front (§5.1),
        # Firefox only when DoH is on.
        records: List[HTTPSRdata] = []
        if policy.supports_https_rr_in(self.doh_enabled):
            result.queried_https_rr = True
            records = self._fetch_https_rr(name)
        a_addresses = self._resolve_a(name)

        record = self._select_record(records)
        if record is not None and policy.ignores_empty_alpn_record:
            if record.is_service_mode and record.params.alpn is None and len(record.params) == 0:
                result.log("record with empty SvcParams ignored (Chromium behaviour)")
                record = None

        use_https = scheme == "https" or (
            record is not None
            and (policy.upgrades_plain_url if scheme is None else policy.upgrades_http_url)
        )
        if scheme in (None, "http") and not use_https:
            return self._plain_http(result, host, a_addresses, explicit_port)

        result.scheme = "https"
        if record is None:
            return self._https_without_record(result, host, a_addresses, explicit_port)

        result.used_https_rr = True
        return self._https_with_record(result, host, name, record, a_addresses, explicit_port)

    # -- plain HTTP path -----------------------------------------------------------

    def _plain_http(
        self, result: NavigationResult, host: str, addresses: List[str], explicit_port: Optional[int]
    ) -> NavigationResult:
        result.scheme = "http"
        port = explicit_port or 80
        if not addresses:
            result.error = "dns_no_address"
            return result
        try:
            server = self.network.connect_tcp(addresses[0], port)
        except NetworkError as exc:
            result.error = f"connect_failed: {exc}"
            return result
        result.success = True
        result.ip, result.port = addresses[0], port
        result.log(f"plain HTTP to {addresses[0]}:{port} ({type(server).__name__})")
        return result

    def _https_without_record(
        self, result: NavigationResult, host: str, addresses: List[str], explicit_port: Optional[int]
    ) -> NavigationResult:
        if not addresses:
            result.error = "dns_no_address"
            return result
        return self._tls_ladder(
            result,
            sni=host,
            candidate_ips=[(addresses, False)],
            port=explicit_port or 443,
            alpn=("h2", ALPN_HTTP11),
            ech_wire=None,
        )

    # -- HTTPS-RR-driven path ------------------------------------------------------------

    def _select_record(self, records: List[HTTPSRdata]) -> Optional[HTTPSRdata]:
        if not records:
            return None
        service = sorted(
            (r for r in records if r.is_service_mode), key=lambda r: r.priority
        )
        if service:
            return service[0]
        return records[0]  # AliasMode

    def _https_with_record(
        self,
        result: NavigationResult,
        host: str,
        name: Name,
        record: HTTPSRdata,
        a_addresses: List[str],
        explicit_port: Optional[int],
    ) -> NavigationResult:
        policy = self.policy

        # -- AliasMode ------------------------------------------------------
        if record.is_alias_mode:
            if policy.follows_alias_target and record.target != Name.root():
                target = record.target
                result.followed_target = target.to_text(omit_final_dot=True)
                addresses = self._resolve_a(target)
                result.log(f"AliasMode: following TargetName {result.followed_target}")
                if not addresses:
                    result.error = "alias_target_unresolvable"
                    return result
                return self._tls_ladder(
                    result, host, [(addresses, False)], explicit_port or 443,
                    ("h2", ALPN_HTTP11), None,
                )
            # Chrome/Edge/Firefox: ignore the alias, use the owner's A.
            if not a_addresses:
                result.error = "dns_no_address"
                result.log("AliasMode TargetName not followed; owner has no A record")
                return result
            return self._tls_ladder(
                result, host, [(a_addresses, False)], explicit_port or 443,
                ("h2", ALPN_HTTP11), None,
            )

        # -- ServiceMode -------------------------------------------------------
        target_name = record.effective_target(name)
        target_addresses = a_addresses
        if target_name != name:
            if policy.follows_service_target:
                result.followed_target = target_name.to_text(omit_final_dot=True)
                target_addresses = self._resolve_a(target_name)
                result.log(f"ServiceMode: following TargetName {result.followed_target}")
            else:
                result.log("ServiceMode TargetName ignored (connects to owner)")

        port = explicit_port or 443
        if record.params.port is not None and policy.uses_port:
            port = record.params.port
            result.log(f"using SvcParam port={port}")

        alpn = record.params.effective_alpn() if policy.uses_alpn else ("h2", ALPN_HTTP11)

        hints = list(record.params.ipv4hint)
        candidates: List[Tuple[List[str], bool]] = []
        if policy.prefers_ip_hints and hints:
            candidates.append((hints, True))
            if target_addresses:
                candidates.append((target_addresses, False))
        else:
            if target_addresses:
                candidates.append((target_addresses, False))
            if hints and policy.hint_failover != FAILOVER_NONE:
                candidates.append((hints, True))
        if not candidates and hints:
            # No A records at all: hints are the only way in.
            candidates.append((hints, True))
        if not candidates:
            result.error = "dns_no_address"
            return result

        ech_wire = record.params.ech if self.policy.supports_ech else None
        if record.params.ech is not None and not self.policy.supports_ech:
            result.log("ech parameter present but browser lacks ECH support")
        return self._tls_ladder(result, host, candidates, port, alpn, ech_wire)

    # -- connection ladder ------------------------------------------------------------------

    def _tls_ladder(
        self,
        result: NavigationResult,
        sni: str,
        candidate_ips: List[Tuple[List[str], bool]],
        port: int,
        alpn: Tuple[str, ...],
        ech_wire: Optional[bytes],
    ) -> NavigationResult:
        policy = self.policy

        # ECH preparation.
        ech_sealed: Optional[Tuple[bytes, int, str]] = None
        if ech_wire is not None:
            ech_sealed = seal_inner_hello(ech_wire, sni)
            if ech_sealed is None:
                if policy.malformed_ech == MALFORMED_IGNORE:
                    result.log("malformed ECH config ignored; standard TLS")
                    ech_wire = None
                else:
                    result.error = "ech_malformed_hard_fail"
                    result.log("malformed ECH config: connection abandoned after SYN")
                    return result

        ports_to_try = [port]
        if port != 443 and policy.port_failover != FAILOVER_NONE:
            ports_to_try.append(443)

        attempt = 0
        for try_port in ports_to_try:
            for addresses, is_hint in candidate_ips:
                for ip in addresses:
                    attempt += 1
                    if attempt > 1:
                        result.failover_used = True
                        if policy.hint_failover == FAILOVER_DELAYED or policy.port_failover == FAILOVER_DELAYED:
                            result.failover_delayed = True
                            result.log("waiting before retrying alternate address")
                    outcome = self._attempt_tls(result, ip, try_port, sni, alpn, ech_wire, ech_sealed)
                    if outcome is not None:
                        return outcome
                if addresses and policy.hint_failover == FAILOVER_NONE and policy.port_failover == FAILOVER_NONE:
                    # Hard-failure browsers stop after the first address set.
                    result.error = result.error or "connect_failed_hard"
                    return result
        result.error = result.error or "all_endpoints_failed"
        return result

    def _attempt_tls(
        self,
        result: NavigationResult,
        ip: str,
        port: int,
        sni: str,
        alpn: Tuple[str, ...],
        ech_wire: Optional[bytes],
        ech_sealed: Optional[Tuple[bytes, int, str]],
    ) -> Optional[NavigationResult]:
        try:
            server = self.network.connect_tcp(ip, port)
        except NetworkError as exc:
            result.log(f"TCP connect to {ip}:{port} failed: {exc}")
            result.error = f"connect_failed: {exc}"
            return None
        if not isinstance(server, WebServer):
            result.error = "not_a_tls_endpoint"
            return None

        if ech_sealed is not None and ech_wire is not None:
            payload, config_id, public_name = ech_sealed
            hello = ClientHello(
                sni=public_name, alpn=tuple(alpn), ech_payload=payload, ech_config_id=config_id
            )
            result.ech_offered = True
        elif self.policy.supports_ech:
            # No (usable) ECH config: ECH-capable browsers send a GREASE
            # extension so real ECH traffic doesn't stand out.
            hello = ClientHello(sni=sni, alpn=tuple(alpn), ech_is_grease=True)
            result.ech_grease_sent = True
        else:
            hello = ClientHello(sni=sni, alpn=tuple(alpn))
        tls = server.handle_connection(hello)

        if tls.ech_offered and not tls.ech_accepted:
            if tls.retry_configs is not None and self.policy.supports_ech_retry:
                result.ech_retried = True
                result.log("server rejected ECH; retrying with retry_configs")
                retried = seal_inner_hello(tls.retry_configs, sni)
                if retried is not None:
                    payload, config_id, public_name = retried
                    hello = ClientHello(
                        sni=public_name, alpn=tuple(alpn), ech_payload=payload,
                        ech_config_id=config_id,
                    )
                    tls = server.handle_connection(hello)
            elif tls.cert_valid_for_sni:
                # The outer handshake authenticated as the public name: the
                # client may securely disable ECH and retry without it
                # (unilateral-removal fallback, §5.3.1-(1)).
                result.log("ECH not accepted; authenticated fallback to standard TLS")
                tls = server.handle_connection(ClientHello(sni=sni, alpn=tuple(alpn)))
            else:
                # The server could neither decrypt the inner hello nor
                # authenticate as the public name — the Split Mode failure
                # (§5.3.2): browsers hard-fail on the certificate.
                result.error = "ERR_ECH_FALLBACK_CERTIFICATE_INVALID"
                result.log(
                    f"TLS to {ip}:{port}: ECH fallback certificate invalid "
                    f"(cert from {tls.served_by} does not cover {hello.sni})"
                )
                return result

        if not tls.connected:
            if tls.error == "certificate_name_mismatch" and tls.ech_offered:
                result.error = "ERR_ECH_FALLBACK_CERTIFICATE_INVALID"
            else:
                result.error = tls.error
            result.log(f"TLS to {ip}:{port} failed: {result.error}")
            # Certificate errors are terminal, not failover-able.
            if tls.error == "certificate_name_mismatch":
                return result
            return None

        result.success = True
        result.ip = ip
        result.port = port
        result.sni = tls.sni_used
        result.alpn = tls.alpn
        result.ech_accepted = tls.ech_accepted
        if self.policy.h3_h2_compat_retry and tls.alpn == "h3":
            result.log("compatibility follow-up: extra h2 connection attempt")
        return result
