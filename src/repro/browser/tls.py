"""TLS handshake and web-server simulation for the client-side testbed.

Models exactly the handshake surface the §5 experiments exercise:
SNI-based certificate selection/validation, ALPN negotiation, and the
ECH acceptance / rejection / retry-configs state machine (draft-13
§6.1.6), including Split Mode forwarding by the client-facing server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ech.config import ECHConfigList, try_parse_config_list
from ..ech.hpke import HpkeError, HpkeKeyPair, open_, seal

ECH_INFO = b"tls ech draft-13"


@dataclass
class Certificate:
    """A server certificate: the DNS names it covers."""

    names: Tuple[str, ...]

    def covers(self, sni: str) -> bool:
        sni = sni.rstrip(".").lower()
        for name in self.names:
            name = name.rstrip(".").lower()
            if name == sni:
                return True
            if name.startswith("*.") and sni.endswith(name[1:]):
                return True
        return False


@dataclass
class ClientHello:
    """The (outer) ClientHello a browser sends."""

    sni: str
    alpn: Tuple[str, ...]
    ech_payload: Optional[bytes] = None  # sealed ClientHelloInner
    ech_config_id: int = 0
    ech_is_grease: bool = False  # a GREASE ECH extension (draft-13 §6.2)
    inner_sni_plain: Optional[str] = None  # only for non-ECH connections: None


@dataclass
class TlsResult:
    """Outcome of one handshake attempt."""

    connected: bool
    sni_used: str = ""
    alpn: Optional[str] = None
    certificate: Optional[Certificate] = None
    cert_valid_for_sni: bool = False
    ech_offered: bool = False
    ech_accepted: bool = False
    retry_configs: Optional[bytes] = None
    error: Optional[str] = None
    served_by: str = ""


def seal_inner_hello(config_list_wire: bytes, inner_sni: str) -> Optional[Tuple[bytes, int, str]]:
    """Client side: encrypt the inner SNI to the ECHConfig's key.

    Returns (payload, config_id, public_name) or None when the config
    list cannot be parsed (malformed — the browser decides what then).
    """
    config_list = try_parse_config_list(config_list_wire)
    if config_list is None:
        return None
    config = config_list.primary()
    payload = seal(
        config.public_key,
        ECH_INFO,
        aad=config.public_name.encode(),
        plaintext=inner_sni.encode(),
    )
    return payload, config.config_id, config.public_name


class WebServer:
    """An HTTPS endpoint: certificate, ALPN set, optional ECH keys.

    ``ech_keypairs`` are the HPKE keys the server will try for
    decryption; ``ech_retry_wire`` is the ECHConfigList handed back as
    retry_configs on decryption failure (the draft discourages disabling
    retry; ``retry_enabled=False`` models a misbehaving server).
    """

    def __init__(
        self,
        name: str,
        certificate: Certificate,
        alpn: Sequence[str] = ("h2", "http/1.1"),
        ech_keypairs: Sequence[HpkeKeyPair] = (),
        ech_retry_wire: Optional[bytes] = None,
        retry_enabled: bool = True,
        backends: Optional[Dict[str, "WebServer"]] = None,
    ):
        self.name = name
        self.certificate = certificate
        self.alpn = tuple(alpn)
        self.ech_keypairs = list(ech_keypairs)
        self.ech_retry_wire = ech_retry_wire
        self.retry_enabled = retry_enabled
        # Split-mode: inner-SNI -> backend server this client-facing
        # server forwards to.
        self.backends = backends or {}
        self.handshake_log: List[ClientHello] = []

    # -- handshake --------------------------------------------------------

    def handle_connection(self, client_hello: ClientHello) -> TlsResult:
        self.handshake_log.append(client_hello)
        if client_hello.ech_is_grease:
            # Servers ignore GREASE ECH and proceed with the outer hello
            # (they MUST NOT send retry_configs for it).
            return self._plain_handshake(client_hello)
        if client_hello.ech_payload is not None and self.ech_keypairs:
            return self._handle_ech(client_hello)
        # No ECH in play (or server has no keys → extension ignored,
        # standard TLS against the outer SNI).
        return self._plain_handshake(client_hello, ech_offered=client_hello.ech_payload is not None)

    def _plain_handshake(self, client_hello: ClientHello, ech_offered: bool = False) -> TlsResult:
        alpn = self._negotiate_alpn(client_hello.alpn)
        if alpn is None and client_hello.alpn:
            return TlsResult(
                connected=False,
                sni_used=client_hello.sni,
                ech_offered=ech_offered,
                error="no_application_protocol",
                served_by=self.name,
            )
        valid = self.certificate.covers(client_hello.sni)
        return TlsResult(
            connected=valid,
            sni_used=client_hello.sni,
            alpn=alpn,
            certificate=self.certificate,
            cert_valid_for_sni=valid,
            ech_offered=ech_offered,
            ech_accepted=False,
            error=None if valid else "certificate_name_mismatch",
            served_by=self.name,
        )

    def _handle_ech(self, client_hello: ClientHello) -> TlsResult:
        inner_sni = None
        for keypair in self.ech_keypairs:
            try:
                inner_sni = open_(
                    keypair,
                    ECH_INFO,
                    aad=client_hello.sni.encode(),
                    sealed=client_hello.ech_payload,
                ).decode()
                break
            except HpkeError:
                continue
        if inner_sni is None:
            # Decryption failure: reject, optionally offering retry configs.
            result = self._plain_handshake(client_hello, ech_offered=True)
            result.ech_accepted = False
            if self.retry_enabled and self.ech_retry_wire is not None:
                result.retry_configs = self.ech_retry_wire
            return result
        # Successful decryption: route to the intended (inner) service.
        backend = self.backends.get(inner_sni.rstrip(".").lower())
        target = backend if backend is not None else self
        alpn = target._negotiate_alpn(client_hello.alpn)
        valid = target.certificate.covers(inner_sni)
        return TlsResult(
            connected=valid and (alpn is not None or not client_hello.alpn),
            sni_used=inner_sni,
            alpn=alpn,
            certificate=target.certificate,
            cert_valid_for_sni=valid,
            ech_offered=True,
            ech_accepted=True,
            error=None if valid else "certificate_name_mismatch",
            served_by=target.name,
        )

    def _negotiate_alpn(self, offered: Tuple[str, ...]) -> Optional[str]:
        if not offered:
            return self.alpn[0] if self.alpn else None
        for protocol in offered:
            if protocol in self.alpn:
                return protocol
        return None

    def __repr__(self) -> str:
        return f"WebServer({self.name}, alpn={self.alpn})"
