"""repro — an end-to-end reproduction of "Exploring the Ecosystem of DNS
HTTPS Resource Records" (IMC 2024).

Layers (bottom-up):

* :mod:`repro.dnscore` / :mod:`repro.svcb` — DNS wire format and the
  RFC 9460 SVCB/HTTPS record type with typed SvcParams;
* :mod:`repro.ech` — ECHConfig (draft-13) + simulated HPKE + key rotation;
* :mod:`repro.dnssec` — keys, signing, DS, chain validation;
* :mod:`repro.zones` / :mod:`repro.resolver` — zones, authoritative and
  recursive (caching, validating) resolution over a simulated network;
* :mod:`repro.simnet` / :mod:`repro.whois` — the simulated Internet:
  20k-domain Tranco-like population, provider models, study timeline;
* :mod:`repro.scanner` — the paper's measurement framework (§4.1);
* :mod:`repro.study` — the unified Study API: declarative
  StudySpec/ExecutionPlan compiled into a run/resume/release session
  (the front door for running measurement studies);
* :mod:`repro.analysis` — the §4 server-side analyses (every table/figure);
* :mod:`repro.browser` — the §5 client-side testbed and browser models;
* :mod:`repro.reporting` — output rendering for the benchmark harness.
"""

__version__ = "1.0.0"

from . import dnscore, svcb  # noqa: F401  (core layers are always importable)

__all__ = ["dnscore", "svcb", "__version__"]
