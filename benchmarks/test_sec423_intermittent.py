"""§4.2.3 — inconsistent use of HTTPS records and its causes."""

from conftest import scale_note

from repro.analysis import intermittent
from repro.reporting import render_comparison


def test_sec423_intermittent(bench_dataset, bench_config, bench_world, benchmark, report):
    result = benchmark(intermittent.analyze_intermittency, bench_dataset)
    disagreements = intermittent.direct_authoritative_check(bench_world, bench_dataset)

    report(
        render_comparison(
            "§4.2.3: intermittent HTTPS records (NS window)",
            [
                ("intermittent apex domains", "4,598 (full scale)", result.intermittent_domains),
                ("same NS throughout", "2,719 (59%)", result.same_ns_domains),
                (
                    "of those, Cloudflare-only",
                    "2,673 (98.3%)",
                    f"{result.same_ns_cloudflare_only} ({100 * result.same_ns_cloudflare_share:.1f}%)",
                ),
                ("same NS, non-CF/mixed set", "46 (1.7%)", result.same_ns_other),
                ("mixed NS on deactivation", "1,593", result.mixed_ns_on_deactivation),
                ("lost HTTPS on NS change", "236 (oversampled x6 here)", result.lost_on_ns_change),
                ("no NS when deactivated", "20 (oversampled x6 here)", result.missing_ns_on_deactivation),
                (
                    "domains whose auth servers disagree",
                    "6 (direct-query experiment)",
                    len(disagreements),
                ),
            ],
        )
        + "\n  note: our mixed-provider domains keep both NS sets published, so they"
        "\n  surface in the 'same NS, non-CF/mixed' row rather than the paper's"
        "\n  mixed-on-deactivation bucket (a modelling difference, see DESIGN.md)."
        + "\n  " + scale_note(bench_config)
    )

    assert result.intermittent_domains >= 10
    assert result.same_ns_domains >= result.intermittent_domains * 0.3
    assert result.same_ns_cloudflare_share > 0.8, (
        "proxied-toggle on Cloudflare NS dominates, as in the paper"
    )
    assert result.same_ns_other >= 1, "mixed-provider cohort must surface"
    assert result.lost_on_ns_change >= 1, "NS-change deactivations must surface"
    # The direct-query experiment finds mixed-provider domains where one
    # authoritative server returns the record and another does not.
    for answers in disagreements.values():
        assert True in answers.values() and False in answers.values()
