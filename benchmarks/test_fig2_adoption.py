"""Figure 2 — HTTPS RR adoption rates over time (dynamic vs overlapping,
apex vs www)."""

from repro.analysis import adoption
from repro.reporting import render_comparison, render_series


def test_fig2_adoption(bench_dataset, benchmark, report):
    dynamic = benchmark(adoption.dynamic_adoption, bench_dataset)
    overlapping = adoption.overlapping_adoption(bench_dataset)
    summary = adoption.summarize(bench_dataset)

    text = "\n\n".join(
        [
            render_comparison(
                "Figure 2: HTTPS RR adoption",
                [
                    ("band of all rates", "20-27%", f"{summary.dynamic_apex_start:.1f}-{summary.dynamic_apex_end:.1f}%"),
                    ("dynamic apex trend", "rising", "rising" if summary.dynamic_rising else "NOT rising"),
                    (
                        "overlapping apex trend",
                        "stable/declining",
                        "stable/declining" if summary.overlapping_stable_or_declining else "rising",
                    ),
                    ("overlapping apex mean (phase 2)", "~23%", f"{summary.overlapping_apex_mean_phase2:.1f}%"),
                ],
            ),
            render_series("Fig 2a: dynamic apex %", dynamic["apex"].points),
            render_series("Fig 2a: dynamic www %", dynamic["www"].points),
            render_series("Fig 2b: overlapping apex %", overlapping["apex"].points),
            render_series("Fig 2b: overlapping www %", overlapping["www"].points),
        ]
    )
    report(text)

    assert summary.in_paper_band
    assert summary.dynamic_rising
    assert summary.overlapping_stable_or_declining
