"""Wall-clock comparison: sequential campaign vs the sharded pipeline.

Runs the same full-study campaign twice — once through the sequential
``run_campaign`` loop and once through ``ParallelCampaignRunner`` — then
verifies the two datasets are equal and records both timings in
``pipeline_walltime.txt`` under the benchmark results directory
(untracked ``.bench_results/`` unless ``REPRO_BENCH_RECORD=1`` — see
``_results.py``).

Not collected by pytest (no ``test_`` prefix) because it deliberately
rebuilds the campaign twice without the cache; run it directly:

    PYTHONPATH=src python benchmarks/pipeline_walltime.py --population 6000
"""

from __future__ import annotations

import argparse
import os
import time

from _results import results_path
from repro.scanner import ParallelCampaignRunner, run_campaign
from repro.simnet import SimConfig, World

RESULTS_PATH = results_path("pipeline_walltime.txt")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=6000)
    parser.add_argument("--day-step", type=int, default=7)
    parser.add_argument("--ech-sample", type=int, default=200)
    parser.add_argument("--workers", type=int, default=max(2, os.cpu_count() or 2))
    args = parser.parse_args()

    config = SimConfig(population=args.population)

    started = time.perf_counter()
    sequential = run_campaign(
        World(config), day_step=args.day_step, ech_sample=args.ech_sample
    )
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = ParallelCampaignRunner(
        config,
        workers=args.workers,
        day_step=args.day_step,
        ech_sample=args.ech_sample,
    ).run()
    parallel_s = time.perf_counter() - started

    equal = parallel == sequential
    speedup = sequential_s / parallel_s if parallel_s else float("inf")
    lines = [
        "Sharded scan pipeline: wall-clock comparison",
        f"  population {config.population}, day_step {args.day_step}, "
        f"ech_sample {args.ech_sample}",
        f"  host CPU cores available: {os.cpu_count()}",
        "",
        f"  sequential run_campaign:            {sequential_s:8.1f} s",
        f"  ParallelCampaignRunner (workers={args.workers}): {parallel_s:8.1f} s",
        f"  speedup: {speedup:.2f}x",
        f"  datasets equal: {equal}",
        "",
        "  Sharding is by domain; each worker rebuilds its own World and",
        "  scans 1/N of every day's ranked list, so the expected speedup",
        "  approaches min(workers, cores) on multi-core hosts. On a",
        "  single-core host the comparison records the sharding overhead",
        "  (N world builds + snapshot merge) instead.",
    ]
    text = "\n".join(lines)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write(text + "\n")
    print(text)
    return 0 if equal else 1


if __name__ == "__main__":
    raise SystemExit(main())
