"""Figure 3 — daily number of distinct non-Cloudflare DNS providers with
HTTPS-publishing customer domains."""

from conftest import scale_note

from repro.analysis import nameservers
from repro.reporting import render_series


def test_fig3_provider_count(bench_dataset, bench_config, benchmark, report):
    points = benchmark(nameservers.fig3_noncf_provider_counts, bench_dataset)
    total = nameservers.distinct_noncf_provider_count(bench_dataset)
    report(
        render_series(
            "Figure 3: # distinct non-Cloudflare providers (paper: 55-85 daily, rising; 244 total)",
            [(day, float(count)) for day, count in points],
            unit="",
        )
        + f"\n  total distinct over window: {total}\n  " + scale_note(bench_config)
    )

    counts = [count for _day, count in points]
    assert all(count >= 3 for count in counts)
    # Upward trajectory: the late-window mean exceeds the early-window mean.
    half = len(counts) // 2
    assert sum(counts[half:]) / (len(counts) - half) >= sum(counts[:half]) / half
