"""§4.3.5 — connectivity of domains with mismatched IP hints (TLS probes,
Jan 24 – Mar 31, 2024)."""

from conftest import scale_note

from repro.analysis import hints
from repro.reporting import render_comparison


def test_sec435_connectivity(bench_dataset, bench_config, benchmark, report):
    result = benchmark(hints.connectivity_report, bench_dataset)

    report(
        render_comparison(
            "§4.3.5: TLS reachability of mismatched domains",
            [
                ("mismatch occurrences (domain-days)", "1,022 (full scale)", result.occurrences),
                ("distinct domains", "317 (full scale)", result.distinct_domains),
                ("domains with unreachable address", "193", result.domains_with_unreachable),
                ("reachable only via IP hints", "117", result.hint_only_reachable),
                ("reachable only via A record", "59", result.a_only_reachable),
                ("unreachable both ways", "17", result.neither_reachable),
            ],
        )
        + "\n  " + scale_note(bench_config)
    )

    assert result.occurrences >= result.distinct_domains >= 3
    assert result.domains_with_unreachable >= 1
    # Shape: hint-only-reachable outnumbers A-only-reachable (117 vs 59).
    assert result.hint_only_reachable >= result.a_only_reachable
