"""Table 6 — browser support matrix for HTTPS RR, regenerated from the
client-side testbed."""

from repro.browser.experiments import FULL, HALF, NONE, build_table6


PAPER_TABLE6 = {
    "{apex}": {"Chrome": FULL, "Safari": HALF, "Edge": FULL, "Firefox": FULL},
    "http://{apex}": {"Chrome": FULL, "Safari": HALF, "Edge": FULL, "Firefox": FULL},
    "https://{apex}": {"Chrome": FULL, "Safari": FULL, "Edge": FULL, "Firefox": FULL},
    "AliasMode TargetName": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": NONE},
    "TargetName": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": FULL},
    "port": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": FULL},
    "alpn": {"Chrome": FULL, "Safari": FULL, "Edge": FULL, "Firefox": FULL},
    "IP hints": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": FULL},
}


def test_table6_browser_support(benchmark, report):
    matrix = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    mismatches = [
        (row, browser, matrix.rows[row][browser], expected)
        for row, cells in PAPER_TABLE6.items()
        for browser, expected in cells.items()
        if matrix.rows[row][browser] != expected
    ]
    report(
        matrix.render()
        + "\n\n  paper agreement: "
        + ("exact (all 32 cells)" if not mismatches else f"mismatches: {mismatches}")
    )
    assert not mismatches, f"Table 6 diverges from the paper: {mismatches}"
