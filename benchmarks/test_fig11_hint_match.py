"""Figure 11 — IP-hint utilization and consistency with A/AAAA records."""

from repro.analysis import hints
from repro.reporting import render_comparison, render_series
from repro.simnet import timeline


def test_fig11_hint_match(bench_dataset, benchmark, report):
    apex_points = benchmark(hints.fig11_hint_series, bench_dataset)
    www_points = hints.fig11_hint_series(bench_dataset, kind="www")

    last = apex_points[-1]
    before = [p.ipv4_match_pct for p in apex_points if p.date < timeline.HINT_SYNC_FIX]
    after = [p.ipv4_match_pct for p in apex_points if p.date >= timeline.HINT_SYNC_FIX]
    before_mean = sum(before) / len(before)
    after_mean = sum(after) / len(after)

    report(
        "\n\n".join(
            [
                render_comparison(
                    "Figure 11: IP-hint utilization and A/AAAA consistency",
                    [
                        ("ipv4hint utilization (apex)", ">97%", f"{last.ipv4_usage_pct:.2f}%"),
                        ("ipv6hint utilization (apex)", "~87%", f"{last.ipv6_usage_pct:.2f}%"),
                        ("ipv4 match before Jun 19", "~98%", f"{before_mean:.2f}%"),
                        ("ipv4 match after Jun 19", ">99.8%", f"{after_mean:.2f}%"),
                        ("www ipv4 utilization", "~97%", f"{www_points[-1].ipv4_usage_pct:.2f}%"),
                    ],
                ),
                render_series("ipv4hint match % (apex)", [(p.date, p.ipv4_match_pct) for p in apex_points]),
            ]
        )
        + "\n  note: the 5 persistent cf-ns mismatch domains weigh ~0.4% at 1/167 scale "
        "(0.002% at full scale), so the post-fix ceiling sits below the paper's 99.8%"
    )

    assert last.ipv4_usage_pct > 90.0
    assert last.ipv6_usage_pct > 75.0
    assert after_mean > before_mean, "the June 19 sync fix must be visible"
