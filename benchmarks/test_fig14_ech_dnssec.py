"""Figure 14 / §4.5.2 — DNSSEC protection of ECH-bearing HTTPS records."""

from repro.analysis import dnssec_analysis, ech_analysis
from repro.reporting import render_comparison, render_series
from repro.simnet import timeline


def test_fig14_ech_dnssec(bench_dataset, benchmark, report):
    points = benchmark(ech_analysis.fig14_signed_ech_share, bench_dataset)
    signed_mean, validated_mean = dnssec_analysis.ech_dnssec_overlap(bench_dataset)

    pre = [(d, s) for d, s, _v in points if d < timeline.ECH_DISABLE]
    report(
        "\n\n".join(
            [
                render_comparison(
                    "Figure 14: signed share among ECH-bearing HTTPS records",
                    [
                        ("signed share before Oct 5", "<6%", f"{signed_mean:.2f}%"),
                        ("validated share", "~half of signed", f"{validated_mean:.2f}%"),
                    ],
                ),
                render_series("signed % among ECH domains", pre),
            ]
        )
    )

    assert signed_mean < 12.0
    assert validated_mean <= signed_mean
    assert validated_mean >= signed_mean * 0.2, "roughly half of signed validates"
