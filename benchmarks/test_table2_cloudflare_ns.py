"""Table 2 — Cloudflare vs non-Cloudflare name servers among apex domains
with HTTPS records."""

from conftest import scale_note

from repro.analysis import nameservers
from repro.reporting import render_comparison


def test_table2_cloudflare_ns(bench_dataset, bench_config, benchmark, report):
    stats = benchmark(nameservers.table2_ns_shares, bench_dataset)
    overlapping = nameservers.table2_ns_shares(bench_dataset, overlapping_only=True)
    boost = bench_config.noncf_boost
    corrected_full = stats.full_mean_pct + stats.none_mean_pct * (1 - 1 / boost)
    corrected_none = stats.none_mean_pct / boost

    report(
        render_comparison(
            "Table 2: apex domains (with HTTPS RR) on Cloudflare NS",
            [
                ("Full Cloudflare NS (dynamic)", "99.89%", f"{stats.full_mean_pct:.2f}% (boost-corrected {corrected_full:.2f}%)"),
                ("None Cloudflare NS (dynamic)", "0.11%", f"{stats.none_mean_pct:.2f}% (boost-corrected {corrected_none:.2f}%)"),
                ("Partial Cloudflare NS", "<0.01%", f"{stats.partial_mean_pct:.3f}%"),
                ("Full Cloudflare NS (overlapping)", "99.87%", f"{overlapping.full_mean_pct:.2f}%"),
                ("std (full, dynamic)", "0.03", f"{stats.full_std:.2f}"),
            ],
        )
        + f"\n  note: non-Cloudflare cohort oversampled x{boost:.0f} for Table 3 statistics; "
        + scale_note(bench_config)
    )

    assert stats.full_mean_pct > 95.0
    assert corrected_none < 0.5
    assert stats.partial_mean_pct < 1.0
