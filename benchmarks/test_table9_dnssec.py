"""Table 9 — DNSSEC chain validation of top domains (Jan 2, 2024
snapshot), split by HTTPS RR publication and NS operator."""

from conftest import scale_note

from repro.analysis import dnssec_analysis
from repro.reporting import render_table


def test_table9_dnssec(bench_dataset, bench_config, benchmark, report):
    rows = benchmark(dnssec_analysis.table9_validation, bench_dataset)
    congruence = dnssec_analysis.registrar_congruence(bench_dataset)
    table_rows = [
        (row.category, row.signed, f"{row.secure} ({row.secure_pct:.1f}%)", f"{row.insecure} ({row.insecure_pct:.1f}%)")
        for row in rows
    ]
    report(
        render_table(
            "Table 9: DNSSEC validation of signed domains (snapshot)",
            ["category", "signed", "secure", "insecure"],
            table_rows,
            note=(
                "paper: without-HTTPS 76.2%/23.7%; with-HTTPS 50.6%/49.4%; "
                "Cloudflare 50.5%/49.5%; non-Cloudflare 85.9%/14.1%. "
                f"registrar congruence (paper 26%): {congruence.congruent_pct:.1f}%. "
                + scale_note(bench_config)
            ),
        )
    )

    by_category = {row.category: row for row in rows}
    without = by_category["without HTTPS RR"]
    with_https = by_category["with HTTPS RR"]
    cloudflare = by_category["- Cloudflare"]
    noncf = by_category["- Non-Cloudflare"]

    assert without.signed > with_https.signed, "non-publishers outnumber publishers"
    # The paper's central Table 9 contrast:
    assert with_https.insecure_pct > without.insecure_pct + 10.0
    assert 35.0 <= cloudflare.insecure_pct <= 65.0
    if noncf.signed >= 5:
        assert noncf.insecure_pct < cloudflare.insecure_pct
    assert congruence.congruent_pct < 60.0
