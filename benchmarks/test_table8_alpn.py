"""Table 8 — application protocols advertised via the alpn SvcParam."""

from repro.analysis import parameters
from repro.reporting import render_comparison


def test_table8_alpn(bench_dataset, benchmark, report):
    apex = benchmark(parameters.table8_alpn, bench_dataset)
    www = parameters.table8_alpn(bench_dataset, kind="www")
    noncf = parameters.noncf_alpn_shares(bench_dataset)

    report(
        render_comparison(
            "Table 8: alpn protocol shares (overlapping domains, daily average)",
            [
                ("HTTP/2 (apex)", "99.64%", f"{apex.h2_pct:.2f}%"),
                ("HTTP/3 (apex)", "78.42%", f"{apex.h3_pct:.2f}%"),
                ("HTTP/3-29 before May 31", "77.43%", f"{apex.h3_29_before_pct:.2f}%"),
                ("HTTP/3-29 after May 31", "<0.01%", f"{apex.h3_29_after_pct:.3f}%"),
                ("HTTP/3-27", "<0.01%", f"{apex.h3_27_pct:.3f}%"),
                ("HTTP/1.1", "<0.01%", f"{apex.http11_pct:.3f}%"),
                ("HTTP/2 (www)", "99.61%", f"{www.h2_pct:.2f}%"),
                ("non-CF h2", "64.09%", f"{noncf['h2']:.2f}%"),
                ("non-CF h3", "26.79%", f"{noncf['h3']:.2f}%"),
                ("non-CF without alpn", "8.44%", f"{noncf['no_alpn']:.2f}%"),
            ],
        )
        + "\n  note: the non-CF no-alpn share runs high because Google/GoDaddy"
        "\n  (whose records omit alpn) are oversampled relative to the long tail"
        "\n  to keep Tables 3/5 meaningful at 1/167 scale (see providers.py)"
    )

    assert apex.h2_pct > 93.0
    assert 55.0 < apex.h3_pct < apex.h2_pct
    assert apex.h3_29_before_pct > 50.0
    assert apex.h3_29_after_pct < 2.0
    assert noncf["h2"] < apex.h2_pct
    assert noncf["no_alpn"] > 5.0
