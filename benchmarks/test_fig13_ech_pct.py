"""Figure 13 — share of HTTPS-publishing domains with the ech SvcParam,
including the October 5 global disable."""

from repro.analysis import ech_analysis
from repro.reporting import render_comparison, render_series
from repro.simnet import timeline


def test_fig13_ech_share(bench_dataset, benchmark, report):
    points = benchmark(ech_analysis.fig13_ech_share, bench_dataset)
    www_points = ech_analysis.fig13_ech_share(bench_dataset, kind="www")
    event = ech_analysis.detect_disable_event(bench_dataset)

    report(
        "\n\n".join(
            [
                render_comparison(
                    "Figure 13: ECH share of HTTPS domains",
                    [
                        ("apex share before Oct 5", "~70%", f"{event.pre_disable_mean_pct:.1f}%"),
                        (
                            "www share before Oct 5",
                            "~63%",
                            f"{sum(v for d, v in www_points if d < timeline.ECH_DISABLE) / max(1, len([1 for d, _v in www_points if d < timeline.ECH_DISABLE])):.1f}%",
                        ),
                        ("share after Oct 5", "0% (test domains excluded)", f"{event.post_disable_max_pct:.2f}%"),
                        ("disable cliff lands", "2023-10-05", str(event.first_day_without)),
                    ],
                ),
                render_series("apex ECH %", points),
            ]
        )
    )

    assert event.matches_paper
    assert 55.0 <= event.pre_disable_mean_pct <= 80.0
