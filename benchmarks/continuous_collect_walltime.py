"""Wall-clock comparison: one-shot pipeline run vs continuous collection.

Runs the same campaign three ways — a one-shot
``ParallelCampaignRunner`` run, a continuous collection (day-slice ×
domain-shard increments folded against an on-disk checkpoint in a
single ``collect()`` call), and a worst-case resume storm (one process
"killed" after *every* increment, so each increment pays a full
checkpoint reload) — verifies all three datasets are value-equal, and
records the timings in ``continuous_collect_walltime.txt`` under the
benchmark results directory (untracked ``.bench_results/`` unless
``REPRO_BENCH_RECORD=1`` — see ``_results.py``).

Not collected by pytest (no ``test_`` prefix) because it deliberately
rebuilds the campaign repeatedly without the cache; run it directly:

    PYTHONPATH=src python benchmarks/continuous_collect_walltime.py --population 2000

Exit status: 1 if any collected dataset is not equal to the one-shot
run (hard failure), 2 if the straight continuous run is slower than
--max-overhead times the one-shot run (soft failure: shared CI runners
are too noisy to gate on wall-clock).
"""

from __future__ import annotations

import argparse
import gc
import os
import shutil
import tempfile
import time

from _results import env_flag, results_path
from repro.scanner import (
    CollectionInterrupted,
    ContinuousCollector,
    ParallelCampaignRunner,
)
from repro.simnet import SimConfig, world_registry

RESULTS_PATH = results_path("continuous_collect_walltime.txt")


def _timed(action):
    gc.collect()
    started = time.perf_counter()
    result = action()
    return time.perf_counter() - started, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--day-step", type=int, default=28)
    parser.add_argument("--ech-sample", type=int, default=60)
    parser.add_argument("--workers", type=int, default=2,
                        help="domain shards (and worker-pool width)")
    parser.add_argument("--increment-days", type=int, default=3,
                        help="scan days per day-slice increment")
    parser.add_argument("--executor", choices=("process", "thread"),
                        default="process")
    parser.add_argument("--max-overhead", type=float, default=1.5,
                        help="allowed continuous/one-shot wall-clock ratio")
    args = parser.parse_args()

    config = SimConfig(population=args.population)
    kwargs = dict(day_step=args.day_step, ech_sample=args.ech_sample)
    # REPRO_SNAPSHOT=1 (the bench-suite knob) persists world snapshots
    # under the shared .cache; otherwise use a throwaway directory.
    if env_flag("REPRO_SNAPSHOT"):
        snapshot_dir = os.path.join(os.path.dirname(__file__), "..", ".cache", "worlds")
        scratch_snapshots = None
    else:
        snapshot_dir = scratch_snapshots = tempfile.mkdtemp(prefix="repro-cc-snap-")
    scratch = tempfile.mkdtemp(prefix="repro-cc-ckpt-")

    def one_shot():
        world_registry().clear()
        return ParallelCampaignRunner(
            config, workers=args.workers, executor=args.executor,
            snapshot_dir=snapshot_dir, **kwargs
        ).run()

    def continuous():
        world_registry().clear()
        with ContinuousCollector(
            config, os.path.join(scratch, "straight"), workers=args.workers,
            days_per_increment=args.increment_days, executor=args.executor,
            snapshot_dir=snapshot_dir, **kwargs
        ) as collector:
            total = collector.total_increments
            return collector.collect(), total

    def resume_storm():
        """Interrupt after every single increment and resume from the
        checkpoint with a fresh collector — the worst case a long-lived
        collection can hit (every increment pays a checkpoint reload)."""
        world_registry().clear()
        checkpoint = os.path.join(scratch, "storm")
        sessions = 0
        while True:
            sessions += 1
            with ContinuousCollector(
                config, checkpoint, workers=args.workers,
                days_per_increment=args.increment_days, executor=args.executor,
                snapshot_dir=snapshot_dir, **kwargs
            ) as collector:
                try:
                    return collector.collect(max_increments=1), sessions
                except CollectionInterrupted:
                    continue

    try:
        oneshot_s, baseline = _timed(one_shot)
        continuous_s, (collected, increments) = _timed(continuous)
        storm_s, (resumed, sessions) = _timed(resume_storm)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
        if scratch_snapshots is not None:
            shutil.rmtree(scratch_snapshots, ignore_errors=True)

    equal = collected == baseline and resumed == baseline
    overhead = continuous_s / oneshot_s if oneshot_s else float("inf")
    storm_overhead = storm_s / oneshot_s if oneshot_s else float("inf")
    stats = collected.run_stats

    lines = [
        "Continuous collection: wall-clock vs the one-shot pipeline run",
        f"  population {config.population}, day_step {args.day_step}, "
        f"ech_sample {args.ech_sample}, workers {args.workers} "
        f"({args.executor} executor)",
        f"  host CPU cores available: {os.cpu_count()}",
        "",
        f"  one-shot ParallelCampaignRunner:        {oneshot_s:8.1f} s",
        f"  continuous ({increments} increments, one session): "
        f"{continuous_s:8.1f} s  ({overhead:.2f}x)",
        f"  resume storm ({sessions} sessions, killed per increment): "
        f"{storm_s:8.1f} s  ({storm_overhead:.2f}x)",
        f"  datasets equal (continuous, resumed vs one-shot): {equal}",
        f"  accumulated run stats: {stats.summary() if stats else 'n/a'}",
        "",
        "  Continuous mode pays per-increment checkpointing (part + fold",
        "  writes) and per-slice NS/ECH stage scheduling on top of the",
        "  one-shot pipeline; the warm worker pool and per-process world",
        "  registries amortise warm-up across increments, so the straight",
        "  run should stay within the overhead bound. The resume storm",
        "  additionally reloads the checkpoint every increment — its",
        "  number is the ceiling on what interruptions can cost.",
    ]
    text = "\n".join(lines)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write(text + "\n")
    print(text)
    if not equal:
        return 1
    return 0 if overhead <= args.max_overhead else 2


if __name__ == "__main__":
    raise SystemExit(main())
