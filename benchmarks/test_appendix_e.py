"""Appendix E — the parameter-oddity census: named misconfigurations the
paper calls out individually."""

from repro.analysis import appendix
from repro.reporting import render_table
from repro.simnet import timeline


def test_appendix_e_census(bench_dataset, benchmark, report):
    result = benchmark(appendix.census, bench_dataset)
    first_quic = appendix.google_quic_first_seen(bench_dataset)
    geo = appendix.nexuspipe_port_scheme(bench_dataset)

    rows = [
        ("AliasMode '0 .' (no true alias)", "newlinesmag.com + 21", ", ".join(result.alias_self_domains[:4]) or "-"),
        ("IP-literal TargetName", "unze.com.pk, idaillinois.org, pokemon-arena.net", ", ".join(result.ip_target_domains[:4]) or "-"),
        ("URL TargetName", "gachoiphungluan.com", ", ".join(result.url_target_domains[:2]) or "-"),
        ("multi-priority geo-routing", "14 domains, priorities 1-12 + ports", ", ".join(sorted(geo)) or "-"),
        ("odd single priorities", "host-ir.com=443, pionerfm.ru=1800",
         ", ".join(f"{k}={v}" for k, v in sorted(result.odd_single_priority_domains.items())) or "-"),
        ("draft h3-27/29 after May 31", "gentoo.org", ", ".join(result.draft_h3_domains[:3]) or "-"),
        ("HTTP/1.1-only", "6 domains (jpberlin.de etc.)", ", ".join(result.http11_only_domains[:3]) or "-"),
        ("Google-QUIC first seen", "2024-02-11", str(first_quic)),
    ]
    report(render_table("Appendix E: parameter oddities", ["oddity", "paper", "measured"], rows))

    assert "newlinesmag.com" in result.alias_self_domains
    assert {"unze.com.pk", "idaillinois.org", "pokemon-arena.net"} <= set(result.ip_target_domains)
    assert "gachoiphungluan.com" in result.url_target_domains
    assert result.odd_single_priority_domains.get("host-ir.com") == 443
    assert result.odd_single_priority_domains.get("pionerfm.ru") == 1800
    assert "gentoo.org" in result.draft_h3_domains
    assert "mailhost-berlin.de" in result.http11_only_domains
    assert geo, "the geo-routing multi-priority domains must surface"
    pairs = next(iter(geo.values()))
    assert [prio for prio, _port in pairs] == list(range(1, 13))
    ports = [port for _prio, port in pairs]
    assert len(set(ports)) == len(ports), "each priority maps to its own port"
    assert first_quic is not None and first_quic >= timeline.GOOGLE_QUIC_APPEARANCE