"""Figure 4 / §4.4.2 — ECH key-rotation cadence from hourly scans
(Jul 21–27, 2023)."""

from repro.analysis import ech_analysis
from repro.reporting import render_comparison, render_histogram


def test_fig4_ech_rotation(bench_dataset, benchmark, report):
    stats = benchmark(ech_analysis.fig4_rotation, bench_dataset)
    histogram = sorted(stats.sightings_histogram.items())
    durations = sorted(stats.per_domain_mean_hours.values())

    report(
        "\n\n".join(
            [
                render_comparison(
                    "Figure 4 / §4.4.2: ECH key rotation",
                    [
                        ("distinct ECH configs over 7 days", "169", stats.distinct_configs),
                        ("client-facing server", "cloudflare-ech.com", ", ".join(stats.public_names)),
                        ("per-domain mean duration range", "1.1-1.4 h", f"{durations[0]:.2f}-{durations[-1]:.2f} h"),
                        ("overall mean duration", "1.26 h", f"{stats.overall_mean_hours:.2f} h"),
                    ],
                ),
                render_histogram(
                    "configs by consecutive-hourly-sighting count",
                    [(f"{hours}h", count) for hours, count in histogram],
                ),
            ]
        )
        + "\n  note: with a 1.26h rotation and hourly sampling, a config is seen at 1-2 "
        "hourly marks; the paper reports most configs spanning 2 consecutive scans"
    )

    assert stats.public_names == ("cloudflare-ech.com",)
    assert 100 <= stats.distinct_configs <= 180
    assert 1.1 <= stats.overall_mean_hours <= 1.4
    assert set(stats.sightings_histogram) <= {1, 2, 3}
