"""Ablation benches for the design choices DESIGN.md calls out:

* resolver caching — how much of the scan load the TTL cache absorbs;
* DNSSEC-validation memoization — chain-walk cost with a cold validator;
* wire mode — the cost of routing every message through the full codec.
"""

import datetime

from repro.dnscore import rdtypes
from repro.dnssec.validation import ChainValidator
from repro.reporting import render_table
from repro.resolver.recursive import RecursiveResolver
from repro.simnet import SimConfig, World, timeline

_DATE = datetime.date(2023, 9, 15)


def _fresh_world(wire_mode: bool = False, population: int = 600) -> World:
    world = World(SimConfig(population=population, wire_mode=wire_mode))
    world.set_time(_DATE)
    return world


def _scan_batch(world: World, use_cache: bool = True, batch: int = 60) -> int:
    profiles = [p for p in world.listed_profiles() if p.adopter][:batch]
    for resolver in (world.google_resolver, world.cloudflare_resolver):
        resolver.cache_enabled = use_cache
        resolver.flush_cache()
    queries_before = world.network.dns_query_count
    for profile in profiles:
        world.stub.query_https(profile.apex)
        world.stub.query_https(profile.www)
        world.stub.query_a(profile.apex)
    return world.network.dns_query_count - queries_before


def test_ablation_resolver_cache(benchmark, report):
    world = _fresh_world()
    with_cache = _scan_batch(world, use_cache=True)
    without_cache = _scan_batch(world, use_cache=False)
    benchmark.pedantic(_scan_batch, args=(world, True), rounds=3, iterations=1)
    report(
        render_table(
            "Ablation: resolver TTL cache (queries on the wire for a 60-domain batch)",
            ["configuration", "upstream queries"],
            [("cache enabled", with_cache), ("cache disabled", without_cache)],
            note="the cache absorbs the repeated root/TLD walks of a daily scan",
        )
    )
    assert without_cache > with_cache * 1.5
    # Restore for other benches sharing the fixture (none — fresh world).


def test_ablation_validator_memoization(benchmark, report):
    world = _fresh_world()
    profiles = [p for p in world.listed_profiles() if p.adopter][:40]
    now = timeline.epoch_seconds(_DATE)
    # Warm the world's per-day zone cache so the comparison isolates the
    # validator, not lazy zone construction.
    warmup = ChainValidator(world.validator_source)
    for profile in profiles:
        warmup.validate(profile.apex, rdtypes.HTTPS, now)

    def validate_batch(fresh_each_time: bool) -> float:
        import time

        start = time.perf_counter()
        validator = ChainValidator(world.validator_source)
        for profile in profiles:
            if fresh_each_time:
                validator = ChainValidator(world.validator_source)
            validator.validate(profile.apex, rdtypes.HTTPS, now)
        return time.perf_counter() - start

    memoized = validate_batch(False)
    cold = validate_batch(True)
    benchmark.pedantic(validate_batch, args=(False,), rounds=3, iterations=1)
    report(
        render_table(
            "Ablation: zone-key memoization in the chain validator (40 validations)",
            ["configuration", "seconds"],
            [("shared validator (memoized)", f"{memoized:.4f}"),
             ("fresh validator per query", f"{cold:.4f}")],
            note="root/TLD DNSKEY verification dominates without memoization",
        )
    )
    assert cold > memoized


def test_ablation_wire_mode(benchmark, report):
    import time

    fast_world = _fresh_world(wire_mode=False)
    wire_world = _fresh_world(wire_mode=True)

    def timed(world: World) -> float:
        start = time.perf_counter()
        _scan_batch(world)
        return time.perf_counter() - start

    fast = timed(fast_world)
    wire = timed(wire_world)
    benchmark.pedantic(_scan_batch, args=(fast_world,), rounds=3, iterations=1)
    report(
        render_table(
            "Ablation: full wire codec on every message (60-domain batch)",
            ["configuration", "seconds"],
            [("object fast path", f"{fast:.4f}"), ("wire mode", f"{wire:.4f}")],
            note=(
                "wire mode encodes+parses every query/response (4 codec passes "
                "per exchange); campaigns default to the object path, fidelity "
                "tests to wire mode"
            ),
        )
    )
    assert wire > fast
