"""Table 4 — Cloudflare default vs customized HTTPS record configuration."""

from repro.analysis import parameters
from repro.reporting import render_comparison


def test_table4_default_vs_custom(bench_dataset, benchmark, report):
    dynamic = benchmark(parameters.table4_default_vs_custom, bench_dataset)
    overlapping = parameters.table4_default_vs_custom(bench_dataset, overlapping_only=True)

    report(
        render_comparison(
            "Table 4: Cloudflare-NS domains with default vs customized HTTPS config",
            [
                ("default (dynamic)", "79.96%", f"{dynamic.default_pct:.2f}%"),
                ("customized (dynamic)", "20.04%", f"{dynamic.customized_pct:.2f}%"),
                ("default (overlapping)", "72.37%", f"{overlapping.default_pct:.2f}%"),
                ("customized (overlapping)", "27.63%", f"{overlapping.customized_pct:.2f}%"),
            ],
        )
    )

    assert 68.0 <= dynamic.default_pct <= 88.0
    assert overlapping.default_pct <= dynamic.default_pct + 2.0, (
        "overlapping domains customize more than dynamic ones"
    )
