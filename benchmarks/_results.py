"""Where benchmark records land.

Benchmark timings are host-local noise (±25% on small shared machines),
so by default every record — the per-figure comparison files the pytest
fixtures emit and the ``*_walltime.txt`` wall-clock records — is written
to the untracked ``.bench_results/`` directory, leaving the committed
``bench_results/`` files exactly as the last deliberate recording left
them. Set ``REPRO_BENCH_RECORD=1`` to update the committed files on
purpose (a release host refreshing the published numbers, or CI jobs
whose workspace is thrown away anyway).
"""

from __future__ import annotations

import os

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED_DIR = os.path.join(_REPO_ROOT, "bench_results")
LOCAL_DIR = os.path.join(_REPO_ROOT, ".bench_results")


def env_flag(name: str) -> bool:
    """Truthy-environment-knob parser shared by the bench suite."""
    return os.environ.get(name, "0").lower() in ("1", "true", "yes", "on")


def record_committed() -> bool:
    """True when this run should update the committed records."""
    return env_flag("REPRO_BENCH_RECORD")


def results_dir() -> str:
    return COMMITTED_DIR if record_committed() else LOCAL_DIR


def results_path(name: str) -> str:
    """Absolute path for the record *name* under the active results dir."""
    return os.path.join(results_dir(), name)
