"""Figure 10 — daily count of domains with HTTPS records on
non-Cloudflare name servers."""

from conftest import scale_note

from repro.analysis import nameservers
from repro.reporting import render_series


def test_fig10_noncf_domains(bench_dataset, bench_config, benchmark, report):
    points = benchmark(nameservers.fig10_noncf_domain_counts, bench_dataset)
    report(
        render_series(
            "Figure 10: # apex domains with HTTPS RR on non-Cloudflare NS "
            "(paper: few hundred, slowly rising)",
            [(day, float(count)) for day, count in points],
            unit="",
        )
        + "\n  " + scale_note(bench_config)
    )

    counts = [count for _day, count in points]
    assert all(count >= 1 for count in counts)
    half = len(counts) // 2
    assert sum(counts[half:]) / (len(counts) - half) >= sum(counts[:half]) / half * 0.9
