"""Benchmark fixtures.

The campaign dataset is built once (then disk-cached under ``.cache/``)
at 1/167 of Tranco scale by default; every benchmark times its *analysis*
against that dataset and emits a paper-vs-measured comparison under the
results directory (untracked ``.bench_results/`` by default; set
``REPRO_BENCH_RECORD=1`` to deliberately refresh the committed
``bench_results/`` files — see :mod:`_results`).

The dataset comes from a :class:`repro.study.Study`: the identity knobs
``REPRO_POPULATION`` (default 6000) and ``REPRO_DAY_STEP`` (default 7)
form the :class:`~repro.study.StudySpec`, and
:meth:`repro.study.ExecutionPlan.from_env` absorbs the execution knobs —
``REPRO_WORKERS`` (shard the campaign across N worker processes),
``REPRO_BATCH`` (batched resolution core), ``REPRO_SNAPSHOT`` (warm
worker worlds from the on-disk snapshot cache under ``.cache/worlds``),
``REPRO_CONTINUOUS`` (build through the checkpointing continuous
collector), ``REPRO_ANSWER_CACHE`` (the layered answer fast path —
default on; set 0 to synthesize every upstream reply from scratch), and
``REPRO_GC`` (``pause`` suspends cyclic GC for the whole run). The
dataset is identical under every knob combination.
"""

from __future__ import annotations

import os

import pytest

from _results import results_dir
from repro.simnet import SimConfig, World
from repro.study import ExecutionPlan, Study, StudySpec

BENCH_POPULATION = int(os.environ.get("REPRO_POPULATION", "6000"))
BENCH_DAY_STEP = int(os.environ.get("REPRO_DAY_STEP", "7"))
CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", ".cache")
RESULTS_DIR = results_dir()


@pytest.fixture(scope="session")
def bench_config() -> SimConfig:
    return SimConfig(population=BENCH_POPULATION)


@pytest.fixture(scope="session")
def bench_dataset(bench_config):
    spec = StudySpec(bench_config, day_step=BENCH_DAY_STEP)
    with Study(spec, ExecutionPlan.from_env(cache_dir=CACHE_DIR)) as study:
        return study.run()


@pytest.fixture(scope="session")
def bench_world(bench_config):
    """A fresh world for benchmarks that query live (browser testbed uses
    its own isolated environment instead)."""
    return World(bench_config)


@pytest.fixture()
def report(request):
    """Write a rendered comparison to bench_results/<test>.txt and echo it."""

    def _write(text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + text)

    return _write


def scale_note(config: SimConfig) -> str:
    return (
        f"simulated population {config.population} (Tranco 1M scaled "
        f"1/{round(1_000_000 / config.population)}); absolute counts scale accordingly"
    )
