"""Benchmark fixtures.

The campaign dataset is built once (then disk-cached under ``.cache/``)
at 1/167 of Tranco scale by default; every benchmark times its *analysis*
against that dataset and emits a paper-vs-measured comparison under the
results directory (untracked ``.bench_results/`` by default; set
``REPRO_BENCH_RECORD=1`` to deliberately refresh the committed
``bench_results/`` files — see :mod:`_results`).

Environment knobs: ``REPRO_POPULATION`` (default 6000), ``REPRO_DAY_STEP``
(default 7), ``REPRO_WORKERS`` (default 1 — set >1 to build the dataset
through the sharded pipeline), ``REPRO_BATCH`` (default 0 — set to 1 to
resolve scans through the batched resolution core), ``REPRO_SNAPSHOT``
(default 0 — set to 1 to warm worker worlds from the on-disk world
snapshot cache under ``.cache/worlds`` instead of rebuilding them),
``REPRO_CONTINUOUS`` (default 0 — set to 1 to build the dataset through
the continuous collector: day-slice × domain-shard increments folded
against a checkpoint under ``.cache/checkpoints``). The dataset is
identical under every knob combination.
"""

from __future__ import annotations

import os

import pytest

from _results import env_flag, results_dir
from repro.scanner import load_or_run_campaign
from repro.simnet import SimConfig, World

BENCH_POPULATION = int(os.environ.get("REPRO_POPULATION", "6000"))
BENCH_DAY_STEP = int(os.environ.get("REPRO_DAY_STEP", "7"))
BENCH_WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))
BENCH_BATCH = env_flag("REPRO_BATCH")
BENCH_SNAPSHOT = env_flag("REPRO_SNAPSHOT")
BENCH_CONTINUOUS = env_flag("REPRO_CONTINUOUS")
CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", ".cache")
SNAPSHOT_DIR = os.path.join(CACHE_DIR, "worlds") if BENCH_SNAPSHOT else None
RESULTS_DIR = results_dir()


@pytest.fixture(scope="session")
def bench_config() -> SimConfig:
    return SimConfig(population=BENCH_POPULATION)


@pytest.fixture(scope="session")
def bench_dataset(bench_config):
    return load_or_run_campaign(
        bench_config,
        day_step=BENCH_DAY_STEP,
        cache_dir=CACHE_DIR,
        workers=BENCH_WORKERS,
        batch=BENCH_BATCH,
        snapshot_dir=SNAPSHOT_DIR,
        continuous=BENCH_CONTINUOUS,
    )


@pytest.fixture(scope="session")
def bench_world(bench_config):
    """A fresh world for benchmarks that query live (browser testbed uses
    its own isolated environment instead)."""
    return World(bench_config)


@pytest.fixture()
def report(request):
    """Write a rendered comparison to bench_results/<test>.txt and echo it."""

    def _write(text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + text)

    return _write


def scale_note(config: SimConfig) -> str:
    return (
        f"simulated population {config.population} (Tranco 1M scaled "
        f"1/{round(1_000_000 / config.population)}); absolute counts scale accordingly"
    )
