"""Figure 5 — share of HTTPS records that are signed (RRSIG) and that
validate (AD bit)."""

from repro.analysis import dnssec_analysis
from repro.reporting import render_comparison, render_series


def test_fig5_signed(bench_dataset, benchmark, report):
    dynamic = benchmark(dnssec_analysis.fig5_signed_series, bench_dataset)
    overlapping = dnssec_analysis.fig5_signed_series(bench_dataset, overlapping_only=True)

    dyn_first, dyn_last = dynamic[0], dynamic[-1]
    ovl_first, ovl_last = overlapping[0], overlapping[-1]

    report(
        "\n\n".join(
            [
                render_comparison(
                    "Figure 5: signed / validated HTTPS records",
                    [
                        ("signed share band", "<10%", f"{dyn_last.signed_pct:.2f}%"),
                        ("validated ≪ signed", "~half", f"{dyn_last.validated_pct:.2f}%"),
                        (
                            "dynamic trend",
                            "decreasing",
                            f"{dyn_first.signed_pct:.2f}% -> {dyn_last.signed_pct:.2f}%",
                        ),
                        (
                            "overlapping trend",
                            "increasing",
                            f"{ovl_first.signed_pct:.2f}% -> {ovl_last.signed_pct:.2f}%",
                        ),
                    ],
                ),
                render_series("dynamic signed %", [(p.date, p.signed_pct) for p in dynamic]),
                render_series(
                    "overlapping signed %", [(p.date, p.signed_pct) for p in overlapping]
                ),
            ]
        )
    )

    assert all(p.signed_pct < 12.0 for p in dynamic)
    assert all(p.validated_pct <= p.signed_pct for p in dynamic)
    # Opposite trends between the two populations (§4.5.1).
    assert ovl_last.signed_pct >= ovl_first.signed_pct
    assert dyn_last.signed_pct <= dyn_first.signed_pct + 1.0
