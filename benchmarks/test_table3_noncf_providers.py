"""Table 3 — top non-Cloudflare DNS providers serving HTTPS-publishing
domains."""

from conftest import scale_note

from repro.analysis import nameservers
from repro.reporting import render_table


PAPER_TOP = ["eName", "Google", "GoDaddy", "NSONE", "Domeneshop"]
PAPER_COUNTS = {"eName": 185, "Google": 159, "GoDaddy": 105, "NSONE": 79, "Domeneshop": 16}


def test_table3_noncf_providers(bench_dataset, bench_config, benchmark, report):
    top = benchmark(nameservers.table3_top_noncf_providers, bench_dataset)
    rows = [(org, count) for org, count in top]
    report(
        render_table(
            "Table 3: top non-Cloudflare DNS providers (distinct domains, NS window)",
            ["provider (WHOIS org)", "# distinct domains"],
            rows,
            note=f"paper (full scale): {PAPER_COUNTS}; " + scale_note(bench_config),
        )
    )

    measured = {org: count for org, count in top}
    # The heavy hitters must surface, in roughly the paper's order.
    heavy = [org for org, _count in top[:6]]
    assert any("eName" in org for org in heavy)
    assert any("Google" in org for org in heavy)
    assert any("GoDaddy" in org for org in heavy)
    ename = next(count for org, count in top if "eName" in org)
    nsone = next((count for org, count in top if "NSONE" in org), 0)
    assert ename >= nsone, "eName outranks NSONE, as in the paper"
