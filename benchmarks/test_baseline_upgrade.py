"""Baseline comparison (paper §1): HTTPS RR vs the HTTP-redirect status
quo, HSTS, the preload list, and Alt-Svc — plaintext exposure and round
trips over a visit sequence."""

from repro.browser.upgrade_baselines import (
    ALL_MECHANISMS,
    MECH_HTTPS_RR,
    MECH_REDIRECT,
    SiteConfig,
    compare_mechanisms,
)
from repro.reporting import render_table


def test_baseline_upgrade_mechanisms(benchmark, report):
    site = SiteConfig(host="popular.example", preloaded=True)
    results = benchmark(compare_mechanisms, site, 10)

    rows = [
        (
            mechanism,
            int(stats["plaintext_requests"]),
            int(stats["mitm_windows"]),
            int(stats["round_trips"]),
        )
        for mechanism, stats in results.items()
    ]
    report(
        render_table(
            "Upgrade mechanisms over 10 address-bar visits (paper §1 motivation)",
            ["mechanism", "plaintext requests", "MITM windows", "round trips"],
            rows,
            note=(
                "HTTPS RR removes the plaintext probe on every visit without "
                "manual preload listing; HSTS/Alt-Svc still expose the first visit"
            ),
        )
    )

    rr = results[MECH_HTTPS_RR]
    assert rr["plaintext_requests"] == 0 and rr["mitm_windows"] == 0
    assert results[MECH_REDIRECT]["plaintext_requests"] == 10
    for mechanism in ALL_MECHANISMS:
        assert results[mechanism]["round_trips"] >= rr["round_trips"]
