"""Table 7 — browser ECH support and failover, regenerated from the
client-side testbed."""

from repro.browser.experiments import FULL, NONE, build_table7


PAPER_TABLE7 = {
    "Shared Mode Support": {"Chrome": FULL, "Edge": FULL, "Firefox": FULL},
    "(1) Unilateral ECH": {"Chrome": FULL, "Edge": FULL, "Firefox": FULL},
    "(2) Malformed ECH": {"Chrome": NONE, "Edge": NONE, "Firefox": FULL},
    "(3) Mismatched key": {"Chrome": FULL, "Edge": FULL, "Firefox": FULL},
    "Split Mode Support": {"Chrome": NONE, "Edge": NONE, "Firefox": NONE},
}


def test_table7_ech_failover(benchmark, report):
    matrix = benchmark.pedantic(build_table7, rounds=1, iterations=1)
    mismatches = [
        (row, browser, matrix.rows[row][browser], expected)
        for row, cells in PAPER_TABLE7.items()
        for browser, expected in cells.items()
        if matrix.rows[row][browser] != expected
    ]
    report(
        matrix.render()
        + "\n\n  paper agreement: "
        + ("exact (all 15 cells)" if not mismatches else f"mismatches: {mismatches}")
    )
    assert not mismatches, f"Table 7 diverges from the paper: {mismatches}"
    assert any("ERR_ECH_FALLBACK_CERTIFICATE_INVALID" in note for note in matrix.notes)
