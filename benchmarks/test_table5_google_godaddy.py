"""Table 5 — common HTTPS configurations on Google and GoDaddy name
servers."""

from conftest import scale_note

from repro.analysis import parameters
from repro.reporting import render_table


def test_table5_google_godaddy(bench_dataset, bench_config, benchmark, report):
    profiles = benchmark(parameters.table5_provider_profiles, bench_dataset)
    rows = []
    for p in profiles:
        rows.append(
            (
                p.provider_org,
                p.domain_count,
                f"{p.top_priority[0]} ({p.top_priority[1]:.1f}%)",
                f"{p.alias_share_pct:.1f}%",
                f"{p.empty_alpn_share_pct:.1f}%",
                f"{p.empty_ipv4hint_share_pct:.1f}%",
            )
        )
    report(
        render_table(
            "Table 5: Google vs GoDaddy HTTPS configurations",
            ["provider", "#domains", "top SvcPriority", "AliasMode", "no alpn", "no ipv4hint"],
            rows,
            note=(
                "paper: Google = priority 1 (98.95%), mostly empty params; "
                "GoDaddy = priority 0 (99.19%), alias to alternative endpoint. "
                + scale_note(bench_config)
            ),
        )
    )

    google = next(p for p in profiles if "Google" in p.provider_org)
    godaddy = next(p for p in profiles if "GoDaddy" in p.provider_org)
    assert google.domain_count > 0 and godaddy.domain_count > 0
    # Google: ServiceMode dominant with mostly-empty SvcParams (paper:
    # 95% — at 1/167 scale the cohort is ~10 domains, so allow noise).
    assert google.top_priority[0] == 1
    assert google.empty_alpn_share_pct > 60.0
    # GoDaddy: AliasMode to an alternative endpoint dominant.
    assert godaddy.top_priority[0] == 0
    assert godaddy.alias_share_pct > 90.0
    assert godaddy.self_target_share_pct < 10.0
