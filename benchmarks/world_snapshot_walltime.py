"""Wall-clock comparison: cold world construction vs snapshot load.

Measures the pipeline worker's warm-up cost three ways — a cold build
(signature memo cleared, everything constructed and signed from
scratch), a rebuild with the process-global RRSIG memo warm, and a
deserialization of the on-disk world snapshot — then verifies the
acceptance property: a sharded pipeline run warmed from the snapshot
produces a dataset value-equal to the no-snapshot run. Results land in
``world_snapshot_walltime.txt`` under the benchmark results directory
(untracked ``.bench_results/`` unless ``REPRO_BENCH_RECORD=1`` — see
``_results.py``).

Timings run with the cyclic GC collected beforehand and paused during
each build/load (the world is an immortal object graph; full-heap GC
passes over it otherwise dominate and add ±25% noise on small hosts).

Not collected by pytest (no ``test_`` prefix) because it deliberately
rebuilds worlds and campaigns repeatedly; run it directly:

    PYTHONPATH=src python benchmarks/world_snapshot_walltime.py --population 2000

Exit status: 1 if the snapshot-warmed pipeline dataset is not equal to
the no-snapshot dataset (hard failure), 2 if the snapshot load is not
at least --min-speedup times faster than the cold build (soft failure:
shared CI runners are too noisy to gate on wall-clock).
"""

from __future__ import annotations

import argparse
import gc
import os
import tempfile
import time

from _results import env_flag, results_path
from repro.dnssec.signing import signature_memo
from repro.scanner import ParallelCampaignRunner
from repro.simnet import (
    SimConfig,
    World,
    load_world_snapshot,
    save_world_snapshot,
    snapshot_path,
    world_registry,
)

RESULTS_PATH = results_path("world_snapshot_walltime.txt")


def _best_of(repeats: int, action) -> float:
    best = None
    for _ in range(max(1, repeats)):
        gc.collect()
        started = time.perf_counter()
        action()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--day-step", type=int, default=28)
    parser.add_argument("--ech-sample", type=int, default=60)
    parser.add_argument("--workers", type=int, default=2,
                        help="pipeline workers for the equality check")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed build/load attempts per mode (best recorded)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required cold-build / snapshot-load ratio")
    args = parser.parse_args()

    config = SimConfig(population=args.population)
    # REPRO_SNAPSHOT=1 (the bench-suite knob) persists snapshots under
    # the shared .cache; otherwise use a throwaway directory.
    if env_flag("REPRO_SNAPSHOT"):
        snapshot_dir = os.path.join(os.path.dirname(__file__), "..", ".cache", "worlds")
    else:
        snapshot_dir = tempfile.mkdtemp(prefix="repro-world-snap-")

    # Seed the snapshot (untimed) so load timings always hit a valid file.
    save_world_snapshot(World(config), snapshot_dir)
    snap_bytes = os.path.getsize(snapshot_path(snapshot_dir, config))

    def cold_build() -> None:
        signature_memo().clear()
        World(config)

    def memo_build() -> None:
        World(config)  # process-global RRSIG memo stays warm

    def snapshot_load() -> None:
        load_world_snapshot(config, snapshot_dir)

    cold_s = _best_of(args.repeats, cold_build)
    memo_s = _best_of(args.repeats, memo_build)
    load_s = _best_of(args.repeats, snapshot_load)
    memo = signature_memo()
    speedup = cold_s / load_s if load_s else float("inf")

    # Acceptance property: warm-snapshot pipeline == no-snapshot pipeline.
    kwargs = dict(day_step=args.day_step, ech_sample=args.ech_sample)
    world_registry().clear()
    plain = ParallelCampaignRunner(config, workers=args.workers, **kwargs).run()
    world_registry().clear()
    warmed = ParallelCampaignRunner(
        config, workers=args.workers, snapshot_dir=snapshot_dir, **kwargs
    ).run()
    equal = warmed == plain

    lines = [
        "World snapshot cache: worker warm-up wall-clock",
        f"  population {config.population}, best of {max(1, args.repeats)}, "
        f"snapshot {snap_bytes / 1e6:.1f} MB",
        f"  host CPU cores available: {os.cpu_count()}",
        "",
        f"  cold build (construct + sign):    {cold_s * 1000:8.1f} ms",
        f"  rebuild with warm RRSIG memo:     {memo_s * 1000:8.1f} ms "
        f"({memo.hits} memo hits / {memo.misses} misses this process)",
        f"  snapshot load (deserialize):      {load_s * 1000:8.1f} ms",
        f"  load speedup over cold build: {speedup:.2f}x (required ≥ {args.min_speedup:.1f}x)",
        "",
        f"  pipeline ({args.workers} workers) warm-snapshot dataset equals "
        f"no-snapshot dataset: {equal}",
        "",
        "  The snapshot replaces per-worker world construction (profile",
        "  synthesis + zone signing) with one deserialization of the",
        "  parent's pre-built world. The RRSIG memo dedups re-signing of",
        "  unchanged RRsets (rebuilt zones after cache evictions, hourly",
        "  ECH regenerations); under the simulated HMAC primitive a hit",
        "  costs about what it saves — the hit counters above convert",
        "  into real savings under an asymmetric signer. Both layers are",
        "  value-equality-preserving, which is what the pipeline relies",
        "  on. Timings taken with the cyclic GC paused.",
    ]
    text = "\n".join(lines)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write(text + "\n")
    print(text)
    if not equal:
        return 1
    return 0 if speedup >= args.min_speedup else 2


if __name__ == "__main__":
    raise SystemExit(main())
