"""Wall-clock comparison: serial resolution vs the batched core.

Runs the same campaign twice — once with one blocking ``resolve`` per
query and once through the batched resolution core (state machines
interleaved by ``BatchResolver`` with in-flight query coalescing) —
verifies the two datasets are value-equal, and records both timings
plus the coalescing counters in ``batch_resolver_walltime.txt`` under
the benchmark results directory (untracked ``.bench_results/`` unless
``REPRO_BENCH_RECORD=1`` — see ``_results.py``).

Not collected by pytest (no ``test_`` prefix) because it deliberately
rebuilds the campaign twice without the cache; run it directly:

    PYTHONPATH=src python benchmarks/batch_resolver_walltime.py --population 2000
"""

from __future__ import annotations

import argparse
import gc
import os
import time

from _results import results_path
from repro.scanner import run_campaign
from repro.simnet import SimConfig, World

RESULTS_PATH = results_path("batch_resolver_walltime.txt")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--day-step", type=int, default=28)
    parser.add_argument("--ech-sample", type=int, default=60)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per mode (modes interleave round by "
                             "round so host drift hits both); best run recorded")
    args = parser.parse_args()

    config = SimConfig(population=args.population)
    kwargs = dict(day_step=args.day_step, ech_sample=args.ech_sample)

    # Equivalence check first (untimed): the acceptance property is that
    # both paths build value-equal datasets.
    serial = run_campaign(World(config), batch=False, **kwargs)
    batched = run_campaign(World(config), batch=True, **kwargs)
    equal = batched == serial
    serial_queries = serial.run_stats.dns_queries
    stats = batched.run_stats
    del serial, batched  # keep the timed phase's memory profile flat

    def timed_once(batch: bool) -> float:
        gc.collect()
        started = time.perf_counter()
        run_campaign(World(config), batch=batch, **kwargs)
        return time.perf_counter() - started

    serial_s = batched_s = None
    for _ in range(max(1, args.repeats)):
        elapsed = timed_once(batch=False)
        serial_s = elapsed if serial_s is None else min(serial_s, elapsed)
        elapsed = timed_once(batch=True)
        batched_s = elapsed if batched_s is None else min(batched_s, elapsed)
    speedup = serial_s / batched_s if batched_s else float("inf")
    lines = [
        "Batched resolution core: wall-clock comparison",
        f"  population {config.population}, day_step {args.day_step}, "
        f"ech_sample {args.ech_sample}, best of {max(1, args.repeats)}",
        f"  host CPU cores available: {os.cpu_count()}",
        "",
        f"  serial resolution (batch=False):  {serial_s:8.1f} s "
        f"({serial_queries} upstream queries)",
        f"  batched resolution (batch=True):  {batched_s:8.1f} s "
        f"({stats.dns_queries} upstream queries)",
        f"  speedup: {speedup:.2f}x",
        f"  datasets value-equal: {equal}",
        "",
        f"  batch jobs scheduled:        {stats.batch_jobs}",
        f"  coalesced upstream queries:  {stats.coalesced_queries}",
        f"  attached duplicate jobs:     {stats.attached_jobs}",
        f"  batch memo hits:             {stats.batch_memo_hits}",
        "",
        "  The simulated network has zero latency, so the batched path's",
        "  edge comes from dedup (coalescing, attachment, shared cache",
        "  fills) and from pausing the cyclic GC per batch so in-flight",
        "  machines are never promoted into full-heap collections over",
        "  the immortal world; against real transports the interleaving",
        "  itself would dominate. The equivalence guarantee (value-equal",
        "  datasets) is what the campaign relies on.",
    ]
    text = "\n".join(lines)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write(text + "\n")
    print(text)
    if not equal:
        return 1
    return 0 if batched_s <= serial_s else 2


if __name__ == "__main__":
    raise SystemExit(main())
