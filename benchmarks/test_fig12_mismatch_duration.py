"""Figure 12 — duration of IP-hint/A mismatches (from June 19, 2023)."""

from collections import Counter

from repro.analysis import hints
from repro.reporting import render_comparison, render_histogram


def test_fig12_mismatch_duration(bench_dataset, benchmark, report):
    result = benchmark(hints.fig12_mismatch_durations, bench_dataset)
    www = hints.fig12_mismatch_durations(bench_dataset, kind="www")

    buckets = Counter()
    for duration in result.durations:
        if duration <= 7:
            buckets["<=1 week"] += 1
        elif duration <= 30:
            buckets["<=1 month"] += 1
        elif duration <= 120:
            buckets["<=4 months"] += 1
        else:
            buckets["whole period"] += 1

    report(
        "\n\n".join(
            [
                render_comparison(
                    "Figure 12: mismatch durations",
                    [
                        ("apex domains with mismatch", "482 (full scale)", result.domains_with_mismatch),
                        ("persistent apex domains", "4 + cf-ns specials", len(result.persistent_domains)),
                        ("persistent names include", "cf-ns.com/.net, *.cn", ", ".join(result.persistent_domains[:5])),
                        ("www domains with mismatch", "4,508 (full scale)", www.domains_with_mismatch),
                    ],
                ),
                render_histogram(
                    "episode durations (days; sampled-day resolution)",
                    sorted(buckets.items()),
                ),
            ]
        )
    )

    assert result.domains_with_mismatch >= 5
    assert {"cf-ns.com", "cf-ns.net", "canva-apps.cn", "cloudflare-cn.com", "polestar.cn"} <= set(
        result.persistent_domains
    )
    # Most non-persistent episodes are short (the paper: a few days).
    short = sum(1 for d in result.durations if d <= 30)
    assert short >= len(result.durations) - len(result.persistent_domains) - 2
