"""Figure 9 — ranks of apex domains using non-Cloudflare name servers."""

from repro.analysis import nameservers, tranco
from repro.reporting import render_comparison


def test_fig9_noncf_ranks(bench_dataset, benchmark, report):
    ranked = benchmark(nameservers.fig9_noncf_ranks, bench_dataset)
    assert ranked, "need non-Cloudflare HTTPS adopters in the window"
    ranks = [rank for _name, rank in ranked]
    list_size = bench_dataset.snapshot(bench_dataset.days()[-1]).list_size

    report(
        render_comparison(
            "Figure 9: mean ranks of non-Cloudflare-NS apex domains",
            [
                ("domains observed", "~200-300 (full scale)", len(ranked)),
                ("rank span", "across the whole list", f"{min(ranks):.0f}-{max(ranks):.0f} of {list_size}"),
                ("median", "mid-list", f"{sorted(ranks)[len(ranks) // 2]:.0f}"),
            ],
        )
    )

    # Non-CF adopters spread across the ranking rather than clustering at
    # the extreme top (paper Fig 9 shows a broad spread).
    assert max(ranks) - min(ranks) > list_size * 0.2
