"""Figure 8 — Tranco rank distributions: overlapping vs non-overlapping
domains (phase 1)."""

from repro.analysis import tranco
from repro.reporting import render_comparison


def test_fig8_rank_dist(bench_dataset, benchmark, report):
    dist = benchmark(tranco.fig8_rank_distributions, bench_dataset)

    report(
        render_comparison(
            "Figure 8: mean phase-1 rank by overlap status",
            [
                ("overlapping median rank", "higher-ranked (smaller)", f"{dist.overlapping_median():.0f}"),
                ("non-overlapping median rank", "lower-ranked (larger)", f"{dist.non_overlapping_median():.0f}"),
                ("overlapping count", "634,810 (full scale)", len(dist.overlapping_ranks)),
                ("non-overlapping count", "-", len(dist.non_overlapping_ranks)),
            ],
        )
    )

    assert dist.overlapping_median() < dist.non_overlapping_median()
    assert len(dist.overlapping_ranks) > len(dist.non_overlapping_ranks) * 0.5
