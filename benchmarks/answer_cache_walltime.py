"""Wall-clock comparison: the layered answer fast path on vs off.

Runs the same wire-mode batched campaign twice — once synthesizing and
encoding every upstream reply from scratch (``answer_cache=False``) and
once with all three fast-path tiers armed (rendered-answer memo,
zone-body reuse, wire-byte templates) — verifies the datasets are
value-equal AND the per-server query logs are byte-identical (the cache
must sit behind query accounting), and records both timings plus the
fast-path counters in ``answer_cache_walltime.txt`` under the benchmark
results directory (untracked ``.bench_results/`` unless
``REPRO_BENCH_RECORD=1`` — see ``_results.py``).

Not collected by pytest (no ``test_`` prefix) because it deliberately
rebuilds the campaign repeatedly without the study cache; run directly:

    PYTHONPATH=src python benchmarks/answer_cache_walltime.py --population 6000

Exit codes: 0 ok, 1 equivalence failure, 2 speedup below the floor.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import os
import time

from _results import results_path
from repro.scanner import run_campaign
from repro.simnet import SimConfig, World

RESULTS_PATH = results_path("answer_cache_walltime.txt")


def logged_world(config: SimConfig) -> World:
    world = World(config)
    for server in world.network._dns_servers.values():
        if hasattr(server, "query_log"):
            server.log_queries = True
    return world


def drain_log_digests(world: World) -> dict:
    """ip → sha256 of that server's query log; logs freed after hashing
    so the equivalence phase at population 6000 stays in memory."""
    digests = {}
    for ip, server in sorted(world.network._dns_servers.items()):
        log = getattr(server, "query_log", None)
        if log is None:
            continue
        digest = hashlib.sha256()
        for name, rdtype in log:
            digest.update(name.encode())
            digest.update(rdtype.to_bytes(2, "big"))
        digests[ip] = (len(log), digest.hexdigest())
        log.clear()
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=6000)
    parser.add_argument("--day-step", type=int, default=7)
    parser.add_argument("--ech-sample", type=int, default=200)
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per mode (modes interleave round by "
                             "round so host drift hits both); best run recorded")
    parser.add_argument("--floor", type=float, default=1.25,
                        help="minimum acceptable speedup (exit 2 below it)")
    args = parser.parse_args()

    config = SimConfig(population=args.population, wire_mode=True)
    kwargs = dict(day_step=args.day_step, ech_sample=args.ech_sample, batch=True)

    # Equivalence check first (untimed): value-equal datasets AND
    # identical per-server query logs — the fast path must be invisible
    # to everything except the clock.
    world = logged_world(config)
    baseline = run_campaign(world, answer_cache=False, **kwargs)
    baseline_logs = drain_log_digests(world)
    del world
    world = logged_world(config)
    cached = run_campaign(world, answer_cache=True, **kwargs)
    cached_logs = drain_log_digests(world)
    del world
    equal = cached == baseline
    logs_equal = cached_logs == baseline_logs
    stats = cached.run_stats
    upstream_queries = baseline.run_stats.dns_queries
    del baseline, cached  # keep the timed phase's memory profile flat

    def timed_once(answer_cache: bool) -> float:
        gc.collect()
        started = time.perf_counter()
        run_campaign(World(config), answer_cache=answer_cache, **kwargs)
        return time.perf_counter() - started

    off_s = on_s = None
    for _ in range(max(1, args.repeats)):
        elapsed = timed_once(answer_cache=False)
        off_s = elapsed if off_s is None else min(off_s, elapsed)
        elapsed = timed_once(answer_cache=True)
        on_s = elapsed if on_s is None else min(on_s, elapsed)
    speedup = off_s / on_s if on_s else float("inf")
    lookups = stats.answer_hits + stats.answer_misses
    hit_rate = stats.answer_hits / lookups if lookups else 0.0
    lines = [
        "Layered answer fast path: wall-clock comparison (wire mode)",
        f"  population {config.population}, day_step {args.day_step}, "
        f"ech_sample {args.ech_sample}, batched, best of {max(1, args.repeats)}",
        f"  host CPU cores available: {os.cpu_count()}",
        "",
        f"  fast path off (answer_cache=False): {off_s:8.1f} s "
        f"({upstream_queries} upstream queries)",
        f"  fast path on  (answer_cache=True):  {on_s:8.1f} s "
        f"({stats.dns_queries} upstream queries)",
        f"  speedup: {speedup:.2f}x (floor {args.floor:.2f}x)",
        f"  datasets value-equal: {equal}",
        f"  per-server query logs identical: {logs_equal} "
        f"({len(cached_logs)} servers compared by sha256)",
        "",
        f"  rendered-answer hits:   {stats.answer_hits}/{lookups} "
        f"({hit_rate:.1%} of lookups)",
        f"  cache evictions:        {stats.answer_evictions}",
        f"  wire-byte hits:         {stats.wire_byte_hits}",
        f"  zone bodies reused:     {stats.zone_body_reuses}/"
        f"{stats.zone_builds + stats.zone_body_reuses} builds avoided",
        "",
        "  Tier 1 (rendered answers) keys entries on zone identity",
        "  (uid, version) with per-entry SOA-serial and referral guards,",
        "  so answers survive day and ECH-generation changes instead of",
        "  being flushed each epoch; serial-only staleness is repaired",
        "  in place by patching the 4 serial bytes. Tier 2 (zone bodies)",
        "  skips rebuilding zones whose content fingerprint is unchanged",
        "  since the previous day. Tier 3 rides on the tier-1 entry: it",
        "  pins the encoded bytes and decoded client-side message, so a",
        "  repeated wire-mode answer skips the whole encode/decode pair",
        "  (queries get the same treatment via a parsed-query memo). The",
        "  equivalence guarantees above (value-equal datasets, identical",
        "  query logs) are what lets the campaign arm it by default.",
    ]
    text = "\n".join(lines)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write(text + "\n")
    print(text)
    if not equal or not logs_equal:
        return 1
    return 0 if speedup >= args.floor else 2


if __name__ == "__main__":
    raise SystemExit(main())
