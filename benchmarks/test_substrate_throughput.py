"""Substrate micro-benchmarks (not a paper artifact): wire codec,
resolution, and signing throughput — the knobs that bound campaign
runtime, for the ablation discussion in DESIGN.md."""

from repro.dnscore import Message, Name, rdtypes
from repro.dnscore.rrset import RRset
from repro.dnssec.keys import ZoneKey
from repro.dnssec.signing import sign_rrset


def make_response():
    msg = Message(1)
    msg.is_response = True
    msg.answers.append(
        RRset.from_text(
            "example.com.", 300, "HTTPS",
            "1 . alpn=h2,h3 ipv4hint=104.16.1.1 ipv6hint=2606:4700::1",
        )
    )
    msg.answers.append(RRset.from_text("example.com.", 300, "A", "104.16.1.1"))
    return msg


def test_message_wire_round_trip_throughput(benchmark):
    msg = make_response()
    def round_trip():
        return Message.from_wire(msg.to_wire())
    result = benchmark(round_trip)
    assert result.get_answer("example.com.", rdtypes.HTTPS) is not None


def test_rrset_signing_throughput(benchmark):
    key = ZoneKey.derive(Name.from_text("example.com."), "zsk")
    rrset = RRset.from_text("example.com.", 300, "HTTPS", "1 . alpn=h2,h3")
    rrsig = benchmark(sign_rrset, rrset, Name.from_text("example.com."), key, 1000)
    assert rrsig.signature


def test_recursive_resolution_throughput(bench_world, benchmark):
    from repro.simnet import timeline

    bench_world.set_time(max(bench_world.current_date, timeline.date_of(30)))
    profiles = [p for p in bench_world.listed_profiles() if p.adopter][:50]

    def resolve_batch():
        count = 0
        for profile in profiles:
            response = bench_world.stub.query_https(profile.apex)
            count += bool(response.answers)
        # Flush so every round does real resolution work.
        bench_world.google_resolver.flush_cache()
        bench_world.cloudflare_resolver.flush_cache()
        return count

    hits = benchmark(resolve_batch)
    assert hits > 0
