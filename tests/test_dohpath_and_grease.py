"""Tests for the RFC 9461 dohpath SvcParam (DoH discovery via _dns SVCB)
and ECH GREASE behaviour."""

import pytest

from repro.dnscore import Name, rdtypes
from repro.dnscore.rdata import SVCBRdata, rdata_from_text
from repro.svcb.params import DohPath, SvcParamError, SvcParams


class TestDohPathParam:
    def test_text_round_trip(self):
        param = DohPath("/dns-query{?dns}")
        assert DohPath.from_text_value(param.value_to_text()) == param
        assert param.to_text() == "dohpath=/dns-query{?dns}"

    def test_wire_round_trip(self):
        param = DohPath("/q{?dns}")
        assert DohPath.from_wire_value(param.to_wire_value()) == param

    def test_must_be_relative(self):
        with pytest.raises(SvcParamError):
            DohPath("https://dns.google/dns-query{?dns}")

    def test_must_contain_dns_variable(self):
        with pytest.raises(SvcParamError):
            DohPath("/dns-query")

    def test_resolved_path(self):
        assert DohPath("/dns-query{?dns}").resolved_path() == "/dns-query"

    def test_accessor(self):
        params = SvcParams([DohPath("/dns-query{?dns}")])
        assert params.dohpath == "/dns-query{?dns}"
        assert SvcParams().dohpath is None

    def test_dns_svcb_record(self):
        """RFC 9461: _dns.resolver.example SVCB advertising a DoH path."""
        rdata = rdata_from_text(
            rdtypes.SVCB, '1 dns.google. alpn=h2 dohpath=/dns-query{?dns}'
        )
        assert isinstance(rdata, SVCBRdata)
        assert rdata.params.dohpath == "/dns-query{?dns}"
        # Wire + text round trips through the generic machinery.
        from repro.dnscore.rdata import rdata_from_wire
        from repro.dnscore.wire import WireReader

        wire = rdata.wire_bytes()
        assert rdata_from_wire(rdtypes.SVCB, WireReader(wire), len(wire)) == rdata
        assert rdata_from_text(rdtypes.SVCB, rdata.to_text()) == rdata


class TestEchGrease:
    def make_testbed(self):
        from repro.browser.testbed import Testbed

        testbed = Testbed()
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h2")  # no ech param
        testbed.install_web_server()
        return testbed

    def test_chrome_sends_grease_without_ech_config(self):
        from repro.browser.testbed import TEST_DOMAIN

        testbed = self.make_testbed()
        result = testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert result.ech_grease_sent
        assert not result.ech_offered

    def test_safari_never_sends_grease(self):
        from repro.browser.testbed import TEST_DOMAIN

        testbed = self.make_testbed()
        result = testbed.browser("Safari").navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert not result.ech_grease_sent

    def test_server_with_keys_ignores_grease(self):
        """A GREASE extension must not trigger retry_configs."""
        from repro.browser.tls import Certificate, ClientHello, WebServer
        from repro.ech.keys import ECHKeyManager

        km = ECHKeyManager("cover.example", seed=b"g")
        server = WebServer(
            "web",
            Certificate(("a.example",)),
            ech_keypairs=km.active_keypairs(0),
            ech_retry_wire=km.published_wire(0),
        )
        result = server.handle_connection(
            ClientHello("a.example", ("h2",), ech_is_grease=True)
        )
        assert result.connected
        assert result.retry_configs is None
        assert not result.ech_accepted

    def test_grease_marked_in_handshake_log(self):
        from repro.browser.testbed import TEST_DOMAIN, WEB_SERVER_IP

        testbed = self.make_testbed()
        server = testbed.network.connect_tcp(WEB_SERVER_IP, 443)
        testbed.browser("Edge").navigate(f"https://{TEST_DOMAIN}")
        assert any(hello.ech_is_grease for hello in server.handshake_log)
