"""Chaos scenario engine: the declarative fault DSL, its compiled
world effects, determinism under injection, cache identity, and the
injected-vs-organic attribution join.

The integration fixtures reuse ``examples/chaos_scenario.json`` — the
same schedule the CI chaos-smoke job runs — so the committed example
stays loadable and its targets stay capable (a zone fault on a domain
without the feature silently no-ops, which would break the smoke's
full-attribution guarantee).
"""

import dataclasses
import datetime
import json
import os

import pytest

from repro.dnscore import rdtypes
from repro.dnssec.validation import ChainValidator, ValidationState
from repro.scanner import ScanEngine, campaign, run_campaign
from repro.simnet import SimConfig, World, timeline
from repro.simnet import domains as simdomains
from repro.simnet.faults import FaultSchedule, FaultSpec
from repro.simnet.providers import PROVIDERS
from repro.study import StudySpec

MID = datetime.date(2023, 9, 15)
DAY = datetime.timedelta(days=1)
SCENARIO_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "chaos_scenario.json"
)

CONFIG = SimConfig(population=120)


def make_world():
    world = World(CONFIG)
    world.set_time(MID)
    return world


def one_fault(spec):
    return FaultSchedule(name="test", specs=(spec,))


def active_profile(world, extra=lambda p: True):
    return next(
        p for p in world.listed_profiles()
        if p.adopter and not p.www_only and p.intermittency == "none"
        and p.adoption_start_day < 0 and p.deactivation_day is None
        and extra(p)
    )


def flush_resolvers(world):
    for resolver in (world.google_resolver, world.cloudflare_resolver):
        resolver.flush_cache()


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", domain="example.com")

    def test_window_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            FaultSpec(
                kind="timeout", domain="example.com",
                start=datetime.date(2023, 8, 2), end=datetime.date(2023, 8, 1),
            )

    def test_iso_strings_parse_to_dates(self):
        spec = FaultSpec(kind="timeout", domain="example.com",
                         start="2023-07-01", end="2023-07-09")
        assert spec.start == datetime.date(2023, 7, 1)
        assert spec.end == datetime.date(2023, 7, 9)

    def test_server_outage_needs_exactly_one_target(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(kind="server_outage")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(kind="server_outage", ip="192.0.2.1", provider="cloudflare")
        with pytest.raises(ValueError, match="unknown provider"):
            FaultSpec(kind="server_outage", provider="not-a-provider")
        FaultSpec(kind="server_outage", ip="192.0.2.1")  # ok
        FaultSpec(kind="server_outage", provider="cloudflare", port=53)  # ok

    def test_loss_kinds_need_scope_and_sane_rate(self):
        with pytest.raises(ValueError, match="domain and/or ip"):
            FaultSpec(kind="packet_loss")
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="rate"):
                FaultSpec(kind="packet_loss", domain="example.com", rate=rate)
        FaultSpec(kind="timeout", ip="192.0.2.1")  # ok

    def test_zone_kinds_need_domain(self):
        for kind in ("lame_delegation", "dnssec_expired_rrsig",
                     "dnssec_missing_ds", "ech_key_desync", "stale_https_hint"):
            with pytest.raises(ValueError, match="target domain"):
                FaultSpec(kind=kind)

    def test_active_window_semantics(self):
        spec = FaultSpec(kind="timeout", domain="example.com",
                         start=datetime.date(2023, 8, 1), end=datetime.date(2023, 8, 3))
        assert not spec.active(datetime.date(2023, 7, 31))
        assert spec.active(datetime.date(2023, 8, 1))  # inclusive start
        assert spec.active(datetime.date(2023, 8, 3))  # inclusive end
        assert not spec.active(datetime.date(2023, 8, 4))
        open_spec = FaultSpec(kind="timeout", domain="example.com")
        assert open_spec.active(datetime.date(1999, 1, 1))

    def test_overlaps_closed_range(self):
        spec = FaultSpec(kind="timeout", domain="example.com",
                         start=datetime.date(2023, 8, 1), end=datetime.date(2023, 8, 3))
        assert spec.overlaps(datetime.date(2023, 8, 3), datetime.date(2023, 9, 1))
        assert not spec.overlaps(datetime.date(2023, 8, 4), datetime.date(2023, 9, 1))
        assert not spec.overlaps(datetime.date(2023, 7, 1), datetime.date(2023, 7, 31))


class TestScheduleSerialisation:
    SCHEDULE = FaultSchedule(
        name="demo",
        specs=(
            FaultSpec(kind="server_outage", provider="cloudflare", port=53,
                      start=datetime.date(2023, 8, 1), end=datetime.date(2023, 8, 3)),
            FaultSpec(kind="packet_loss", domain="example.com", rate=0.5, salt="a"),
        ),
    )

    def test_truthiness(self):
        assert not FaultSchedule(name="empty")
        assert self.SCHEDULE

    def test_json_round_trip(self):
        assert FaultSchedule.from_json(self.SCHEDULE.to_json()) == self.SCHEDULE

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(self.SCHEDULE.to_json())
        assert FaultSchedule.load(str(path)) == self.SCHEDULE

    def test_unknown_spec_field_rejected(self):
        data = self.SCHEDULE.to_dict()
        data["faults"][0]["blast_radius"] = "huge"
        with pytest.raises(ValueError, match="blast_radius"):
            FaultSchedule.from_dict(data)

    def test_unknown_schedule_field_rejected(self):
        with pytest.raises(ValueError, match="surprise"):
            FaultSchedule.from_json(json.dumps({"name": "x", "surprise": 1}))

    def test_canonical_tag_tracks_content(self):
        again = FaultSchedule.from_json(self.SCHEDULE.to_json())
        assert again.canonical_tag() == self.SCHEDULE.canonical_tag()
        salted = FaultSchedule(
            name="demo",
            specs=self.SCHEDULE.specs[:1]
            + (dataclasses.replace(self.SCHEDULE.specs[1], salt="b"),),
        )
        assert salted.canonical_tag() != self.SCHEDULE.canonical_tag()
        renamed = dataclasses.replace(self.SCHEDULE, name="other")
        assert renamed.canonical_tag() != self.SCHEDULE.canonical_tag()

    def test_committed_ci_scenario_loads(self):
        scenario = FaultSchedule.load(SCENARIO_PATH)
        assert scenario and len(scenario.specs) == 6


class TestEngineEffects:
    def test_timeout_fault_servfails_with_retry_counters(self):
        world = make_world()
        profile = active_profile(world)
        world.install_faults(one_fault(
            FaultSpec(kind="timeout", domain=profile.name, start=MID, end=MID)
        ))
        response = world.stub.query_https(profile.apex)
        assert response.rcode == rdtypes.SERVFAIL
        stats = [world.google_resolver, world.cloudflare_resolver]
        assert sum(r.timeouts for r in stats) > 0
        assert sum(r.retries for r in stats) > 0
        # The day after the window the same world recovers.
        world.set_time(MID + DAY)
        flush_resolvers(world)
        recovered = world.stub.query_https(profile.apex)
        assert recovered.rcode == rdtypes.NOERROR

    def test_lame_delegation_servfails(self):
        world = make_world()
        profile = active_profile(world)
        world.install_faults(one_fault(
            FaultSpec(kind="lame_delegation", domain=profile.name, start=MID, end=MID)
        ))
        assert world.stub.query_https(profile.apex).rcode == rdtypes.SERVFAIL
        world.set_time(MID + DAY)
        flush_resolvers(world)
        assert world.stub.query_https(profile.apex).rcode == rdtypes.NOERROR

    def test_port_53_outage_spares_other_ports(self):
        world = make_world()
        profile = active_profile(world, lambda p: p.provider_key == "cloudflare")
        server_ip = PROVIDERS["cloudflare"].server_ip
        world.install_faults(one_fault(
            FaultSpec(kind="server_outage", ip=server_ip, port=53, start=MID, end=MID)
        ))
        # The outage is port-granular: the host still routes elsewhere.
        assert not world.network.is_reachable(server_ip, 53)
        assert world.network.is_reachable(server_ip)
        assert world.network.is_reachable(server_ip, 443)
        assert world.stub.query_https(profile.apex).rcode == rdtypes.SERVFAIL
        assert (world.google_resolver.unreachables
                + world.cloudflare_resolver.unreachables) > 0
        # Advancing the clock past the window lifts the outage.
        world.set_time(MID + DAY)
        assert world.network.is_reachable(server_ip, 53)
        flush_resolvers(world)
        assert world.stub.query_https(profile.apex).rcode == rdtypes.NOERROR

    def test_port_443_outage_flips_tls_reachable_not_dns(self):
        world = make_world()
        profile = active_profile(world)
        addr = simdomains.serving_addresses(profile, world.config, MID)[0]
        world.install_faults(one_fault(
            FaultSpec(kind="server_outage", ip=addr, port=443, start=MID, end=MID)
        ))
        assert not world.tls_reachable(profile, addr)
        assert world.stub.query_https(profile.apex).rcode == rdtypes.NOERROR
        world.set_time(MID + DAY)
        assert world.tls_reachable(profile, addr)

    def _signed_profile(self, world):
        try:
            return active_profile(
                world,
                lambda p: p.dnssec_signed and p.ds_uploaded and p.dnssec_sign_day < 0,
            )
        except StopIteration:
            pytest.skip("no secure-chain adopter at this population")

    def test_expired_rrsig_turns_chain_bogus(self):
        clean = make_world()
        profile = self._signed_profile(clean)
        now = timeline.epoch_seconds(MID)
        baseline = ChainValidator(clean.validator_source).validate(
            profile.apex, rdtypes.DNSKEY, now
        )
        assert baseline.state is ValidationState.SECURE
        world = make_world()
        world.install_faults(one_fault(
            FaultSpec(kind="dnssec_expired_rrsig", domain=profile.name, start=MID)
        ))
        result = ChainValidator(world.validator_source).validate(
            profile.apex, rdtypes.DNSKEY, now
        )
        assert result.state is ValidationState.BOGUS

    def test_missing_ds_turns_chain_insecure(self):
        world = make_world()
        profile = self._signed_profile(world)
        world.install_faults(one_fault(
            FaultSpec(kind="dnssec_missing_ds", domain=profile.name, start=MID)
        ))
        result = ChainValidator(world.validator_source).validate(
            profile.apex, rdtypes.DNSKEY, timeline.epoch_seconds(MID)
        )
        assert result.state is ValidationState.INSECURE

    def test_zone_fault_noops_on_incapable_domain(self):
        world = make_world()
        profile = active_profile(world, lambda p: not p.dnssec_signed)
        world.install_faults(one_fault(
            FaultSpec(kind="dnssec_expired_rrsig", domain=profile.name, start=MID)
        ))
        # Nothing to expire in an unsigned zone: the scan is untouched.
        assert world.stub.query_https(profile.apex).rcode == rdtypes.NOERROR
        zone = world.authoritative_zone_for(profile.apex)
        assert zone is not None and not zone.signed

    def _scan_for(self, world, pred):
        engine = ScanEngine(world)
        for profile in world.listed_profiles():
            obs = engine.scan_name(profile.apex, "apex")
            if obs.has_https and pred(obs):
                return profile, obs
        return None, None

    def test_ech_desync_serves_previous_generation(self):
        clean = make_world()
        profile, obs = self._scan_for(clean, lambda o: o.has_ech)
        if profile is None:
            pytest.skip("no ECH publisher at this population")
        manager = clean.ech_manager
        hour = clean.absolute_hour()
        current = manager.generation_for_hour(hour) % 256
        stale = manager.generation_for_hour(
            max(0, hour - clean.config.ech_rotation_hours)
        ) % 256
        record = next(r for r in obs.https_records if r.has_ech)
        assert record.ech_config_id == current
        world = make_world()
        world.install_faults(one_fault(
            FaultSpec(kind="ech_key_desync", domain=profile.name, start=MID, end=MID)
        ))
        faulted = ScanEngine(world).scan_name(profile.apex, "apex")
        faulted_record = next(r for r in faulted.https_records if r.has_ech)
        assert faulted_record.ech_config_id == stale
        assert faulted_record.ech_config_id != current

    def test_stale_hints_point_at_retired_unreachable_addresses(self):
        clean = make_world()
        profile, obs = self._scan_for(
            clean, lambda o: o.all_ipv4_hints() and o.a_addrs
        )
        if profile is None:
            pytest.skip("no hint publisher at this population")
        world = make_world()
        world.install_faults(one_fault(
            FaultSpec(kind="stale_https_hint", domain=profile.name, start=MID, end=MID)
        ))
        faulted = ScanEngine(world).scan_name(profile.apex, "apex")
        hints = faulted.all_ipv4_hints()
        assert hints and set(hints) != set(obs.all_ipv4_hints())
        assert set(hints) != set(faulted.a_addrs)
        # The retired generation serves nothing: the §4.3.5 probe fails
        # on the hint while the A record stays reachable.
        assert not world.tls_reachable(profile, hints[0])
        assert world.tls_reachable(profile, faulted.a_addrs[0])

    def test_install_clear_and_reset_lifecycle(self):
        world = make_world()
        schedule = one_fault(
            FaultSpec(kind="timeout", domain="example.com", start=MID, end=MID)
        )
        world.install_faults(schedule)
        assert world.fault_injector is not None
        assert world.network.dns_fault_hook is world.fault_injector
        world.install_faults(None)  # None just clears
        assert world.fault_injector is None
        assert world.network.dns_fault_hook is None
        world.install_faults(schedule)
        world.reset()  # a reset world is never armed (snapshot safety)
        assert world.fault_injector is None
        assert world.network.dns_fault_hook is None

    def test_outage_lifted_on_clear(self):
        world = make_world()
        server_ip = PROVIDERS["cloudflare"].server_ip
        world.install_faults(one_fault(
            FaultSpec(kind="server_outage", ip=server_ip, start=MID, end=MID)
        ))
        assert not world.network.is_reachable(server_ip)
        world.clear_faults()
        assert world.network.is_reachable(server_ip)


class TestDeterminism:
    KWARGS = dict(
        day_step=7,
        start=datetime.date(2023, 9, 15),
        end=datetime.date(2023, 9, 25),
        with_ech_hourly=False,
        with_dnssec_snapshot=False,
    )
    SCENARIO = FaultSchedule(
        name="det",
        specs=(
            FaultSpec(kind="packet_loss", ip=PROVIDERS["cloudflare"].server_ip,
                      rate=0.5, start=datetime.date(2023, 9, 15)),
            FaultSpec(kind="timeout", domain="gentoo.org",
                      start=datetime.date(2023, 9, 15)),
        ),
    )

    def test_same_schedule_same_dataset(self):
        first = run_campaign(World(CONFIG), scenario=self.SCENARIO, **self.KWARGS)
        second = run_campaign(World(CONFIG), scenario=self.SCENARIO, **self.KWARGS)
        assert first == second
        assert first.run_stats.timeouts > 0

    def test_scenario_perturbs_the_fault_free_dataset(self):
        clean = run_campaign(World(CONFIG), **self.KWARGS)
        faulted = run_campaign(World(CONFIG), scenario=self.SCENARIO, **self.KWARGS)
        assert faulted != clean


class TestCacheIdentity:
    def test_empty_scenario_tag_byte_identical_to_pre_scenario_key(self):
        golden = (
            campaign.canonical_cache_tag({"ech_sample": 5})
            + "|"
            + repr(dataclasses.astuple(CONFIG))
        )
        for scenario in (None, FaultSchedule(name="noop")):
            spec = StudySpec(config=CONFIG, ech_sample=5, scenario=scenario)
            assert spec.cache_tag() == golden
        assert StudySpec(config=CONFIG, ech_sample=5).cache_tag() == golden

    def test_scenario_keys_a_distinct_dataset(self):
        schedule = FaultSchedule.load(SCENARIO_PATH)
        base = StudySpec(config=CONFIG)
        faulted = StudySpec(config=CONFIG, scenario=schedule)
        assert faulted.cache_tag() != base.cache_tag()
        assert schedule.canonical_tag() in faulted.cache_tag()
        renamed = StudySpec(
            config=CONFIG, scenario=dataclasses.replace(schedule, name="other")
        )
        assert renamed.cache_tag() != faulted.cache_tag()

    def test_non_schedule_scenario_rejected(self):
        with pytest.raises(TypeError, match="FaultSchedule"):
            StudySpec(config=CONFIG, scenario={"name": "dict"})


class TestAttribution:
    """The injected-vs-organic join on the CI chaos-smoke scenario."""

    @pytest.fixture(scope="class")
    def smoke(self):
        from repro.analysis import attribution

        scenario = FaultSchedule.load(SCENARIO_PATH)
        dataset = run_campaign(
            World(CONFIG), day_step=28, ech_sample=20, scenario=scenario
        )
        report = attribution.attribute(dataset, scenario, CONFIG)
        return dataset, scenario, report

    def test_fault_path_counters_reach_run_stats(self, smoke):
        dataset, _, _ = smoke
        assert dataset.run_stats.timeouts > 0
        assert dataset.run_stats.retries > 0

    def test_every_injected_fault_is_accounted_for(self, smoke):
        _, _, report = smoke
        assert report.fully_attributed(), report.summary()
        assert all(entry.in_window for entry in report.entries)

    def test_anomalies_partition_into_injected_and_organic(self, smoke):
        _, _, report = smoke
        assert len(report.anomalies) == len(report.injected) + len(report.organic)
        assert len(report.injected) > 0
        assert len(report.organic) > 0  # the world misbehaves organically too

    def test_summary_names_every_fault(self, smoke):
        _, scenario, report = smoke
        text = report.summary()
        for spec in scenario.specs:
            assert spec.kind in text
        assert "UNATTRIBUTED" not in text

    def test_out_of_window_fault_reported_not_failed(self, smoke):
        from repro.analysis import attribution

        dataset, scenario, _ = smoke
        future = FaultSpec(
            kind="timeout", domain="newlinesmag.com",
            start=datetime.date(2030, 1, 1), end=datetime.date(2030, 1, 2),
        )
        widened = FaultSchedule(name="w", specs=scenario.specs + (future,))
        report = attribution.attribute(dataset, widened, CONFIG)
        entry = report.entries[-1]
        assert not entry.in_window and not entry.attributed
        # Out-of-window faults cannot fail the full-attribution gate.
        assert report.fully_attributed()

    def test_no_scenario_means_everything_organic(self, smoke):
        from repro.analysis import attribution

        dataset, _, _ = smoke
        report = attribution.attribute(dataset, None, CONFIG)
        assert report.entries == []
        assert report.organic == report.anomalies
        assert report.injected == ()

    def test_intermittency_split_sees_injected_flapping(self, smoke):
        from repro.analysis.intermittent import intermittency_injected_split

        dataset, scenario, _ = smoke
        split = intermittency_injected_split(dataset, scenario, CONFIG)
        assert split.injected_domains >= 1
        assert split.flapping_domains == (
            split.injected_domains + split.organic_domains
        )

    def test_table7_failover_split_sees_injected_stale_ech(self, smoke):
        from repro.analysis.ech_analysis import table7_failover_split

        dataset, scenario, _ = smoke
        split = table7_failover_split(dataset, scenario, CONFIG)
        assert split.injected_domains >= 1
        assert split.stale_sightings >= 1
        assert split.affected_domains == (
            split.injected_domains + split.organic_domains
        )
