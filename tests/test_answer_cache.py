"""The layered answer fast path (rendered-answer + zone-body +
wire-byte caches) — PR 9.

The headline guarantee: arming the cache changes walltime and the
fast-path counters, *nothing else*. Every suite here pins one face of
that claim — dataset value-equality against a cache-off run under
serial, batched, wire-mode, sharded, continuous kill+resume, and chaos
execution; per-server ``query_log`` / ``dns_query_count`` identity (the
cache sits behind logging and the fault hook); lifecycle hygiene
(``World.reset()`` and campaign cleanup leave no armed or stale state
behind); the LRU eviction bound; and cache identity (the execution knob
must never reach ``StudySpec.cache_tag()``).
"""

import datetime
import os

import pytest

from repro.resolver.authoritative import AnswerCache
from repro.scanner import (
    CollectionInterrupted,
    ContinuousCollector,
    ParallelCampaignRunner,
    run_campaign,
)
from repro.simnet import SimConfig, World, timeline
from repro.simnet import domains
from repro.simnet.faults import FaultSchedule
from repro.study import ExecutionPlan, Study, StudySpec

CONFIG = SimConfig(population=120)
WIRE_CONFIG = SimConfig(population=120, wire_mode=True)
SCENARIO_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "chaos_scenario.json"
)

# The ECH window: hourly scans repeat the same questions within a day,
# so every tier (rendered answers, zone-body reuse, wire bytes) gets
# real traffic even at test scale.
ECH_KWARGS = dict(
    day_step=7,
    start=datetime.date(2023, 7, 14),
    end=datetime.date(2023, 7, 31),
    ech_sample=5,
)


def arm_query_logs(world):
    """Enable per-server query logging; ip → that server's live log."""
    logs = {}
    for ip, server in sorted(world.network._dns_servers.items()):
        if hasattr(server, "query_log"):
            server.log_queries = True
            logs[ip] = server.query_log
    return logs


def query_counts(world):
    return {
        ip: server.dns_query_count
        for ip, server in sorted(world.network._dns_servers.items())
        if hasattr(server, "dns_query_count")
    }


def run_logged(config, answer_cache, **kwargs):
    world = World(config)
    logs = arm_query_logs(world)
    dataset = run_campaign(world, answer_cache=answer_cache, **kwargs)
    return dataset, logs, world


class TestSerialEquivalence:
    """Cache-on and cache-off runs are indistinguishable in the data."""

    @pytest.fixture(scope="class")
    def pair(self):
        off = run_logged(CONFIG, False, **ECH_KWARGS)
        on = run_logged(CONFIG, True, **ECH_KWARGS)
        return off, on

    def test_datasets_value_equal(self, pair):
        (ds_off, _, _), (ds_on, _, _) = pair
        assert ds_on == ds_off

    def test_per_server_query_logs_identical(self, pair):
        (_, logs_off, _), (_, logs_on, _) = pair
        assert sorted(logs_on) == sorted(logs_off)
        for ip in logs_on:
            assert logs_on[ip] == logs_off[ip], f"query_log diverged on {ip}"

    def test_per_server_query_counts_identical(self, pair):
        (_, _, world_off), (_, _, world_on) = pair
        assert query_counts(world_on) == query_counts(world_off)

    def test_counters_report_the_fast_path(self, pair):
        (ds_off, _, _), (ds_on, _, _) = pair
        assert ds_on.run_stats.answer_hits > 0
        assert ds_on.run_stats.zone_body_reuses > 0
        assert ds_off.run_stats.answer_hits == 0
        assert ds_off.run_stats.answer_misses == 0
        assert ds_off.run_stats.zone_body_reuses == 0
        # counters are diagnostics, not data: equality above already
        # held even though these differ

    def test_campaign_cleanup_disarms_the_world(self, pair):
        (_, _, _), (_, _, world_on) = pair
        assert world_on.answer_cache.enabled is False
        assert len(world_on.answer_cache) == 0
        assert world_on._zone_bodies == {}


class TestWireModeEquivalence:
    """Tier 3: the byte-patch round trip serves the same messages."""

    @pytest.fixture(scope="class")
    def pair(self):
        off = run_logged(WIRE_CONFIG, False, batch=True, **ECH_KWARGS)
        on = run_logged(WIRE_CONFIG, True, batch=True, **ECH_KWARGS)
        return off, on

    def test_datasets_value_equal(self, pair):
        (ds_off, _, _), (ds_on, _, _) = pair
        assert ds_on == ds_off

    def test_query_logs_identical(self, pair):
        (_, logs_off, _), (_, logs_on, _) = pair
        assert logs_on == logs_off

    def test_wire_bytes_actually_reused(self, pair):
        _, (ds_on, _, _) = pair
        assert ds_on.run_stats.wire_byte_hits > 0

    def test_wire_mode_equals_object_mode(self, pair):
        """Cross-check against the non-wire cached run: the codec plus
        both byte-level caches still change nothing."""
        _, (ds_on, _, _) = pair
        plain = run_campaign(World(CONFIG), answer_cache=True, batch=True, **ECH_KWARGS)
        assert ds_on == plain


class TestExecutionModeEquivalence:
    """The cache composes with every execution shape."""

    @pytest.fixture(scope="class")
    def serial_off(self):
        return run_campaign(World(CONFIG), answer_cache=False, **ECH_KWARGS)

    def test_batched(self, serial_off):
        assert run_campaign(
            World(CONFIG), answer_cache=True, batch=True, **ECH_KWARGS
        ) == serial_off

    def test_sharded(self, serial_off):
        parallel = ParallelCampaignRunner(
            CONFIG, workers=3, executor="thread", answer_cache=True, **ECH_KWARGS
        ).run()
        assert parallel == serial_off
        assert parallel.run_stats.answer_hits > 0

    def test_sharded_cache_off_still_equal(self, serial_off):
        parallel = ParallelCampaignRunner(
            CONFIG, workers=2, executor="thread", answer_cache=False, **ECH_KWARGS
        ).run()
        assert parallel == serial_off
        assert parallel.run_stats.answer_hits == 0

    def test_continuous_kill_and_resume(self, serial_off, tmp_path):
        collector = ContinuousCollector(
            CONFIG, str(tmp_path / "ckpt"), workers=2, days_per_increment=2,
            executor="thread", answer_cache=True, **ECH_KWARGS
        )
        with pytest.raises(CollectionInterrupted):
            collector.collect(max_increments=1)
        resumed = ContinuousCollector(
            CONFIG, str(tmp_path / "ckpt"), workers=2, days_per_increment=2,
            executor="thread", answer_cache=True, **ECH_KWARGS
        ).collect()
        assert resumed == serial_off

    def test_chaos_scenario(self):
        """Under the CI chaos schedule, cache-on equals cache-off —
        faulted deliveries bypass the cache and faulted zone builds are
        never body-reused."""
        scenario = FaultSchedule.load(SCENARIO_PATH)
        kwargs = dict(day_step=28, ech_sample=20, scenario=scenario)
        off = run_logged(CONFIG, False, **kwargs)
        on = run_logged(CONFIG, True, **kwargs)
        assert on[0] == off[0]
        assert on[1] == off[1]  # per-server query logs
        assert on[0].run_stats.timeouts > 0  # the schedule actually bit
        assert on[0].run_stats.answer_hits > 0


class TestZoneBodyReuse:
    """Tier 2: a reused body is value-identical to a fresh build."""

    def zone_key(self, zone):
        return sorted(
            (rr.name.to_text(), rr.rdtype, rr.ttl,
             tuple(sorted(r.wire_bytes() for r in rr.rdatas)))
            for rr in zone.rrsets()
        )

    def test_reused_zone_equals_fresh_build(self):
        warm = World(CONFIG)
        warm.set_answer_cache(True)
        day = datetime.date(2023, 7, 14)
        profile = next(
            p for p in warm.listed_profiles(day)
            if p.adopter and domains.zone_body_fingerprint(
                p, CONFIG, day, None
            ) == domains.zone_body_fingerprint(
                p, CONFIG, day + datetime.timedelta(days=1), None
            )
        )
        warm.set_time(day)
        warm.zone_of(profile)
        builds = warm.zone_builds
        warm.set_time(day + datetime.timedelta(days=1))
        reused = warm.zone_of(profile)
        assert warm.zone_body_reuses >= 1
        assert warm.zone_builds == builds  # no rebuild for this profile

        fresh = World(CONFIG)
        fresh.set_time(day + datetime.timedelta(days=1))
        rebuilt = fresh.zone_of(profile)
        assert self.zone_key(reused) == self.zone_key(rebuilt)
        assert reused.soa[0].serial == rebuilt.soa[0].serial

    def test_same_day_reuse_skips_serial_roll(self):
        world = World(CONFIG)
        world.set_answer_cache(True)
        day = datetime.date(2023, 7, 14)
        world.set_time(day)
        profile = next(p for p in world.listed_profiles(day) if p.adopter)
        first = world.zone_of(profile)
        serial = first.soa[0].serial
        world.set_time(day, hour=9.0)  # same day, later hour
        again = world.zone_of(profile)
        assert again is first
        assert again.soa[0].serial == serial
        assert serial == timeline.day_index(day) + 1


class TestLifecycle:
    def test_world_reset_flushes_and_disarms(self):
        world = World(CONFIG)
        world.set_answer_cache(True)
        world.set_time(datetime.date(2023, 7, 14))
        world.stub.query_https(world.tranco_list()[0])
        world.reset()
        assert world.answer_cache.enabled is False
        assert len(world.answer_cache) == 0
        assert world._zone_bodies == {}
        assert world.answer_cache.hits == 0
        assert world.answer_cache.misses == 0
        assert world.zone_builds == 0
        assert world.zone_body_reuses == 0

    def test_disarm_drops_zone_bodies(self):
        world = World(CONFIG)
        world.set_answer_cache(True)
        world.set_time(datetime.date(2023, 7, 14))
        world.zone_of(next(p for p in world.listed_profiles() if p.adopter))
        assert world._zone_bodies
        world.set_answer_cache(False)
        assert world._zone_bodies == {}
        assert len(world.answer_cache) == 0

    def test_fault_install_and_clear_invalidate(self):
        world = World(CONFIG)
        world.set_answer_cache(True)
        world.set_time(datetime.date(2023, 9, 15))
        world.stub.query_https(world.tranco_list()[0])
        assert len(world.answer_cache) > 0
        world.install_faults(FaultSchedule.load(SCENARIO_PATH))
        assert len(world.answer_cache) == 0
        world.stub.query_https(world.tranco_list()[0])
        world.clear_faults()
        assert len(world.answer_cache) == 0


class TestAnswerCacheUnit:
    class FakeResponse:
        rcode = 0
        authoritative = True
        answers = ()
        authority = ()
        additional = ()

    def test_eviction_bound_holds(self):
        cache = AnswerCache(capacity=8)
        cache.set_enabled(True)
        for index in range(20):
            cache.store(("key", index), self.FakeResponse())
        assert len(cache) == 8
        assert cache.evictions == 12
        # oldest entries are the evicted ones
        assert cache.lookup(("key", 0)) is None
        assert cache.lookup(("key", 19)) is not None

    def test_toggle_clears_entries(self):
        cache = AnswerCache(capacity=8)
        cache.set_enabled(True)
        cache.store(("key", 1), self.FakeResponse())
        cache.set_enabled(False)
        assert len(cache) == 0
        cache.set_enabled(True)
        assert len(cache) == 0

    def test_invalidate_keeps_counters(self):
        cache = AnswerCache(capacity=8)
        cache.set_enabled(True)
        cache.store(("key", 1), self.FakeResponse())
        cache.lookup(("key", 1))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1


class TestCacheIdentity:
    """The knob is execution-only: it must never reach the cache tag."""

    def test_cache_tag_ignores_answer_cache(self, tmp_path):
        spec = StudySpec(SimConfig(population=60), day_step=14)
        tag = spec.cache_tag()
        on = Study(spec, ExecutionPlan(cache_dir=str(tmp_path), answer_cache=True))
        off = Study(spec, ExecutionPlan(cache_dir=str(tmp_path), answer_cache=False))
        assert on.cache_path == off.cache_path
        assert spec.cache_tag() == tag

    def test_from_env_default_and_override(self):
        assert ExecutionPlan.from_env(environ={}).answer_cache is True
        assert ExecutionPlan.from_env(
            environ={"REPRO_ANSWER_CACHE": "0"}
        ).answer_cache is False
        assert ExecutionPlan.from_env(
            environ={"REPRO_ANSWER_CACHE": "yes"}
        ).answer_cache is True
        assert ExecutionPlan.from_env(
            environ={"REPRO_ANSWER_CACHE": "1"}, answer_cache=False
        ).answer_cache is False

    def test_run_stats_merge_accumulates_counters(self):
        from repro.scanner.campaign import RunStats

        left = RunStats(answer_hits=3, wire_byte_hits=1, zone_body_reuses=2)
        right = RunStats(answer_hits=4, answer_evictions=1, zone_builds=5)
        merged = left + right
        assert merged.answer_hits == 7
        assert merged.answer_evictions == 1
        assert merged.wire_byte_hits == 1
        assert merged.zone_builds == 5
        assert merged.zone_body_reuses == 2
