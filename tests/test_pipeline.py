"""Tests for the sharded scan pipeline and its merge machinery.

The load-bearing property is *equality*: a campaign sharded across
workers must produce a dataset indistinguishable from the sequential
run — same snapshots (including dict iteration order), same hourly ECH
rows in the same order, same DNSSEC snapshot.
"""

import datetime

import pytest

from repro.scanner import (
    Dataset,
    ParallelCampaignRunner,
    ShardPlan,
    canonical_cache_tag,
    load_or_run_campaign,
    merge_shard_datasets,
    run_campaign,
)
from repro.scanner.dataset import DailySnapshot
from repro.scanner.incremental import DatasetMergeError
from repro.simnet import SimConfig, World

POPULATION = 150
CONFIG = SimConfig(population=POPULATION)


class TestShardPlan:
    NAMES = [f"domain-{i:04d}.com" for i in range(200)]

    def test_partition_is_exact_cover(self):
        plan = ShardPlan(4, seed="s")
        parts = plan.partition(self.NAMES)
        assert len(parts) == 4
        flat = [name for part in parts for name in part]
        assert sorted(flat) == sorted(self.NAMES)
        assert all(parts), "hash partition should not leave a shard empty"

    def test_assignment_is_deterministic(self):
        first = ShardPlan(7, seed="s")
        second = ShardPlan(7, seed="s")
        assert [first.shard_of(n) for n in self.NAMES] == [
            second.shard_of(n) for n in self.NAMES
        ]

    def test_slice_matches_partition_and_keeps_order(self):
        plan = ShardPlan(3, seed="x")
        parts = plan.partition(self.NAMES)
        for index in range(3):
            assert plan.slice_of(self.NAMES, index) == parts[index]

    def test_seed_changes_assignment(self):
        a = ShardPlan(5, seed="a")
        b = ShardPlan(5, seed="b")
        assert [a.shard_of(n) for n in self.NAMES] != [b.shard_of(n) for n in self.NAMES]

    def test_single_shard(self):
        plan = ShardPlan(1, seed="s")
        assert plan.partition(self.NAMES) == [list(self.NAMES)]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardPlan(0)


class TestEquivalence:
    """workers>1 must reproduce the sequential dataset exactly."""

    ECH_KWARGS = dict(
        day_step=7,
        start=datetime.date(2023, 7, 14),
        end=datetime.date(2023, 7, 31),
        ech_sample=5,
    )
    LATE_KWARGS = dict(
        day_step=14,
        start=datetime.date(2023, 12, 20),
        end=datetime.date(2024, 2, 5),
        with_ech_hourly=False,
    )

    @pytest.fixture(scope="class")
    def ech_week_pair(self):
        sequential = run_campaign(World(CONFIG), **self.ECH_KWARGS)
        parallel = ParallelCampaignRunner(
            CONFIG, workers=4, executor="process", **self.ECH_KWARGS
        ).run()
        return sequential, parallel

    @pytest.fixture(scope="class")
    def late_window_pair(self):
        """DNSSEC snapshot + connectivity window, thread executor."""
        sequential = run_campaign(World(CONFIG), **self.LATE_KWARGS)
        parallel = ParallelCampaignRunner(
            CONFIG, workers=3, executor="thread", **self.LATE_KWARGS
        ).run()
        return sequential, parallel

    def test_snapshots_equal(self, ech_week_pair):
        sequential, parallel = ech_week_pair
        assert parallel.days() == sequential.days()
        for day in sequential.days():
            assert parallel.snapshots[day] == sequential.snapshots[day]

    def test_snapshot_iteration_order_matches(self, ech_week_pair):
        sequential, parallel = ech_week_pair
        for day in sequential.days():
            assert list(parallel.snapshots[day].apex) == list(sequential.snapshots[day].apex)
            assert list(parallel.snapshots[day].www) == list(sequential.snapshots[day].www)

    def test_ech_observations_equal_in_order(self, ech_week_pair):
        sequential, parallel = ech_week_pair
        assert sequential.ech_observations, "window must exercise the hourly scan"
        assert parallel.ech_observations == sequential.ech_observations

    def test_full_dataset_equal(self, ech_week_pair):
        sequential, parallel = ech_week_pair
        assert parallel == sequential

    def test_adoption_analysis_identical(self, ech_week_pair):
        from repro.analysis import adoption

        sequential, parallel = ech_week_pair
        seq_series = adoption.dynamic_adoption(sequential)
        par_series = adoption.dynamic_adoption(parallel)
        assert par_series["apex"].points == seq_series["apex"].points

    def test_ech_share_analysis_identical(self, ech_week_pair):
        from repro.analysis import ech_analysis

        sequential, parallel = ech_week_pair
        assert ech_analysis.fig13_ech_share(parallel) == ech_analysis.fig13_ech_share(
            sequential
        )

    def test_dnssec_snapshot_equal(self, late_window_pair):
        sequential, parallel = late_window_pair
        assert sequential.dnssec_snapshot, "window must cover the snapshot day"
        assert parallel.dnssec_snapshot_date == sequential.dnssec_snapshot_date
        assert parallel.dnssec_snapshot == sequential.dnssec_snapshot

    def test_connectivity_and_watchlist_equal(self, late_window_pair):
        sequential, parallel = late_window_pair
        assert parallel == sequential
        assert any(s.connectivity for s in sequential.snapshots.values())

    def test_ns_stage_populates_merged_snapshots(self, late_window_pair):
        """Stage 1 skips NS scans; the post-merge NS stage must fill
        them back in, identical to the sequential inline scan."""
        sequential, parallel = late_window_pair
        ns_days = [d for d in sequential.days() if sequential.snapshots[d].ns_observations]
        assert ns_days, "window must cover the NS-IP scan"
        for day in ns_days:
            assert (
                parallel.snapshots[day].ns_observations
                == sequential.snapshots[day].ns_observations
            )


class TestMergeShardDatasets:
    def _dataset(self, population=100, seed="s", days=(datetime.date(2023, 5, 8),)):
        dataset = Dataset(population, seed, 7)
        for day in days:
            dataset.add_snapshot(DailySnapshot(day, ("a.com", "b.com")))
        return dataset

    def test_empty_rejected(self):
        with pytest.raises(DatasetMergeError):
            merge_shard_datasets([])

    def test_world_mismatch_rejected(self):
        with pytest.raises(DatasetMergeError):
            merge_shard_datasets([self._dataset(seed="s"), self._dataset(seed="t")])

    def test_day_mismatch_rejected(self):
        other = self._dataset(days=(datetime.date(2023, 5, 15),))
        with pytest.raises(DatasetMergeError):
            merge_shard_datasets([self._dataset(), other])

    def test_ranked_list_mismatch_rejected(self):
        day = datetime.date(2023, 5, 8)
        first = self._dataset(days=(day,))
        second = Dataset(100, "s", 7)
        second.add_snapshot(DailySnapshot(day, ("c.com",)))
        with pytest.raises(DatasetMergeError):
            merge_shard_datasets([first, second])


class TestCacheTag:
    def test_stable_across_orderings(self):
        assert canonical_cache_tag({"a": 1, "b": "x"}) == canonical_cache_tag(
            {"b": "x", "a": 1}
        )

    def test_dates_serialize_to_iso(self):
        tag = canonical_cache_tag({"start": datetime.date(2023, 5, 8)})
        assert "2023-05-08" in tag

    def test_bool_and_int_do_not_collide(self):
        assert canonical_cache_tag({"k": True}) != canonical_cache_tag({"k": 1})

    def test_non_primitive_rejected(self):
        with pytest.raises(TypeError):
            canonical_cache_tag({"progress": print})
        with pytest.raises(TypeError):
            canonical_cache_tag({"days": [1, 2]})

    def test_workers_share_one_cache_entry(self, tmp_path):
        """The sharded run yields the same dataset, so any workers value
        must reuse (not rebuild) the cached sequential dataset."""
        kwargs = dict(
            day_step=14,
            start=datetime.date(2023, 5, 8),
            end=datetime.date(2023, 6, 5),
            with_ech_hourly=False,
            with_dnssec_snapshot=False,
        )
        config = SimConfig(population=60)
        first = load_or_run_campaign(config, cache_dir=str(tmp_path), **kwargs)
        cached = list(tmp_path.iterdir())
        assert len(cached) == 1
        again = load_or_run_campaign(config, cache_dir=str(tmp_path), workers=4, **kwargs)
        assert list(tmp_path.iterdir()) == cached
        assert again == first
