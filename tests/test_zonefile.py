"""Tests for the zone-file parser/serializer."""

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.zones.zonefile import (
    ZoneFileError,
    parse_ttl,
    parse_zone_file,
    serialize_zone,
)

SAMPLE = """
$ORIGIN example.com.
$TTL 300
@   IN SOA ns1.example.com. hostmaster.example.com. (
        2024010101 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
@       IN NS   ns1.example.com.
@       IN A    192.0.2.1
        IN AAAA 2001:db8::1
@   60  IN HTTPS 1 . alpn=h2,h3 ipv4hint=192.0.2.1
www     IN CNAME example.com.
ns1     IN A    192.0.2.53
"""


class TestParsing:
    def test_full_zone(self):
        zone = parse_zone_file(SAMPLE)
        assert zone.apex == Name.from_text("example.com.")
        assert zone.soa is not None
        assert zone.soa[0].serial == 2024010101
        https = zone.get_rrset(zone.apex, rdtypes.HTTPS)
        assert https is not None and https.ttl == 60
        assert https[0].params.alpn == ("h2", "h3")

    def test_blank_owner_repeats_previous(self):
        zone = parse_zone_file(SAMPLE)
        aaaa = zone.get_rrset(zone.apex, rdtypes.AAAA)
        assert aaaa is not None and aaaa[0].address == "2001:db8::1"

    def test_relative_names_resolved(self):
        zone = parse_zone_file(SAMPLE)
        assert zone.get_rrset(Name.from_text("www.example.com."), rdtypes.CNAME) is not None

    def test_comments_stripped(self):
        zone = parse_zone_file("@ IN A 1.2.3.4 ; trailing comment\n", origin="a.com.")
        assert zone.get_rrset(Name.from_text("a.com."), rdtypes.A) is not None

    def test_semicolon_inside_quotes_kept(self):
        zone = parse_zone_file('@ IN TXT "v=spf1; include:x"\n', origin="a.com.")
        txt = zone.get_rrset(Name.from_text("a.com."), rdtypes.TXT)
        assert b"v=spf1; include:x" in txt[0].strings

    def test_origin_argument(self):
        zone = parse_zone_file("@ IN A 1.2.3.4\nwww IN A 1.2.3.5\n", origin="b.net.")
        assert zone.apex == Name.from_text("b.net.")
        assert zone.get_rrset(Name.from_text("www.b.net."), rdtypes.A) is not None

    def test_ttl_units(self):
        assert parse_ttl("300") == 300
        assert parse_ttl("5m") == 300
        assert parse_ttl("2H") == 7200
        assert parse_ttl("1d") == 86400
        assert parse_ttl("1w") == 604800
        with pytest.raises(ZoneFileError):
            parse_ttl("5x")

    def test_explicit_ttl_field(self):
        zone = parse_zone_file("@ 60 IN A 1.2.3.4\n", origin="a.com.")
        assert zone.get_rrset(Name.from_text("a.com."), rdtypes.A).ttl == 60

    def test_class_before_ttl(self):
        zone = parse_zone_file("@ IN 60 A 1.2.3.4\n", origin="a.com.")
        assert zone.get_rrset(Name.from_text("a.com."), rdtypes.A).ttl == 60


class TestErrors:
    def test_relative_name_without_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("www IN A 1.2.3.4\n")

    def test_at_without_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("@ IN A 1.2.3.4\n")

    def test_unbalanced_parens(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("@ IN SOA a. b. ( 1 2 3 4\n", origin="a.com.")

    def test_unknown_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("$GENERATE 1-10 x A 1.2.3.$\n", origin="a.com.")

    def test_bad_rdata_reports_line(self):
        with pytest.raises(ZoneFileError) as excinfo:
            parse_zone_file("@ IN A not-an-ip\n", origin="a.com.")
        assert "line 1" in str(excinfo.value)

    def test_missing_type(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("@ IN\n", origin="a.com.")

    def test_empty_file(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("; only a comment\n", origin="a.com.")

    def test_apex_cname_rejected_by_default(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file("@ IN CNAME www.a.com.\n@ IN NS ns1.a.com.\n", origin="a.com.")


class TestRoundTrip:
    def test_serialize_and_reparse(self):
        zone = parse_zone_file(SAMPLE)
        text = serialize_zone(zone)
        reparsed = parse_zone_file(text)
        assert reparsed.apex == zone.apex
        for rrset in zone.rrsets():
            match = reparsed.get_rrset(rrset.name, rrset.rdtype)
            assert match == rrset, f"{rrset.name} {rrset.rdtype} diverged"

    def test_soa_first_in_output(self):
        zone = parse_zone_file(SAMPLE)
        lines = [l for l in serialize_zone(zone).splitlines() if not l.startswith("$")]
        assert " SOA " in lines[0]

    def test_relativized_owner(self):
        zone = parse_zone_file(SAMPLE)
        text = serialize_zone(zone)
        assert "\nwww 300 IN CNAME" in text
        assert "@ " in text
