"""Tests for the unified Study API (:mod:`repro.study`).

The load-bearing guarantees: the canonical cache tag is pinned (the
facade cannot orphan pre-existing ``.cache`` entries — golden-tag test),
the ``load_or_run_campaign`` shim is dataset- and cache-path-equivalent
to ``Study.run()``, typo'd knobs raise ``TypeError`` instead of being
silently cache-keyed, corrupt caches warn before rebuilding, and the
continuous lifecycle (run → interrupt → ``resume()`` → ``release()``)
produces a validated release of a dataset value-equal to the one-shot
campaign.
"""

import datetime
import gzip
import os
import pickle
import warnings

import pytest

from repro.scanner import (
    CheckpointError,
    CollectionInterrupted,
    canonical_cache_tag,
    load_or_run_campaign,
    run_campaign,
)
from repro.simnet import SimConfig, World
from repro.study import (
    UNSET,
    ExecutionPlan,
    Study,
    StudyError,
    StudySpec,
    validate_release,
)

import dataclasses

CONFIG = SimConfig(population=120)
# Small but complete: at day_step 60 the default study window still
# exercises the hourly ECH week, the DNSSEC snapshot, NS-IP scans, and
# connectivity probes.
FULL_SPEC = StudySpec(CONFIG, day_step=60, ech_sample=3)

TINY_CONFIG = SimConfig(population=60)
TINY = dict(
    day_step=60,
    start=datetime.date(2023, 5, 8),
    end=datetime.date(2023, 9, 30),
    with_ech_hourly=False,
    with_dnssec_snapshot=False,
)


@pytest.fixture(scope="module")
def one_shot_full():
    return run_campaign(World(CONFIG), day_step=60, ech_sample=3)


# ---------------------------------------------------------------------------
# cache-tag identity
# ---------------------------------------------------------------------------

# The exact tag + cache filename the pre-facade load_or_run_campaign
# produced for (SimConfig(population=60), day_step=14) with no schedule
# overrides. If either assertion below ever fails, existing .cache
# entries (and continuous checkpoints) have been orphaned — that is a
# breaking change, not a refactor.
GOLDEN_TAG = (
    "|(60, 'imc2024-dnshttps', 2, 0.58, 0.1, 0.35, 0.95, 0.245, 0.33, 500, "
    "0.0006, 0.95, 0.015, 0.0013, 20.0, 0.004, 0.28, 0.2, 0.88, 0.1, 0.0116, "
    "0.0069, 0.006, 0.0008, 0.02, 0.002, 0.9, 0.073, 0.061, 0.505, 0.859, "
    "0.762, 240, 1.26, 0.33, 300, 60, False)"
)
GOLDEN_CACHE_NAME = "dataset_60_14_eb7b56fe114f4fda.pkl.gz"


class TestCacheTagGolden:
    def test_default_spec_tag_is_pinned(self):
        assert StudySpec(TINY_CONFIG, day_step=14).cache_tag() == GOLDEN_TAG

    def test_cache_filename_is_pinned(self, tmp_path):
        study = Study(
            StudySpec(TINY_CONFIG, day_step=14), ExecutionPlan(cache_dir=str(tmp_path))
        )
        assert os.path.basename(study.cache_path) == GOLDEN_CACHE_NAME

    def test_tag_matches_pre_facade_formula(self):
        spec = StudySpec(TINY_CONFIG, **TINY)
        overrides = {k: v for k, v in TINY.items() if k != "day_step"}
        expected = (
            canonical_cache_tag(overrides)
            + "|"
            + repr(dataclasses.astuple(TINY_CONFIG))
        )
        assert spec.cache_tag() == expected

    def test_continuous_tag_matches_pre_facade_formula(self, tmp_path):
        spec = StudySpec(TINY_CONFIG, **TINY)
        study = Study(
            spec,
            ExecutionPlan(
                cache_dir=str(tmp_path), continuous=True, days_per_increment=3
            ),
        )
        overrides = {k: v for k, v in TINY.items() if k != "day_step"}
        overrides.update(continuous=True, days_per_increment=3)
        expected = (
            canonical_cache_tag(overrides)
            + "|"
            + repr(dataclasses.astuple(TINY_CONFIG))
        )
        assert study.cache_tag == expected

    def test_unset_fields_stay_out_of_the_tag(self):
        """Only explicitly set schedule fields join the tag — exactly
        how the old surface keyed on the kwargs actually passed."""
        spec = StudySpec(TINY_CONFIG)
        assert spec.start is UNSET
        assert spec.cache_tag().startswith("|(")  # empty canonical part
        explicit = StudySpec(TINY_CONFIG, ech_sample=200)  # the default value
        assert explicit.cache_tag() != spec.cache_tag()

    def test_plan_knobs_do_not_touch_one_shot_tags(self, tmp_path):
        spec = StudySpec(TINY_CONFIG, **TINY)
        plain = Study(spec, ExecutionPlan(cache_dir=str(tmp_path)))
        tuned = Study(
            spec,
            ExecutionPlan(
                cache_dir=str(tmp_path), workers=4, batch=True,
                snapshot_dir=str(tmp_path / "worlds"), gc_policy="pause",
            ),
        )
        assert plain.cache_path == tuned.cache_path


# ---------------------------------------------------------------------------
# field validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            StudySpec(TINY_CONFIG, dya_step=7)

    def test_plan_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            ExecutionPlan(wrokers=2)

    def test_shim_rejects_typoed_knobs(self):
        """Regression: the old **kwargs surface silently accepted and
        cache-keyed misspelled options."""
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            load_or_run_campaign(TINY_CONFIG, eck_sample=40)

    def test_spec_rejects_bad_values(self):
        with pytest.raises(ValueError):
            StudySpec(TINY_CONFIG, day_step=0)
        with pytest.raises(TypeError):
            StudySpec(TINY_CONFIG, day_step="7")
        with pytest.raises(TypeError):
            StudySpec(config="not a SimConfig")
        with pytest.raises(TypeError):  # non-primitive overrides can't tag
            StudySpec(TINY_CONFIG, start=[2023, 5, 8])

    def test_plan_clamps_degenerate_workers(self):
        """workers=0 ran serially on the old surface (the runner and
        collector clamp with max(1, ...)); the plan keeps that contract
        instead of breaking REPRO_WORKERS=0 environments."""
        assert ExecutionPlan(workers=0).workers == 1
        assert ExecutionPlan(workers=-3).workers == 1

    def test_plan_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExecutionPlan(executor="fibers")
        with pytest.raises(ValueError):
            ExecutionPlan(gc_policy="yolo")
        with pytest.raises(ValueError):
            ExecutionPlan(continuous=True, days_per_increment=0)
        with pytest.raises(ValueError):
            ExecutionPlan(continuous=True, max_increments=-1)

    def test_plan_coerces_continuous_knobs_to_int(self):
        """Env-var strings must not fork the cache/checkpoint key
        (str:'3' vs int:3 would tag differently)."""
        plan = ExecutionPlan(continuous=True, days_per_increment="3", max_increments="2")
        assert plan.days_per_increment == 3
        assert plan.max_increments == 2

    def test_plan_rejects_continuous_knobs_without_continuous(self):
        """Silently dropping these would lose the resumable contract."""
        with pytest.raises(ValueError, match="require continuous=True"):
            ExecutionPlan(checkpoint_dir="ckpt")
        with pytest.raises(ValueError, match="require continuous=True"):
            ExecutionPlan(days_per_increment=3)
        with pytest.raises(ValueError, match="require continuous=True"):
            ExecutionPlan(max_increments=2)

    def test_study_rejects_bare_configs(self):
        with pytest.raises(TypeError):
            Study(TINY_CONFIG)


class TestPlanFromEnv:
    def test_reads_bench_knobs(self):
        plan = ExecutionPlan.from_env(
            {
                "REPRO_WORKERS": "3",
                "REPRO_BATCH": "1",
                "REPRO_SNAPSHOT": "yes",
                "REPRO_GC": "pause",
            },
            cache_dir="/bench/cache",
        )
        assert plan.workers == 3
        assert plan.batch is True
        assert plan.continuous is False
        assert plan.gc_policy == "pause"
        assert plan.snapshot_dir == os.path.join("/bench/cache", "worlds")

    def test_continuous_knob(self):
        assert ExecutionPlan.from_env({"REPRO_CONTINUOUS": "1"}).continuous

    def test_empty_environment_is_the_default_plan(self):
        assert ExecutionPlan.from_env({}) == ExecutionPlan()

    def test_overrides_beat_environment(self):
        plan = ExecutionPlan.from_env(
            {"REPRO_WORKERS": "3", "REPRO_SNAPSHOT": "1"},
            workers=1,
            snapshot_dir="/explicit",
        )
        assert plan.workers == 1
        assert plan.snapshot_dir == "/explicit"


# ---------------------------------------------------------------------------
# shim equivalence
# ---------------------------------------------------------------------------


class TestShimEquivalence:
    def test_one_shot_dataset_and_cache_path(self, tmp_path):
        with pytest.deprecated_call():
            via_shim = load_or_run_campaign(
                TINY_CONFIG, cache_dir=str(tmp_path), **TINY
            )
        [cache_file] = list(tmp_path.iterdir())
        spec = StudySpec(TINY_CONFIG, **TINY)
        with Study(spec, ExecutionPlan(cache_dir=str(tmp_path))) as study:
            assert study.cache_path == str(cache_file)
            dataset = study.run()
        assert dataset == via_shim
        assert dataset.loaded_from_cache, "study must reuse the shim's cache entry"
        assert list(tmp_path.iterdir()) == [cache_file]

    def test_continuous_key_and_checkpoint_path(self, tmp_path):
        with pytest.deprecated_call():
            via_shim = load_or_run_campaign(
                TINY_CONFIG, cache_dir=str(tmp_path),
                continuous=True, days_per_increment=1, **TINY
            )
        spec = StudySpec(TINY_CONFIG, **TINY)
        plan = ExecutionPlan(
            cache_dir=str(tmp_path), continuous=True, days_per_increment=1
        )
        with Study(spec, plan) as study:
            # Byte-identical continuous keys: the study points at the
            # exact checkpoint directory the shim run laid down ...
            assert os.path.isdir(study.checkpoint_dir)
            # ... and at a cache entry separate from the one-shot key.
            one_shot_path = Study(
                spec, ExecutionPlan(cache_dir=str(tmp_path))
            ).cache_path
            assert study.cache_path != one_shot_path
            dataset = study.run()
        assert dataset == via_shim
        assert dataset.loaded_from_cache


# ---------------------------------------------------------------------------
# cache robustness
# ---------------------------------------------------------------------------


class TestCacheRobustness:
    def _study(self, tmp_path):
        return Study(
            StudySpec(TINY_CONFIG, **TINY), ExecutionPlan(cache_dir=str(tmp_path))
        )

    def test_corrupt_cache_warns_and_rebuilds(self, tmp_path):
        study = self._study(tmp_path)
        with open(study.cache_path, "wb") as handle:
            handle.write(b"definitely not a gzipped dataset")
        with pytest.warns(RuntimeWarning, match="unreadable dataset cache"):
            dataset = study.run()
        assert not dataset.loaded_from_cache
        assert self._study(tmp_path).run().loaded_from_cache  # rebuild healed it

    def test_wrong_payload_type_warns(self, tmp_path):
        study = self._study(tmp_path)
        with gzip.open(study.cache_path, "wb") as handle:
            pickle.dump({"not": "a dataset"}, handle)
        with pytest.warns(RuntimeWarning, match="unreadable dataset cache"):
            study.run()

    def test_missing_cache_is_silent(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            self._study(tmp_path).run()


# ---------------------------------------------------------------------------
# session lifecycle: run → interrupt → resume → release
# ---------------------------------------------------------------------------


class TestLifecycle:
    @pytest.fixture()
    def study(self, tmp_path):
        plan = ExecutionPlan(
            continuous=True,
            workers=2,
            executor="thread",
            days_per_increment=5,
            max_increments=2,
            cache_dir=str(tmp_path / "cache"),
            release_dir=str(tmp_path / "releases"),
        )
        with Study(FULL_SPEC, plan) as session:
            yield session

    def test_run_interrupt_resume_release(self, study, one_shot_full):
        with pytest.raises(CollectionInterrupted):
            study.run()  # plan.max_increments caps the first session
        # The partial fold is visible, but not releasable by default.
        partial = study.dataset()
        assert set(partial.snapshots) < set(one_shot_full.snapshots)
        with pytest.raises(StudyError, match="missing"):
            study.release("v1")
        # resume() reuses the session's warm collector/pool ...
        collector = study._collector
        resumed = study.resume()
        assert study._collector is collector
        # ... and lands on the one-shot dataset.
        assert resumed == one_shot_full
        assert study.dataset() is resumed

        directory = study.release("v1")
        manifest = validate_release(directory)
        assert manifest["tag"] == "v1"
        assert manifest["complete"] is True
        assert manifest["missing_days"] == []
        assert manifest["coverage_gaps"] == []
        assert manifest["study"]["population"] == CONFIG.population
        assert manifest["study"]["cache_tag"] == study.cache_tag
        assert manifest["ech_observations"] == len(resumed.ech_observations)
        with pytest.raises(StudyError, match="already exists"):
            study.release("v1")

    def test_dataset_refuses_a_foreign_checkpoint(self, tmp_path):
        """dataset() goes through the checkpoint identity check — a
        mismatched study must get CheckpointError, never a silent read
        of another world's fold."""
        checkpoint = str(tmp_path / "ckpt")
        plan = ExecutionPlan(
            continuous=True, checkpoint_dir=checkpoint, executor="thread",
            days_per_increment=1, max_increments=1,
            cache_dir=str(tmp_path / "cache-a"),
        )
        with Study(StudySpec(TINY_CONFIG, **TINY), plan) as owner:
            with pytest.raises(CollectionInterrupted):
                owner.run()
        foreign = Study(
            StudySpec(SimConfig(population=70), **TINY),
            dataclasses.replace(plan, cache_dir=str(tmp_path / "cache-b")),
        )
        with pytest.raises(CheckpointError):
            foreign.dataset()

    def test_dataset_probe_leaves_no_checkpoint_state(self, tmp_path):
        """A read-only dataset() probe on a never-run continuous study
        must not initialise the checkpoint (a header written today would
        hard-block a run() after the next code change)."""
        plan = ExecutionPlan(
            continuous=True, checkpoint_dir=str(tmp_path / "ckpt"),
            cache_dir=str(tmp_path / "cache"),
        )
        study = Study(StudySpec(TINY_CONFIG, **TINY), plan)
        with pytest.raises(StudyError, match="no dataset yet"):
            study.dataset()
        assert not os.path.exists(tmp_path / "ckpt" / "meta.json")

    def test_dataset_before_any_collection_raises(self, tmp_path):
        study = Study(
            StudySpec(TINY_CONFIG, **TINY), ExecutionPlan(cache_dir=str(tmp_path))
        )
        with pytest.raises(StudyError, match="no dataset yet"):
            study.dataset()

    def test_release_requires_a_sane_tag(self, tmp_path):
        study = Study(
            StudySpec(TINY_CONFIG, **TINY), ExecutionPlan(cache_dir=str(tmp_path))
        )
        for bad in ("", "a/b", "..", "."):
            with pytest.raises(ValueError):
                study.release(bad)


class TestExportAndRelease:
    """Export/release mechanics against the rich session dataset (the
    same full-featured campaign the reporting tests exercise)."""

    @pytest.fixture()
    def study(self, sim_config, dataset, tmp_path):
        # The spec that produced the shared conftest dataset; priming
        # its cache entry makes the dataset this study's own.
        spec = StudySpec(sim_config, day_step=21, ech_sample=40)
        session = Study(
            spec,
            ExecutionPlan(
                cache_dir=str(tmp_path / "cache"),
                release_dir=str(tmp_path / "releases"),
            ),
        )
        dataset.save(session.cache_path)
        return session

    def test_export_writes_figure_files(self, study, tmp_path):
        written = study.export(str(tmp_path / "figures"))
        names = {os.path.basename(path) for path in written}
        assert {"fig2_adoption.csv", "fig11_hints.csv", "fig13_ech_share.csv",
                "fig5_signed.csv", "fig4_rotation.json"} <= names

    def test_release_is_complete_and_validates(self, study, dataset):
        directory = study.release("v2024.03")
        manifest = validate_release(directory)
        assert manifest["complete"] is True
        assert manifest["scan_days"]["count"] == len(dataset.days())
        assert manifest["dnssec_snapshot_date"] is not None
        assert "figures/fig2_adoption.csv" in manifest["files"]

    def test_tampered_release_fails_validation(self, study):
        directory = study.release("v-tamper")
        target = os.path.join(directory, "figures", "fig2_adoption.csv")
        with open(target, "a") as handle:
            handle.write("tampered\n")
        with pytest.raises(StudyError, match="corrupt"):
            validate_release(directory)

    def test_missing_release_file_fails_validation(self, study):
        directory = study.release("v-missing")
        os.unlink(os.path.join(directory, "dataset.pkl.gz"))
        with pytest.raises(StudyError, match="missing"):
            validate_release(directory)

    def test_foreign_directory_fails_validation(self, tmp_path):
        with pytest.raises(StudyError, match="unreadable release manifest"):
            validate_release(str(tmp_path))
