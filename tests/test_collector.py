"""Tests for the continuous-collection driver.

The headline guarantee: a continuous run over *any* partitioning of the
study window — interrupted and resumed or not — produces a dataset
value-equal to the one-shot ``run_campaign`` result, with ``run_stats``
accumulated across all increments. Plus the merge-axis composition
property (shards-then-days == days-then-shards) and the checkpoint's
identity/corruption safety rails.
"""

import datetime
import json
import os

import pytest

from repro.scanner import (
    CheckpointError,
    CollectionInterrupted,
    ContinuousCollector,
    ParallelCampaignRunner,
    build_schedule,
    canonical_cache_tag,
    fold_slice,
    load_checkpoint_dataset,
    load_or_run_campaign,
    merge_shard_datasets,
    run_campaign,
    slice_schedule,
)
from repro.simnet import SimConfig, World, timeline
from repro.simnet.faults import FaultSchedule, FaultSpec
from repro.simnet.providers import PROVIDERS

POPULATION = 120
CONFIG = SimConfig(population=POPULATION)

# Daily-scan + hourly-ECH window: slice boundaries cut through the ECH
# week, so folds must reassemble hourly rows across slices.
ECH_KWARGS = dict(
    day_step=7,
    start=datetime.date(2023, 7, 14),
    end=datetime.date(2023, 7, 24),
    ech_sample=4,
)
# Late window: DNSSEC snapshot day, NS-IP scans, connectivity probes,
# and the deactivation watchlist (the cross-increment seen_https carry).
LATE_KWARGS = dict(
    day_step=14,
    start=datetime.date(2023, 12, 20),
    end=datetime.date(2024, 2, 5),
    with_ech_hourly=False,
)
# Tiny window for checkpoint-identity tests (no ECH week, three days).
TINY_KWARGS = dict(
    day_step=60,
    start=datetime.date(2023, 5, 8),
    end=datetime.date(2023, 9, 30),
    with_ech_hourly=False,
    with_dnssec_snapshot=False,
)


@pytest.fixture(scope="module")
def one_shot_ech():
    return run_campaign(World(CONFIG), **ECH_KWARGS)


@pytest.fixture(scope="module")
def one_shot_late():
    return run_campaign(World(CONFIG), **LATE_KWARGS)


def _collector(
    checkpoint_dir, workers=2, days_per_increment=2, kwargs=ECH_KWARGS, scenario=None
):
    return ContinuousCollector(
        CONFIG,
        str(checkpoint_dir),
        workers=workers,
        days_per_increment=days_per_increment,
        executor="thread",
        scenario=scenario,
        **kwargs,
    )


# A chaos schedule straddling the ECH window: increments before, during,
# and after the fault see different worlds, so a resume that re-armed
# (or forgot to re-arm) the schedule would diverge from the one-shot.
CHAOS = FaultSchedule(
    name="chaos-resume",
    specs=(
        FaultSpec(
            kind="packet_loss",
            ip=PROVIDERS["cloudflare"].server_ip,
            rate=0.4,
            start=datetime.date(2023, 7, 17),
            end=datetime.date(2023, 7, 21),
        ),
    ),
)


class TestSliceSchedule:
    FULL = build_schedule(**ECH_KWARGS)

    def test_restricts_days_and_ech_window(self):
        days = self.FULL.scan_days[:2]
        sub = slice_schedule(self.FULL, days)
        assert sub.scan_days == days
        assert set(sub.ech_days) == set(days) & set(self.FULL.ech_days)
        assert sub.day_step == self.FULL.day_step
        assert sub.ech_sample == self.FULL.ech_sample

    def test_unknown_day_rejected(self):
        with pytest.raises(ValueError):
            slice_schedule(self.FULL, (datetime.date(1999, 1, 1),))

    def test_dnssec_threshold_owned_by_exactly_one_slice(self):
        schedule = build_schedule(**LATE_KWARGS)
        resolved = next(
            d for d in schedule.scan_days if d >= timeline.DNSSEC_SNAPSHOT
        )
        slices = [
            slice_schedule(schedule, schedule.scan_days[i : i + 2])
            for i in range(0, len(schedule.scan_days), 2)
        ]
        owners = [s for s in slices if s.dnssec_threshold is not None]
        assert len(owners) == 1
        assert resolved in owners[0].scan_days
        assert owners[0].dnssec_threshold == resolved

    def test_threshold_past_window_disables(self):
        schedule = build_schedule(**ECH_KWARGS)  # window ends before the snapshot day
        sub = slice_schedule(schedule, schedule.scan_days)
        assert sub.dnssec_threshold is None


class TestEquivalence:
    """The headline guarantee, on both study windows."""

    def test_ech_window_collection_equals_one_shot(self, one_shot_ech, tmp_path):
        collected = _collector(tmp_path / "ckpt").collect()
        assert collected == one_shot_ech
        assert collected.ech_observations  # window exercises the hourly scan

    def test_late_window_collection_equals_one_shot(self, one_shot_late, tmp_path):
        collected = _collector(
            tmp_path / "ckpt", workers=3, kwargs=LATE_KWARGS
        ).collect()
        assert collected == one_shot_late
        assert collected.dnssec_snapshot, "window must cover the snapshot day"
        assert any(s.connectivity for s in collected.snapshots.values())
        assert any(s.ns_observations for s in collected.snapshots.values())

    def test_watchlist_carries_across_slices(self, one_shot_late, tmp_path):
        """The seen_https carry: a one-day-per-increment partition keeps
        the deactivation watchlist identical to the one-shot run."""
        collected = _collector(
            tmp_path / "ckpt", workers=2, days_per_increment=1, kwargs=LATE_KWARGS
        ).collect()
        assert collected == one_shot_late

    def test_run_stats_accumulate_across_increments(self, tmp_path):
        collected = _collector(tmp_path / "ckpt").collect()
        assert collected.run_stats is not None
        assert collected.run_stats.dns_queries > 0
        # More than any single slice could account for: a one-slice
        # collection of just the first two days must count fewer queries.
        first_days = _collector(
            tmp_path / "small",
            days_per_increment=2,
            kwargs=dict(ECH_KWARGS, end=datetime.date(2023, 7, 21)),
        ).collect()
        assert collected.run_stats.dns_queries > first_days.run_stats.dns_queries


class TestAxisComposition:
    """merge_shard_datasets (same days) and fold_slice (disjoint days)
    commute: folding shards first or days first lands on the same value."""

    @pytest.fixture(scope="class")
    def parts_matrix(self):
        """parts[k][i]: day-slice k scanned over domain-shard i, with the
        seen_https carry a one-shot run would have accumulated."""
        schedule = build_schedule(**ECH_KWARGS)
        slices = [schedule.scan_days[i : i + 2] for i in range(0, len(schedule.scan_days), 2)]
        runner = ParallelCampaignRunner(
            CONFIG, workers=2, executor="thread", schedule=schedule, keep_alive=True
        )
        with runner:
            parts, seen = [], set()
            for slice_days in slices:
                sched = slice_schedule(schedule, slice_days)
                row = [
                    runner.run_shard(sched, index, seen_https=frozenset(seen))
                    for index in range(2)
                ]
                for part in row:
                    seen.update(part.apexes_with_https())
                parts.append(row)
            return schedule, slices, parts, runner

    def test_shards_then_days_equals_days_then_shards(self, parts_matrix, one_shot_ech):
        schedule, slices, parts, runner = parts_matrix
        # Axis order 1: merge same-day shards, then fold day-slices.
        shards_first = None
        for row, slice_days in zip(parts, slices):
            slice_dataset = merge_shard_datasets(row)
            slice_dataset = runner.finish_slice(
                slice_dataset, slice_schedule(schedule, slice_days)
            )
            shards_first = fold_slice(shards_first, slice_dataset)
        # Axis order 2: fold each shard's day-slices, then merge shards
        # (post-merge stages once, over the whole window).
        by_shard = []
        for index in range(2):
            longitudinal = None
            for row in parts:
                longitudinal = fold_slice(longitudinal, row[index])
            by_shard.append(longitudinal)
        days_first = runner.finish_slice(merge_shard_datasets(by_shard), schedule)
        assert shards_first == days_first
        assert shards_first == one_shot_ech


class TestResume:
    def test_interrupt_leaves_checkpoint_and_raises(self, tmp_path):
        collector = _collector(tmp_path / "ckpt")
        with pytest.raises(CollectionInterrupted) as info:
            collector.collect(max_increments=2)
        assert info.value.executed == 2
        assert info.value.remaining == collector.total_increments - 2
        journal = (tmp_path / "ckpt" / "journal.jsonl").read_text().splitlines()
        assert len(journal) == 2

    def test_resume_after_crash_equals_one_shot(self, one_shot_ech, tmp_path):
        with pytest.raises(CollectionInterrupted):
            _collector(tmp_path / "ckpt").collect(max_increments=2)
        resumed = _collector(tmp_path / "ckpt").collect()
        assert resumed == one_shot_ech
        # Completed increments were NOT re-run: the journal holds exactly
        # one line per increment across both sessions.
        journal = (tmp_path / "ckpt" / "journal.jsonl").read_text().splitlines()
        assert len(journal) == _collector(tmp_path / "other").total_increments
        # ... and the checkpoint's merged dataset is the full result.
        assert load_checkpoint_dataset(str(tmp_path / "ckpt")) == one_shot_ech

    def test_resume_storm_equals_one_shot(self, one_shot_ech, tmp_path):
        """Kill after every single increment; each session resumes."""
        final = None
        for _ in range(_collector(tmp_path / "x").total_increments + 1):
            try:
                final = _collector(tmp_path / "ckpt").collect(max_increments=1)
                break
            except CollectionInterrupted:
                continue
        assert final == one_shot_ech

    def test_resume_mid_scenario_equals_one_shot(self, tmp_path):
        """Kill the collection inside the fault window; the resumed
        session must re-install the schedule on its checked-out worlds
        and land value-equal to the one-shot scenario run."""
        one_shot = run_campaign(World(CONFIG), scenario=CHAOS, **ECH_KWARGS)
        assert one_shot.run_stats.timeouts > 0, "schedule must actually bite"
        with pytest.raises(CollectionInterrupted):
            _collector(tmp_path / "ckpt", scenario=CHAOS).collect(max_increments=2)
        resumed = _collector(tmp_path / "ckpt", scenario=CHAOS).collect()
        assert resumed == one_shot
        assert resumed.run_stats.timeouts > 0
        assert load_checkpoint_dataset(str(tmp_path / "ckpt")) == one_shot

    def test_corrupt_part_is_rerun_not_trusted(self, one_shot_ech, tmp_path):
        with pytest.raises(CollectionInterrupted):
            _collector(tmp_path / "ckpt").collect(max_increments=1)
        parts_dir = tmp_path / "ckpt" / "parts"
        [part] = list(parts_dir.iterdir())
        part.write_bytes(b"torn by a crash mid-write")
        resumed = _collector(tmp_path / "ckpt").collect()
        assert resumed == one_shot_ech

    def test_completed_checkpoint_returns_without_rescanning(self, tmp_path):
        collector = _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)
        first = collector.collect()
        again = _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)
        assert again.pending_increments() == []
        assert again.collect() == first


class TestCheckpointIdentity:
    def _interrupt(self, tmp_path, **overrides):
        collector = _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS, **overrides)
        with pytest.raises(CollectionInterrupted):
            collector.collect(max_increments=1)

    def test_partitioning_mismatch_rejected(self, tmp_path):
        self._interrupt(tmp_path, days_per_increment=1)
        with pytest.raises(CheckpointError, match="slices"):
            _collector(tmp_path / "ckpt", days_per_increment=2, kwargs=TINY_KWARGS)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        self._interrupt(tmp_path, workers=2)
        with pytest.raises(CheckpointError, match="workers"):
            _collector(tmp_path / "ckpt", workers=3, kwargs=TINY_KWARGS)

    def test_world_mismatch_rejected(self, tmp_path):
        self._interrupt(tmp_path)
        with pytest.raises(CheckpointError):
            ContinuousCollector(
                SimConfig(population=60),
                str(tmp_path / "ckpt"),
                workers=2,
                days_per_increment=1,
                executor="thread",
                **TINY_KWARGS,
            )

    def test_scenario_mismatch_rejected(self, tmp_path):
        """A checkpoint written under a chaos schedule names a different
        dataset than the fault-free collection (and vice versa)."""
        self._interrupt(tmp_path, scenario=CHAOS)
        with pytest.raises(CheckpointError, match="scenario"):
            _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)

    def test_pre_scenario_checkpoint_still_resumable(self, tmp_path):
        """Old checkpoints lack the "scenario" header key; a fault-free
        resume must accept them instead of demanding a restart."""
        self._interrupt(tmp_path)
        meta_path = tmp_path / "ckpt" / "meta.json"
        meta = json.loads(meta_path.read_text())
        assert meta["scenario"] is None
        del meta["scenario"]
        meta_path.write_text(json.dumps(meta))
        resumed = _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)
        assert resumed.pending_increments()

    def test_version_mismatch_rejected(self, tmp_path):
        self._interrupt(tmp_path)
        meta_path = tmp_path / "ckpt" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="version"):
            _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)

    def test_headerless_leftover_state_rejected(self, tmp_path):
        """Deleting just meta.json (e.g. to silence a mismatch error)
        must not let a new collection silently adopt the old fold."""
        self._interrupt(tmp_path)
        os.unlink(tmp_path / "ckpt" / "meta.json")
        with pytest.raises(CheckpointError, match="no meta.json"):
            _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)

    def test_foreign_directory_rejected(self, tmp_path):
        (tmp_path / "ckpt").mkdir()
        (tmp_path / "ckpt" / "meta.json").write_text(json.dumps({"magic": "nope"}))
        with pytest.raises(CheckpointError, match="not a collection checkpoint"):
            _collector(tmp_path / "ckpt", kwargs=TINY_KWARGS)


class TestCacheTagIsolation:
    """Continuous checkpoints and cached one-shot datasets must never
    alias each other under the same cache key."""

    def test_continuous_knobs_change_the_tag(self):
        base = {"day_step": 14}
        assert canonical_cache_tag(base) != canonical_cache_tag(
            dict(base, continuous=True, days_per_increment=7)
        )
        assert canonical_cache_tag(
            dict(base, continuous=True, days_per_increment=7)
        ) != canonical_cache_tag(dict(base, continuous=True, days_per_increment=3))

    def test_load_or_run_keeps_separate_cache_entries(self, tmp_path):
        config = SimConfig(population=60)
        kwargs = dict(TINY_KWARGS, end=datetime.date(2023, 7, 10))
        one_shot = load_or_run_campaign(config, cache_dir=str(tmp_path), **kwargs)
        datasets = [p for p in tmp_path.iterdir() if p.name.endswith(".pkl.gz")]
        assert len(datasets) == 1
        continuous = load_or_run_campaign(
            config, cache_dir=str(tmp_path), continuous=True,
            days_per_increment=1, **kwargs
        )
        assert continuous == one_shot
        datasets = [p for p in tmp_path.iterdir() if p.name.endswith(".pkl.gz")]
        assert len(datasets) == 2, "continuous run must not reuse the one-shot entry"
        # The checkpoint lands in its own key-scoped directory.
        checkpoints = tmp_path / "checkpoints"
        assert checkpoints.is_dir() and any(checkpoints.iterdir())
