"""The paper's Tables 6 and 7, regenerated and checked cell by cell."""

import pytest

from repro.browser.experiments import FULL, HALF, NONE, build_table6, build_table7


@pytest.fixture(scope="module")
def table6():
    return build_table6()


@pytest.fixture(scope="module")
def table7():
    return build_table7()


# Expected Table 6 (paper §5, Table 6).
TABLE6_EXPECTED = {
    "{apex}": {"Chrome": FULL, "Safari": HALF, "Edge": FULL, "Firefox": FULL},
    "http://{apex}": {"Chrome": FULL, "Safari": HALF, "Edge": FULL, "Firefox": FULL},
    "https://{apex}": {"Chrome": FULL, "Safari": FULL, "Edge": FULL, "Firefox": FULL},
    "AliasMode TargetName": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": NONE},
    "TargetName": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": FULL},
    "port": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": FULL},
    "alpn": {"Chrome": FULL, "Safari": FULL, "Edge": FULL, "Firefox": FULL},
    "IP hints": {"Chrome": NONE, "Safari": FULL, "Edge": NONE, "Firefox": FULL},
}

# Expected Table 7 (paper §5.3, Table 7). Safari is excluded (no ECH).
TABLE7_EXPECTED = {
    "Shared Mode Support": {"Chrome": FULL, "Edge": FULL, "Firefox": FULL},
    "(1) Unilateral ECH": {"Chrome": FULL, "Edge": FULL, "Firefox": FULL},
    "(2) Malformed ECH": {"Chrome": NONE, "Edge": NONE, "Firefox": FULL},
    "(3) Mismatched key": {"Chrome": FULL, "Edge": FULL, "Firefox": FULL},
    "Split Mode Support": {"Chrome": NONE, "Edge": NONE, "Firefox": NONE},
}


@pytest.mark.parametrize("row", sorted(TABLE6_EXPECTED))
def test_table6_row(table6, row):
    assert table6.rows[row] == TABLE6_EXPECTED[row], f"Table 6 row {row!r} diverges"


@pytest.mark.parametrize("row", sorted(TABLE7_EXPECTED))
def test_table7_row(table7, row):
    assert table7.rows[row] == TABLE7_EXPECTED[row], f"Table 7 row {row!r} diverges"


def test_table7_split_mode_error_string(table7):
    """Chrome/Edge show the ERR_ECH_FALLBACK_CERTIFICATE_INVALID error."""
    joined = " ".join(table7.notes)
    assert "ERR_ECH_FALLBACK_CERTIFICATE_INVALID" in joined


def test_tables_render(table6, table7):
    for matrix in (table6, table7):
        text = matrix.render()
        assert "●" in text and "○" in text
