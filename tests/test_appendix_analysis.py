"""Unit tests for the Appendix-E oddity census."""

import pytest

from repro.analysis.appendix import (
    _looks_like_ip,
    census,
    google_quic_first_seen,
    nexuspipe_port_scheme,
)
from repro.simnet import timeline


class TestIpLiteralDetection:
    def test_escaped_single_label(self):
        assert _looks_like_ip("1\\.2\\.3\\.4.")

    def test_plain_dotted(self):
        assert _looks_like_ip("10.0.0.1.")

    def test_hostname_rejected(self):
        assert not _looks_like_ip("pool.example.com.")

    def test_out_of_range_rejected(self):
        assert not _looks_like_ip("1.2.3.999.")

    def test_root_rejected(self):
        assert not _looks_like_ip(".")


class TestCensusOnDataset:
    def test_planted_specials_found(self, dataset):
        result = census(dataset)
        assert "newlinesmag.com" in result.alias_self_domains
        assert "gachoiphungluan.com" in result.url_target_domains
        assert {"unze.com.pk", "idaillinois.org", "pokemon-arena.net"} <= set(
            result.ip_target_domains
        )
        assert result.odd_single_priority_domains.get("host-ir.com") == 443
        assert result.odd_single_priority_domains.get("pionerfm.ru") == 1800
        assert "gentoo.org" in result.draft_h3_domains
        assert "mailhost-berlin.de" in result.http11_only_domains

    def test_nexuspipe_scheme(self, dataset):
        geo = nexuspipe_port_scheme(dataset)
        assert geo, "planted nexuspipe-geo domains must appear"
        for pairs in geo.values():
            priorities = [prio for prio, _port in pairs]
            ports = [port for _prio, port in pairs]
            assert priorities == list(range(1, 13))
            assert all(port is not None for port in ports)
            assert len(set(ports)) == len(ports)

    def test_google_quic_window(self, dataset):
        first = google_quic_first_seen(dataset)
        if first is None:
            # 0.003% cohort rounds to zero at the test population; the
            # bench-scale dataset asserts presence (test_appendix_e.py).
            pytest.skip("Google-QUIC cohort empty at this population")
        assert first >= timeline.GOOGLE_QUIC_APPEARANCE

    def test_census_day_selection(self, dataset):
        early = census(dataset, date=dataset.days()[0])
        # gentoo's draft-h3 flag only counts after the May 31 retirement.
        assert "gentoo.org" not in early.draft_h3_domains
