"""Shared fixtures: a small world and a small campaign dataset.

Session-scoped because world construction and campaign scanning dominate
test runtime; all consumers treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.scanner import run_campaign
from repro.simnet import SimConfig, World


TEST_POPULATION = 900


@pytest.fixture(scope="session")
def sim_config() -> SimConfig:
    return SimConfig(population=TEST_POPULATION)


@pytest.fixture(scope="session")
def world(sim_config) -> World:
    return World(sim_config)


@pytest.fixture(scope="session")
def dataset(sim_config):
    """A compact but full-featured campaign (includes the ECH hourly
    window, the DNSSEC snapshot, and the connectivity window)."""
    return run_campaign(World(sim_config), day_step=21, ech_sample=40)
