"""Tests for the CLI tools and the CSV/JSON export layer."""

import datetime
import json
import os

import pytest

from repro.cli import dig_main, scan_main, tables_main
from repro.reporting.export import (
    export_figure_data,
    multi_series_to_csv,
    series_to_csv,
    table_to_csv,
    to_json,
)


class TestExportPrimitives:
    def test_series_csv(self):
        text = series_to_csv([(datetime.date(2023, 5, 8), 20.5)], "pct")
        lines = text.strip().splitlines()
        assert lines[0] == "date,pct"
        assert lines[1].startswith("2023-05-08,20.5")

    def test_multi_series_joins_on_date(self):
        a = [(datetime.date(2023, 5, 8), 1.0), (datetime.date(2023, 5, 9), 2.0)]
        b = [(datetime.date(2023, 5, 9), 3.0)]
        text = multi_series_to_csv({"a": a, "b": b})
        lines = text.strip().splitlines()
        assert lines[0] == "date,a,b"
        assert lines[1].endswith(",")  # b missing on day 1
        assert "3.0" in lines[2]

    def test_table_csv(self):
        text = table_to_csv(["x", "y"], [[1, 2]])
        assert text.strip().splitlines() == ["x,y", "1,2"]

    def test_json_handles_dates_and_bytes(self):
        payload = {"day": datetime.date(2024, 1, 2), "digest": b"\x01\x02", "s": {"b", "a"}}
        decoded = json.loads(to_json(payload))
        assert decoded["day"] == "2024-01-02"
        assert decoded["digest"] == "0102"
        assert decoded["s"] == ["a", "b"]


class TestExportFigureData:
    def test_writes_all_files(self, dataset, tmp_path):
        written = export_figure_data(dataset, str(tmp_path))
        names = {os.path.basename(path) for path in written}
        assert {"fig2_adoption.csv", "fig11_hints.csv", "fig13_ech_share.csv",
                "fig5_signed.csv", "fig4_rotation.json"} <= names
        adoption_csv = (tmp_path / "fig2_adoption.csv").read_text()
        assert adoption_csv.startswith("date,")
        assert len(adoption_csv.strip().splitlines()) == len(dataset.days()) + 1
        rotation = json.loads((tmp_path / "fig4_rotation.json").read_text())
        assert rotation["public_names"] == ["cloudflare-ech.com"]


class TestCli:
    def test_dig_https(self, capsys):
        rc = dig_main(["err.ee", "HTTPS", "--population", "200", "--date", "2023-09-01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ANSWER" in out
        assert "HTTPS" in out

    def test_dig_nonexistent(self, capsys):
        rc = dig_main([
            "no-such-domain-xyz.com", "A", "--population", "200", "--date", "2023-09-01",
        ])
        assert rc == 1

    def test_dig_bad_type(self):
        with pytest.raises(SystemExit):
            dig_main(["err.ee", "BOGUSTYPE", "--population", "200"])

    def test_tables_table7_only(self, capsys):
        rc = tables_main(["--table", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Split Mode" in out
        assert "Table 6" not in out

    def test_scan_continuous_flags_require_continuous(self, capsys):
        with pytest.raises(SystemExit):
            scan_main(["--max-increments", "2"])
        assert "requires --continuous" in capsys.readouterr().err

    def test_scan_release_dir_requires_release(self, capsys):
        with pytest.raises(SystemExit):
            scan_main(["--release-dir", "out"])
        assert "requires --release" in capsys.readouterr().err

    def test_scan_rejects_bad_release_tag(self, capsys):
        with pytest.raises(SystemExit):
            scan_main(["--release", "v1/beta"])
        assert "invalid release tag" in capsys.readouterr().err
